"""``repro-lint`` command-line interface.

::

    repro-lint                          # lint src/ and tests/
    repro-lint src/repro/sim            # lint a subtree
    repro-lint --paths a.py,b.py        # lint an explicit file subset
    repro-lint --format json            # machine-readable output
    repro-lint --format sarif           # SARIF 2.1.0 (CI code scanning)
    repro-lint --cache-dir .lint-cache  # warm-cache incremental runs
    repro-lint --jobs 4                 # per-file parallelism
    repro-lint --write-baseline         # grandfather current findings
    repro-lint baseline prune           # drop stale baseline entries
    repro-lint baseline prune --check   # fail if stale entries exist
    repro-lint --check-manifest         # fail on stream-manifest drift
    repro-lint --write-manifest         # regenerate analysis/streams.json
    repro-lint --select RPR001,RPR006   # subset of rule families

Exit codes: 0 clean, 1 findings (or manifest drift / parse errors /
stale baseline under ``prune --check``), 2 usage error.

(Equivalently: ``python -m repro.analysis ...``.)
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .baseline import Baseline
from .engine import run_analysis
from .manifest import check_manifest, write_manifest
from .reporter import LintOutcome, render_json, render_text
from .sarif import render_sarif

DEFAULT_BASELINE = Path("analysis/repro-lint-baseline.json")
DEFAULT_MANIFEST = Path("analysis/streams.json")


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``repro-lint`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based determinism, unit-discipline, and shard-"
                    "purity analyzer for the ad-prefetch reproduction")
    parser.add_argument("paths", nargs="*",
                        help="files/directories to lint "
                             "(default: src tests)")
    parser.add_argument("--paths", dest="path_subset", default=None,
                        metavar="FILES",
                        help="comma-separated explicit file subset to "
                             "lint (overrides positional paths)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text")
    parser.add_argument("--select", default=None, metavar="RULES",
                        help="comma-separated rule ids (default: all)")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        metavar="DIR",
                        help="per-file result cache keyed by content "
                             "hash (warm runs skip parsing)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker threads for the per-file stage")
    parser.add_argument("--baseline", type=Path, default=None,
                        help=f"baseline file (default: {DEFAULT_BASELINE} "
                             "when it exists)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write current findings to the baseline "
                             "file and exit 0")
    parser.add_argument("--manifest", type=Path, default=DEFAULT_MANIFEST,
                        help="stream-name manifest path")
    parser.add_argument("--check-manifest", action="store_true",
                        help="fail when the committed stream manifest "
                             "drifted from the code")
    parser.add_argument("--write-manifest", action="store_true",
                        help="regenerate the stream manifest and exit 0")
    return parser


def build_baseline_parser() -> argparse.ArgumentParser:
    """Parser for the ``repro-lint baseline <action>`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro-lint baseline",
        description="Maintain the grandfathered-findings baseline")
    parser.add_argument("action", choices=("prune",),
                        help="prune: drop entries no finding matches")
    parser.add_argument("paths", nargs="*",
                        help="files/directories to lint "
                             "(default: src tests)")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE,
                        help=f"baseline file (default: {DEFAULT_BASELINE})")
    parser.add_argument("--check", action="store_true",
                        help="report stale entries and exit 1 without "
                             "rewriting the file (CI mode)")
    parser.add_argument("--select", default=None, metavar="RULES")
    parser.add_argument("--cache-dir", type=Path, default=None)
    parser.add_argument("--jobs", type=int, default=None)
    return parser


def _default_paths() -> list[str]:
    paths = [p for p in ("src", "tests") if Path(p).exists()]
    return paths or ["."]


def _split_csv(spec: str | None) -> list[str] | None:
    if spec is None:
        return None
    return [part for part in spec.replace(" ", "").split(",") if part]


def baseline_main(argv: list[str]) -> int:
    """``repro-lint baseline prune [--check]`` entry point."""
    args = build_baseline_parser().parse_args(argv)
    try:
        baseline = Baseline.load(args.baseline)
    except (ValueError, OSError) as exc:
        print(f"repro-lint: cannot read baseline: {exc}", file=sys.stderr)
        return 2
    try:
        report = run_analysis(args.paths or _default_paths(),
                              select=_split_csv(args.select),
                              cache_dir=args.cache_dir, jobs=args.jobs)
    except ValueError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2
    _, _, stale = baseline.split(report.findings)
    if not stale:
        print(f"baseline {args.baseline}: no stale entries "
              f"({len(baseline.entries)} kept)")
        return 0
    if args.check:
        for fingerprint in stale:
            entry = baseline.entries[fingerprint]
            print(f"stale baseline entry {fingerprint}: "
                  f"{entry.get('rule')} {entry.get('path')}")
        print(f"baseline {args.baseline}: {len(stale)} stale entr"
              f"{'y' if len(stale) == 1 else 'ies'}; run "
              "'repro-lint baseline prune' to drop them")
        return 1
    for fingerprint in stale:
        del baseline.entries[fingerprint]
    baseline.save(args.baseline)
    print(f"pruned {len(stale)} stale entr"
          f"{'y' if len(stale) == 1 else 'ies'} from {args.baseline} "
          f"({len(baseline.entries)} kept)")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    raw = list(sys.argv[1:]) if argv is None else list(argv)
    if raw and raw[0] == "baseline":
        return baseline_main(raw[1:])
    args = build_parser().parse_args(raw)
    if args.path_subset is not None:
        paths = _split_csv(args.path_subset) or []
        missing = [p for p in paths if not Path(p).exists()]
        if missing:
            print(f"repro-lint: --paths entries not found: "
                  f"{', '.join(missing)}", file=sys.stderr)
            return 2
    else:
        paths = args.paths or _default_paths()
    try:
        report = run_analysis(paths, select=_split_csv(args.select),
                              cache_dir=args.cache_dir, jobs=args.jobs)
    except ValueError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2

    if args.write_manifest:
        write_manifest(report.stream_sites, args.manifest)
        print(f"wrote {len({s.template for s in report.stream_sites})} "
              f"stream name(s) to {args.manifest}")
        return 0

    baseline_path = args.baseline
    if baseline_path is None and DEFAULT_BASELINE.exists():
        baseline_path = DEFAULT_BASELINE

    if args.write_baseline:
        target = baseline_path or DEFAULT_BASELINE
        Baseline.from_findings(report.findings).save(target)
        print(f"wrote {len(report.findings)} finding(s) to {target}")
        return 0

    outcome = LintOutcome(
        suppressed=report.suppressed,
        files_analyzed=report.files_analyzed,
        parse_errors=report.parse_errors,
    )
    if baseline_path is not None:
        try:
            baseline = Baseline.load(baseline_path)
        except (ValueError, OSError) as exc:
            print(f"repro-lint: cannot read baseline: {exc}",
                  file=sys.stderr)
            return 2
        (outcome.new_findings, outcome.baselined,
         outcome.stale_baseline) = baseline.split(report.findings)
    else:
        outcome.new_findings = report.findings

    if args.check_manifest:
        outcome.manifest_problems = check_manifest(
            report.stream_sites, args.manifest)

    render = {"json": render_json, "sarif": render_sarif,
              "text": render_text}[args.format]
    print(render(outcome))
    return 1 if outcome.failed else 0


if __name__ == "__main__":
    sys.exit(main())
