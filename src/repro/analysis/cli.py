"""``repro-lint`` command-line interface.

::

    repro-lint                          # lint src/ and tests/
    repro-lint src/repro/sim            # lint a subtree
    repro-lint --format json            # machine-readable output
    repro-lint --write-baseline         # grandfather current findings
    repro-lint --check-manifest         # fail on stream-manifest drift
    repro-lint --write-manifest         # regenerate analysis/streams.json
    repro-lint --select RPR001,RPR003   # subset of rule families

Exit codes: 0 clean, 1 findings (or manifest drift / parse errors),
2 usage error.

(Equivalently: ``python -m repro.analysis ...``.)
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .baseline import Baseline
from .engine import run_analysis
from .manifest import check_manifest, write_manifest
from .reporter import LintOutcome, render_json, render_text

DEFAULT_BASELINE = Path("analysis/repro-lint-baseline.json")
DEFAULT_MANIFEST = Path("analysis/streams.json")


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``repro-lint`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based determinism & unit-discipline analyzer "
                    "for the ad-prefetch reproduction")
    parser.add_argument("paths", nargs="*",
                        help="files/directories to lint "
                             "(default: src tests)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text")
    parser.add_argument("--select", default=None, metavar="RULES",
                        help="comma-separated rule ids (default: all)")
    parser.add_argument("--baseline", type=Path, default=None,
                        help=f"baseline file (default: {DEFAULT_BASELINE} "
                             "when it exists)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write current findings to the baseline "
                             "file and exit 0")
    parser.add_argument("--manifest", type=Path, default=DEFAULT_MANIFEST,
                        help="stream-name manifest path")
    parser.add_argument("--check-manifest", action="store_true",
                        help="fail when the committed stream manifest "
                             "drifted from the code")
    parser.add_argument("--write-manifest", action="store_true",
                        help="regenerate the stream manifest and exit 0")
    return parser


def _default_paths() -> list[str]:
    paths = [p for p in ("src", "tests") if Path(p).exists()]
    return paths or ["."]


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    paths = args.paths or _default_paths()
    select = (args.select.replace(" ", "").split(",")
              if args.select else None)
    try:
        report = run_analysis(paths, select=select)
    except ValueError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2

    if args.write_manifest:
        write_manifest(report.stream_sites, args.manifest)
        print(f"wrote {len({s.template for s in report.stream_sites})} "
              f"stream name(s) to {args.manifest}")
        return 0

    baseline_path = args.baseline
    if baseline_path is None and DEFAULT_BASELINE.exists():
        baseline_path = DEFAULT_BASELINE

    if args.write_baseline:
        target = baseline_path or DEFAULT_BASELINE
        Baseline.from_findings(report.findings).save(target)
        print(f"wrote {len(report.findings)} finding(s) to {target}")
        return 0

    outcome = LintOutcome(
        suppressed=report.suppressed,
        files_analyzed=report.files_analyzed,
        parse_errors=report.parse_errors,
    )
    if baseline_path is not None:
        try:
            baseline = Baseline.load(baseline_path)
        except (ValueError, OSError) as exc:
            print(f"repro-lint: cannot read baseline: {exc}",
                  file=sys.stderr)
            return 2
        (outcome.new_findings, outcome.baselined,
         outcome.stale_baseline) = baseline.split(report.findings)
    else:
        outcome.new_findings = report.findings

    if args.check_manifest:
        outcome.manifest_problems = check_manifest(
            report.stream_sites, args.manifest)

    render = render_json if args.format == "json" else render_text
    print(render(outcome))
    return 1 if outcome.failed else 0


if __name__ == "__main__":
    sys.exit(main())
