"""Baseline file support for grandfathered findings.

The baseline (``analysis/repro-lint-baseline.json``) records
fingerprints of known findings so a clean-up can land incrementally:
baselined findings are reported but do not fail the run, and a fixed
finding whose fingerprint no longer matches anything is surfaced as
*stale* so the file shrinks monotonically. The committed baseline for
this repository is empty — every true positive was fixed, not waived —
and the ``_comment`` field documents the policy for adding one.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from .findings import Finding

_VERSION = 1


@dataclass(slots=True)
class Baseline:
    """Set of grandfathered finding fingerprints, with provenance."""

    entries: dict[str, dict[str, object]] = field(default_factory=dict)
    comment: str = ("Grandfathered repro-lint findings. Add entries only "
                    "with a justification; prefer fixing or inline "
                    "'# repro-lint: disable=' with a reason.")

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        if data.get("version") != _VERSION:
            raise ValueError(
                f"unsupported baseline version {data.get('version')!r} "
                f"in {path}")
        entries = {entry["fingerprint"]: entry
                   for entry in data.get("findings", [])}
        return cls(entries=entries,
                   comment=data.get("_comment", cls.comment))

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        baseline = cls()
        for finding in findings:
            baseline.entries[finding.fingerprint] = {
                "fingerprint": finding.fingerprint,
                "rule": finding.rule,
                "path": finding.path,
                "scope": finding.scope,
                "message": finding.message,
            }
        return baseline

    def save(self, path: str | Path) -> None:
        entries = [self.entries[key] for key in sorted(self.entries)]
        payload = {
            "version": _VERSION,
            "_comment": self.comment,
            "findings": entries,
        }
        Path(path).write_text(json.dumps(payload, indent=2) + "\n",
                              encoding="utf-8")

    def split(self, findings: list[Finding]
              ) -> tuple[list[Finding], list[Finding], list[str]]:
        """Partition into (new, baselined) and list stale fingerprints."""
        new: list[Finding] = []
        baselined: list[Finding] = []
        seen: set[str] = set()
        for finding in findings:
            if finding.fingerprint in self.entries:
                baselined.append(finding)
                seen.add(finding.fingerprint)
            else:
                new.append(finding)
        stale = sorted(set(self.entries) - seen)
        return new, baselined, stale
