"""Analysis engine: file discovery, rule execution, suppression.

The engine is deliberately import-light (stdlib only) so ``repro-lint``
can run in environments where the simulator's dependencies are absent —
e.g. a pre-commit hook or a minimal CI container.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from .context import FileContext
from .findings import Finding
from .rules import Rule, get_rules
from .rules.rng_streams import iter_stream_calls

_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "venv",
                        "node_modules", "build", "dist"})


def iter_python_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    """Yield ``.py`` files under ``paths`` in deterministic sorted order."""
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames
                if d not in _SKIP_DIRS and not d.endswith(".egg-info"))
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    yield Path(dirpath) / filename


@dataclass(slots=True)
class StreamSite:
    """One statically-resolved RNG stream name and where it is requested."""

    template: str
    path: str
    line: int


@dataclass(slots=True)
class AnalysisReport:
    """Outcome of one engine run over a set of files."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    files_analyzed: int = 0
    parse_errors: list[str] = field(default_factory=list)
    stream_sites: list[StreamSite] = field(default_factory=list)


def analyze_source(source: str, path: str,
                   rules: Iterable[Rule] | None = None) -> list[Finding]:
    """Lint one in-memory source blob (the unit-test entry point).

    Suppression comments are honored; findings are returned sorted by
    location. Raises ``SyntaxError`` for unparsable input.
    """
    ctx = FileContext(source, path)
    active = list(rules) if rules is not None else get_rules()
    findings = [
        finding
        for rule in active
        for finding in rule.check(ctx)
        if not ctx.is_suppressed(finding.rule, finding.line)
    ]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def run_analysis(paths: Sequence[str | Path],
                 select: list[str] | None = None) -> AnalysisReport:
    """Lint every python file under ``paths`` with the selected rules."""
    report = AnalysisReport()
    rules = get_rules(select)
    for file_path in iter_python_files(paths):
        rel = file_path.as_posix()
        try:
            source = file_path.read_text(encoding="utf-8")
            ctx = FileContext(source, rel)
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            report.parse_errors.append(f"{rel}: {exc}")
            continue
        report.files_analyzed += 1
        for rule in rules:
            for finding in rule.check(ctx):
                if ctx.is_suppressed(finding.rule, finding.line):
                    report.suppressed += 1
                else:
                    report.findings.append(finding)
        # Stream-manifest collection covers shipped code only; test
        # streams are not part of the reproducibility surface.
        if not ctx.is_test:
            for node, template in iter_stream_calls(ctx):
                if template is not None:
                    report.stream_sites.append(StreamSite(
                        template=template, path=rel, line=node.lineno))
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    report.stream_sites.sort(key=lambda s: (s.template, s.path, s.line))
    return report
