"""Analysis engine: file discovery, session orchestration, suppression.

The engine is deliberately import-light (stdlib only) so ``repro-lint``
can run in environments where the simulator's dependencies are absent —
e.g. a pre-commit hook or a minimal CI container. Heavy lifting lives
in :mod:`repro.analysis.session` (cached parallel per-file stage plus
the interprocedural project stage); this module owns file discovery and
the :class:`AnalysisReport` surface the CLI and tests consume.
"""

from __future__ import annotations

import fnmatch
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from .context import FileContext
from .findings import Finding
from .rules import Rule, get_rules
from .session import AnalysisSession

_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "venv",
                        "node_modules", "build", "dist"})


class GitIgnore:
    """Best-effort ``.gitignore`` matcher for the file walker.

    Supports the pattern shapes this repository actually uses: bare
    names (``*.pyc``), directory patterns (``obs-runs/``), and anchored
    path globs (``benchmarks/results/*.json``). Negations and nested
    ignore files are out of scope — the walker only needs to keep
    scratch output out of the lint run, not re-implement git.
    """

    def __init__(self, patterns: Iterable[str]) -> None:
        self.dir_patterns: list[str] = []
        self.name_patterns: list[str] = []
        self.path_patterns: list[str] = []
        for raw in patterns:
            pattern = raw.strip()
            if not pattern or pattern.startswith("#") or pattern.startswith("!"):
                continue
            if pattern.endswith("/"):
                pattern = pattern.rstrip("/")
                if "/" in pattern:
                    self.path_patterns.append(pattern)
                else:
                    self.dir_patterns.append(pattern)
            elif "/" in pattern:
                self.path_patterns.append(pattern.lstrip("/"))
            else:
                self.name_patterns.append(pattern)

    @classmethod
    def load(cls, root: str | Path = ".") -> "GitIgnore":
        """Read ``<root>/.gitignore`` (missing file → empty matcher)."""
        path = Path(root) / ".gitignore"
        try:
            lines = path.read_text(encoding="utf-8").splitlines()
        except OSError:
            lines = []
        return cls(lines)

    def ignores_dir(self, name: str, rel: str) -> bool:
        """True when a directory (basename + posix relpath) is ignored."""
        return (any(fnmatch.fnmatch(name, p) for p in self.dir_patterns)
                or self._path_match(rel))

    def ignores_file(self, name: str, rel: str) -> bool:
        """True when a file (basename + posix relpath) is ignored."""
        return (any(fnmatch.fnmatch(name, p) for p in self.name_patterns)
                or self._path_match(rel))

    def _path_match(self, rel: str) -> bool:
        return any(fnmatch.fnmatch(rel, p) for p in self.path_patterns)


def iter_python_files(paths: Sequence[str | Path],
                      gitignore: GitIgnore | None = None) -> Iterator[Path]:
    """Yield ``.py`` files under ``paths`` in deterministic sorted order.

    ``__pycache__``, virtualenvs, and (when ``gitignore`` is given or a
    ``.gitignore`` exists in the working directory) gitignored paths are
    skipped. Explicit file arguments always win — naming a file lints
    it even if a pattern would ignore it.
    """
    if gitignore is None:
        gitignore = GitIgnore.load(".")
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            base = Path(dirpath)
            dirnames[:] = sorted(
                d for d in dirnames
                if d not in _SKIP_DIRS and not d.endswith(".egg-info")
                and not gitignore.ignores_dir(d, (base / d).as_posix()))
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                file_path = base / filename
                if gitignore.ignores_file(filename, file_path.as_posix()):
                    continue
                yield file_path


@dataclass(slots=True)
class StreamSite:
    """One statically-resolved RNG stream name and where it is requested."""

    template: str
    path: str
    line: int


@dataclass(slots=True)
class AnalysisReport:
    """Outcome of one engine run over a set of files."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    files_analyzed: int = 0
    parse_errors: list[str] = field(default_factory=list)
    stream_sites: list[StreamSite] = field(default_factory=list)
    #: Files actually parsed (cache misses) — the cache-speedup metric.
    files_parsed: int = 0
    #: Files served from the content-hash cache.
    cache_hits: int = 0


def analyze_source(source: str, path: str,
                   rules: Iterable[Rule] | None = None) -> list[Finding]:
    """Lint one in-memory source blob (the unit-test entry point).

    Runs the per-file rules only — interprocedural rules need a project
    and live behind :func:`repro.analysis.session.analyze_project_sources`.
    Suppression comments are honored; findings are returned sorted by
    location. Raises ``SyntaxError`` for unparsable input.
    """
    ctx = FileContext(source, path)
    active = list(rules) if rules is not None else get_rules()
    findings = [
        finding
        for rule in active
        for finding in rule.check(ctx)
        if not ctx.is_suppressed(finding.rule, finding.line)
    ]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def run_analysis(paths: Sequence[str | Path],
                 select: list[str] | None = None,
                 cache_dir: str | Path | None = None,
                 jobs: int | None = None) -> AnalysisReport:
    """Lint every python file under ``paths`` with the selected rules.

    Per-file rules run (possibly cached, possibly parallel) first; the
    project-level rules (RPR006–008) then run once over the merged
    module graph. The report is identical whatever the cache state.
    """
    session = AnalysisSession(select=select, cache_dir=cache_dir,
                              jobs=jobs)
    files = list(iter_python_files(paths))
    results = session.run_files(files)

    report = AnalysisReport()
    summaries_by_path = {}
    for result in results:
        if result.parse_error is not None:
            report.parse_errors.append(result.parse_error)
            continue
        assert result.summary is not None
        report.files_analyzed += 1
        summaries_by_path[result.path] = result.summary
        for finding in result.findings:
            if result.summary.is_suppressed(finding.rule, finding.line):
                report.suppressed += 1
            else:
                report.findings.append(finding)
        # Stream-manifest collection covers shipped code only; test
        # streams are not part of the reproducibility surface.
        if not result.summary.is_test:
            for template, line in result.stream_sites:
                report.stream_sites.append(StreamSite(
                    template=template, path=result.path, line=line))

    for finding in session.run_project(results):
        summary = summaries_by_path.get(finding.path)
        if summary is not None and summary.is_suppressed(finding.rule,
                                                         finding.line):
            report.suppressed += 1
        else:
            report.findings.append(finding)

    report.files_parsed = session.files_parsed
    report.cache_hits = session.cache_hits
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    report.stream_sites.sort(key=lambda s: (s.template, s.path, s.line))
    return report
