"""Module graph & per-file summaries for interprocedural analysis.

The per-file rules (RPR001–RPR005) see one :class:`~repro.analysis.
context.FileContext` at a time. The project-level rules (RPR006 shard
purity, RPR007 serialization safety, RPR008 unit flow) need to see the
whole program: which module defines a symbol, which function calls
which, what a dataclass field's annotation resolves to *in another
file*. This module provides the data layer for that:

* :class:`ModuleSummary` — everything the interprocedural passes need
  from one file, extracted in a single AST walk and **JSON-round-trippable**
  so the analysis session can cache it keyed by content hash (a warm
  run never re-parses unchanged files);
* :class:`ModuleGraph` — the project-wide index: summaries by module
  name, symbol resolution across import aliases and ``__init__.py``
  re-exports, and fully-qualified function/class tables the call-graph
  pass (:mod:`repro.analysis.callgraph`) builds on.

Summaries are conservative extractions, not semantics: they record
*facts with locations* (``this function writes module global X at line
N``); deciding whether a fact is a finding is the rules' job.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from .context import FileContext
from .rules.units import unit_of

#: Bump when the summary shape changes; part of the session cache key.
SUMMARY_VERSION = 1

#: Mutating container-method names: calling one of these on a
#: module-level binding is shared-state mutation across shard runs.
_MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "clear", "sort", "reverse",
    "appendleft", "extendleft", "popleft",
})

#: Calls that write the process environment (never shard-safe).
_ENVIRON_WRITERS = frozenset({
    "os.putenv", "os.unsetenv", "os.chdir", "os.umask",
    "os.environ.update", "os.environ.setdefault", "os.environ.pop",
    "os.environ.clear",
})

#: Calls that create process/thread state a shard must not hold.
_PROCESS_STATE_CALLS = frozenset({
    "subprocess.Popen", "subprocess.run", "subprocess.call",
    "subprocess.check_output", "subprocess.check_call",
    "multiprocessing.Pool", "multiprocessing.Process",
    "threading.Thread", "threading.Timer",
    "concurrent.futures.ProcessPoolExecutor",
    "concurrent.futures.ThreadPoolExecutor",
    "signal.signal", "atexit.register", "os.fork",
})

#: Module-level value expressions that create a *mutable* binding.
_MUTABLE_FACTORIES = frozenset({
    "dict", "list", "set", "bytearray", "collections.defaultdict",
    "collections.deque", "collections.Counter", "collections.OrderedDict",
})


def _unit_ref(node: ast.expr) -> tuple[str, str, str, float] | None:
    """``(display, suffix, dim, scale)`` for a unit-suffixed Name/Attribute."""
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    else:
        return None
    unit = unit_of(name)
    if unit is None:
        return None
    return (name, *unit)


@dataclass(slots=True)
class UnitRef:
    """A unit-suffixed value observed in an expression position."""

    display: str
    suffix: str
    dim: str
    scale: float

    def to_jsonable(self) -> dict[str, object]:
        """Plain-JSON form (cache row)."""
        return {"display": self.display, "suffix": self.suffix,
                "dim": self.dim, "scale": self.scale}

    @classmethod
    def from_jsonable(cls, row: Mapping[str, object] | None
                      ) -> "UnitRef | None":
        """Inverse of :meth:`to_jsonable` (``None`` passes through)."""
        if row is None:
            return None
        return cls(display=str(row["display"]), suffix=str(row["suffix"]),
                   dim=str(row["dim"]), scale=float(row["scale"]))  # type: ignore[arg-type]

    @classmethod
    def of(cls, node: ast.expr) -> "UnitRef | None":
        """Unit of a Name/Attribute expression, or ``None``."""
        ref = _unit_ref(node)
        if ref is None:
            return None
        return cls(*ref)


@dataclass(slots=True)
class CallArg:
    """One argument at a call site, with its unit when statically known."""

    position: int | None    # None for keyword arguments
    keyword: str | None
    line: int
    col: int
    unit: UnitRef | None
    is_name: bool = False   # value was a bare Name/Attribute

    def to_jsonable(self) -> dict[str, object]:
        """Plain-JSON form (cache row)."""
        return {"position": self.position, "keyword": self.keyword,
                "line": self.line, "col": self.col, "is_name": self.is_name,
                "unit": self.unit.to_jsonable() if self.unit else None}

    @classmethod
    def from_jsonable(cls, row: Mapping[str, object]) -> "CallArg":
        """Inverse of :meth:`to_jsonable`."""
        return cls(position=row["position"], keyword=row["keyword"],  # type: ignore[arg-type]
                   line=int(row["line"]), col=int(row["col"]),  # type: ignore[arg-type]
                   is_name=bool(row.get("is_name", False)),
                   unit=UnitRef.from_jsonable(row.get("unit")))  # type: ignore[arg-type]


@dataclass(slots=True)
class CallSite:
    """One call made by a function: resolved callee + argument units.

    ``callee`` is the canonical dotted name when the chain root resolves
    through the file's imports (``repro.sim.rng.RngRegistry``), or the
    raw chain (``server.plan_epoch``) for attribute calls on runtime
    objects — the call-graph pass matches the latter by method name.
    """

    callee: str
    line: int
    col: int
    args: list[CallArg] = field(default_factory=list)

    def to_jsonable(self) -> dict[str, object]:
        """Plain-JSON form (cache row)."""
        return {"callee": self.callee, "line": self.line, "col": self.col,
                "args": [arg.to_jsonable() for arg in self.args]}

    @classmethod
    def from_jsonable(cls, row: Mapping[str, object]) -> "CallSite":
        """Inverse of :meth:`to_jsonable`."""
        return cls(callee=str(row["callee"]), line=int(row["line"]),  # type: ignore[arg-type]
                   col=int(row["col"]),  # type: ignore[arg-type]
                   args=[CallArg.from_jsonable(a)
                         for a in row.get("args", [])])  # type: ignore[union-attr]


@dataclass(slots=True)
class PurityOp:
    """One impure operation observed inside a function body."""

    kind: str      # "global-write" | "environ-write" | "class-attr-write"
                   # | "module-mutate" | "open-handle" | "process-state"
    detail: str
    line: int
    col: int

    def to_jsonable(self) -> dict[str, object]:
        """Plain-JSON form (cache row)."""
        return {"kind": self.kind, "detail": self.detail,
                "line": self.line, "col": self.col}

    @classmethod
    def from_jsonable(cls, row: Mapping[str, object]) -> "PurityOp":
        """Inverse of :meth:`to_jsonable`."""
        return cls(kind=str(row["kind"]), detail=str(row["detail"]),
                   line=int(row["line"]), col=int(row["col"]))  # type: ignore[arg-type]


@dataclass(slots=True)
class ReturnInfo:
    """A ``return <unit-named expr>`` observed in a function body."""

    line: int
    col: int
    unit: UnitRef | None

    def to_jsonable(self) -> dict[str, object]:
        """Plain-JSON form (cache row)."""
        return {"line": self.line, "col": self.col,
                "unit": self.unit.to_jsonable() if self.unit else None}

    @classmethod
    def from_jsonable(cls, row: Mapping[str, object]) -> "ReturnInfo":
        """Inverse of :meth:`to_jsonable`."""
        return cls(line=int(row["line"]), col=int(row["col"]),  # type: ignore[arg-type]
                   unit=UnitRef.from_jsonable(row.get("unit")))  # type: ignore[arg-type]


@dataclass(slots=True)
class AssignInfo:
    """An assignment whose target name carries a unit suffix."""

    line: int
    col: int
    target: str
    target_unit: UnitRef
    value_unit: UnitRef | None = None   # value was a unit-named variable
    value_call: str | None = None       # value was a call to this callee

    def to_jsonable(self) -> dict[str, object]:
        """Plain-JSON form (cache row)."""
        return {"line": self.line, "col": self.col, "target": self.target,
                "target_unit": self.target_unit.to_jsonable(),
                "value_unit": (self.value_unit.to_jsonable()
                               if self.value_unit else None),
                "value_call": self.value_call}

    @classmethod
    def from_jsonable(cls, row: Mapping[str, object]) -> "AssignInfo":
        """Inverse of :meth:`to_jsonable`."""
        target_unit = UnitRef.from_jsonable(row["target_unit"])  # type: ignore[arg-type]
        assert target_unit is not None
        return cls(line=int(row["line"]), col=int(row["col"]),  # type: ignore[arg-type]
                   target=str(row["target"]), target_unit=target_unit,
                   value_unit=UnitRef.from_jsonable(row.get("value_unit")),
                   value_call=row.get("value_call"))  # type: ignore[arg-type]


@dataclass(slots=True)
class FunctionInfo:
    """Summary of one function or method."""

    qualname: str             # module-relative ("execute_shard", "Cls.m")
    line: int
    col: int
    params: list[str] = field(default_factory=list)
    kwonly: list[str] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    returns: list[ReturnInfo] = field(default_factory=list)
    assigns: list[AssignInfo] = field(default_factory=list)
    purity: list[PurityOp] = field(default_factory=list)
    is_method: bool = False

    def to_jsonable(self) -> dict[str, object]:
        """Plain-JSON form (cache row)."""
        return {
            "qualname": self.qualname, "line": self.line, "col": self.col,
            "params": self.params, "kwonly": self.kwonly,
            "is_method": self.is_method,
            "calls": [c.to_jsonable() for c in self.calls],
            "returns": [r.to_jsonable() for r in self.returns],
            "assigns": [a.to_jsonable() for a in self.assigns],
            "purity": [p.to_jsonable() for p in self.purity],
        }

    @classmethod
    def from_jsonable(cls, row: Mapping[str, object]) -> "FunctionInfo":
        """Inverse of :meth:`to_jsonable`."""
        return cls(
            qualname=str(row["qualname"]), line=int(row["line"]),  # type: ignore[arg-type]
            col=int(row["col"]),  # type: ignore[arg-type]
            params=list(row.get("params", [])),  # type: ignore[call-overload]
            kwonly=list(row.get("kwonly", [])),  # type: ignore[call-overload]
            is_method=bool(row.get("is_method", False)),
            calls=[CallSite.from_jsonable(c)
                   for c in row.get("calls", [])],  # type: ignore[union-attr]
            returns=[ReturnInfo.from_jsonable(r)
                     for r in row.get("returns", [])],  # type: ignore[union-attr]
            assigns=[AssignInfo.from_jsonable(a)
                     for a in row.get("assigns", [])],  # type: ignore[union-attr]
            purity=[PurityOp.from_jsonable(p)
                    for p in row.get("purity", [])],  # type: ignore[union-attr]
        )


@dataclass(slots=True)
class FieldDecl:
    """One annotated class-body field (dataclass or plain class)."""

    name: str
    line: int
    col: int
    type_tokens: list[str] = field(default_factory=list)
    lambda_default: bool = False
    mutable_class_default: bool = False

    def to_jsonable(self) -> dict[str, object]:
        """Plain-JSON form (cache row)."""
        return {"name": self.name, "line": self.line, "col": self.col,
                "type_tokens": self.type_tokens,
                "lambda_default": self.lambda_default,
                "mutable_class_default": self.mutable_class_default}

    @classmethod
    def from_jsonable(cls, row: Mapping[str, object]) -> "FieldDecl":
        """Inverse of :meth:`to_jsonable`."""
        return cls(name=str(row["name"]), line=int(row["line"]),  # type: ignore[arg-type]
                   col=int(row["col"]),  # type: ignore[arg-type]
                   type_tokens=list(row.get("type_tokens", [])),  # type: ignore[call-overload]
                   lambda_default=bool(row.get("lambda_default", False)),
                   mutable_class_default=bool(
                       row.get("mutable_class_default", False)))


@dataclass(slots=True)
class ClassInfo:
    """Summary of one class: dataclass contract bits + field types."""

    qualname: str
    line: int
    col: int
    bases: list[str] = field(default_factory=list)
    is_dataclass: bool = False
    frozen: bool = False
    kw_only: bool = False
    slots: bool = False
    fields: list[FieldDecl] = field(default_factory=list)
    methods: list[str] = field(default_factory=list)

    def to_jsonable(self) -> dict[str, object]:
        """Plain-JSON form (cache row)."""
        return {"qualname": self.qualname, "line": self.line,
                "col": self.col, "bases": self.bases,
                "is_dataclass": self.is_dataclass, "frozen": self.frozen,
                "kw_only": self.kw_only, "slots": self.slots,
                "fields": [f.to_jsonable() for f in self.fields],
                "methods": self.methods}

    @classmethod
    def from_jsonable(cls, row: Mapping[str, object]) -> "ClassInfo":
        """Inverse of :meth:`to_jsonable`."""
        return cls(qualname=str(row["qualname"]), line=int(row["line"]),  # type: ignore[arg-type]
                   col=int(row["col"]),  # type: ignore[arg-type]
                   bases=list(row.get("bases", [])),  # type: ignore[call-overload]
                   is_dataclass=bool(row.get("is_dataclass", False)),
                   frozen=bool(row.get("frozen", False)),
                   kw_only=bool(row.get("kw_only", False)),
                   slots=bool(row.get("slots", False)),
                   fields=[FieldDecl.from_jsonable(f)
                           for f in row.get("fields", [])],  # type: ignore[union-attr]
                   methods=list(row.get("methods", [])))  # type: ignore[call-overload]


@dataclass(slots=True)
class ModuleSummary:
    """Everything the project-level passes need from one file."""

    module: str
    path: str
    is_init: bool = False
    is_test: bool = False
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    module_bindings: list[str] = field(default_factory=list)
    mutable_bindings: list[str] = field(default_factory=list)
    suppress_lines: dict[int, list[str]] = field(default_factory=dict)
    suppress_file: list[str] = field(default_factory=list)
    stmt_spans: list[tuple[int, int]] = field(default_factory=list)

    # -- suppression replay (no re-parse on warm cache) ------------------

    def is_suppressed(self, rule: str, line: int) -> bool:
        """Replay :meth:`FileContext.is_suppressed` from cached tables."""
        if "all" in self.suppress_file or rule in self.suppress_file:
            return True

        def _on(lineno: int) -> bool:
            rules = self.suppress_lines.get(lineno, ())
            return "all" in rules or rule in rules

        if _on(line):
            return True
        return any(_on(covered)
                   for start, end in self.stmt_spans if start <= line <= end
                   for covered in range(start, end + 1))

    def to_jsonable(self) -> dict[str, object]:
        """Plain-JSON form (the session cache stores this)."""
        return {
            "version": SUMMARY_VERSION,
            "module": self.module, "path": self.path,
            "is_init": self.is_init, "is_test": self.is_test,
            "imports": self.imports,
            "functions": {name: info.to_jsonable()
                          for name, info in self.functions.items()},
            "classes": {name: info.to_jsonable()
                        for name, info in self.classes.items()},
            "module_bindings": self.module_bindings,
            "mutable_bindings": self.mutable_bindings,
            "suppress_lines": {str(line): rules for line, rules
                               in self.suppress_lines.items()},
            "suppress_file": self.suppress_file,
            "stmt_spans": [list(span) for span in self.stmt_spans],
        }

    @classmethod
    def from_jsonable(cls, row: Mapping[str, object]) -> "ModuleSummary":
        """Inverse of :meth:`to_jsonable`; raises on version mismatch."""
        if row.get("version") != SUMMARY_VERSION:
            raise ValueError(f"summary version {row.get('version')!r} != "
                             f"{SUMMARY_VERSION}")
        return cls(
            module=str(row["module"]), path=str(row["path"]),
            is_init=bool(row.get("is_init", False)),
            is_test=bool(row.get("is_test", False)),
            imports=dict(row.get("imports", {})),  # type: ignore[call-overload]
            functions={str(k): FunctionInfo.from_jsonable(v)
                       for k, v in row.get("functions", {}).items()},  # type: ignore[union-attr]
            classes={str(k): ClassInfo.from_jsonable(v)
                     for k, v in row.get("classes", {}).items()},  # type: ignore[union-attr]
            module_bindings=list(row.get("module_bindings", [])),  # type: ignore[call-overload]
            mutable_bindings=list(row.get("mutable_bindings", [])),  # type: ignore[call-overload]
            suppress_lines={int(k): list(v) for k, v
                            in row.get("suppress_lines", {}).items()},  # type: ignore[union-attr]
            suppress_file=list(row.get("suppress_file", [])),  # type: ignore[call-overload]
            stmt_spans=[(int(a), int(b)) for a, b
                        in row.get("stmt_spans", [])],  # type: ignore[union-attr]
        )


# ----------------------------------------------------------------------
# Summary extraction
# ----------------------------------------------------------------------


def _absolutize(dotted: str, ctx: FileContext) -> str:
    """Resolve a leading-dots relative import against the file's package.

    ``.config.ExperimentConfig`` inside ``repro/experiments/harness.py``
    → ``repro.experiments.config.ExperimentConfig``.
    """
    if not dotted.startswith("."):
        return dotted
    level = len(dotted) - len(dotted.lstrip("."))
    rest = dotted[level:]
    parts = list(ctx.module_parts)
    # For a plain module the enclosing package is parts[:-1]; for an
    # __init__ the module *is* the package (context pops "__init__").
    base = parts if ctx.path.endswith("__init__.py") else parts[:-1]
    base = base[:len(base) - (level - 1)] if level > 1 else base
    return ".".join(base + ([rest] if rest else [])).strip(".")


def _annotation_tokens(node: ast.expr | None, ctx: FileContext
                       ) -> list[str]:
    """Every type name mentioned in an annotation, canonically resolved.

    ``Mapping[str, ClientTimeline] | None`` →
    ``["typing.Mapping", "str", "repro.client.timeline.ClientTimeline",
    "None"]`` (order of appearance, de-duplicated). Quoted forward
    references are parsed and recursed into.
    """
    tokens: list[str] = []

    def add(token: str) -> None:
        if token not in tokens:
            tokens.append(token)

    def visit(item: ast.expr | None) -> None:
        if item is None:
            return
        if isinstance(item, (ast.Name, ast.Attribute)):
            dotted = ctx.dotted_name(item)
            if dotted is not None:
                add(_absolutize(dotted, ctx))
            return
        if isinstance(item, ast.Constant):
            if item.value is None:
                add("None")
            elif isinstance(item.value, str):
                try:
                    visit(ast.parse(item.value, mode="eval").body)
                except SyntaxError:
                    add(item.value)
            elif item.value is Ellipsis:
                pass
            return
        for child in ast.iter_child_nodes(item):
            if isinstance(child, ast.expr):
                visit(child)

    visit(node)
    return tokens


def _is_mutable_literal(node: ast.expr, ctx: FileContext) -> bool:
    """True for expressions that build a mutable container."""
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = ctx.dotted_name(node.func)
        return name in _MUTABLE_FACTORIES
    return False


def _dataclass_flags(node: ast.ClassDef, ctx: FileContext
                     ) -> tuple[bool, bool, bool, bool]:
    """``(is_dataclass, frozen, kw_only, slots)`` from the decorators."""
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        dotted = ctx.dotted_name(target)
        if dotted not in ("dataclasses.dataclass", "dataclass"):
            continue
        frozen = kw_only = slots = False
        if isinstance(deco, ast.Call):
            for kw in deco.keywords:
                if not (isinstance(kw.value, ast.Constant)
                        and kw.value.value is True):
                    continue
                frozen = frozen or kw.arg == "frozen"
                kw_only = kw_only or kw.arg == "kw_only"
                slots = slots or kw.arg == "slots"
        return True, frozen, kw_only, slots
    return False, False, False, False


def _has_lambda_default(value: ast.expr | None,
                        ctx: FileContext) -> bool:
    """True when a field default is (or factories through) a lambda."""
    if value is None:
        return False
    if isinstance(value, ast.Lambda):
        return True
    if isinstance(value, ast.Call):
        dotted = ctx.dotted_name(value.func)
        if dotted in ("dataclasses.field", "field"):
            for kw in value.keywords:
                if kw.arg == "default_factory" and isinstance(
                        kw.value, ast.Lambda):
                    return True
    return False


class _FunctionExtractor(ast.NodeVisitor):
    """One-pass fact collector for a single function body."""

    def __init__(self, ctx: FileContext, info: FunctionInfo,
                 module_mutables: frozenset[str]) -> None:
        self.ctx = ctx
        self.info = info
        self.module_mutables = module_mutables
        self.globals_declared: set[str] = set()
        self.local_binds: set[str] = set(info.params) | set(info.kwonly)
        self.with_items: set[int] = set()   # id() of exempted call nodes

    # -- helpers --------------------------------------------------------

    def _dotted(self, node: ast.expr) -> str | None:
        name = self.ctx.dotted_name(node)
        return _absolutize(name, self.ctx) if name is not None else None

    def _op(self, kind: str, detail: str, node: ast.AST) -> None:
        self.info.purity.append(PurityOp(
            kind=kind, detail=detail,
            line=getattr(node, "lineno", self.info.line),
            col=getattr(node, "col_offset", 0)))

    def _record_store_target(self, target: ast.expr, node: ast.AST) -> None:
        """Classify one assignment target for purity hazards."""
        if isinstance(target, ast.Name):
            self.local_binds.add(target.id)
            if target.id in self.globals_declared:
                self._op("global-write", target.id, node)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_store_target(element, node)
            return
        if isinstance(target, ast.Subscript):
            base = self._dotted(target.value)
            if base == "os.environ":
                self._op("environ-write", "os.environ[...]", node)
            elif (isinstance(target.value, ast.Name)
                  and target.value.id in self.module_mutables
                  and target.value.id not in self.local_binds):
                self._op("module-mutate", target.value.id, node)
            return
        if isinstance(target, ast.Attribute):
            root: ast.expr = target
            while isinstance(root, ast.Attribute):
                root = root.value
            if isinstance(root, ast.Name) and root.id not in ("self",):
                if root.id == "cls":
                    self._op("class-attr-write", f"cls.{target.attr}", node)
                else:
                    dotted = self._dotted(target) or target.attr
                    self._op("attr-write", dotted, node)

    # -- statements -----------------------------------------------------

    def visit_Global(self, node: ast.Global) -> None:
        self.globals_declared.update(node.names)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_store_target(target, node)
        self._maybe_unit_assign(node.targets[0] if len(node.targets) == 1
                                else None, node.value, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._record_store_target(node.target, node)
        if node.value is not None:
            self._maybe_unit_assign(node.target, node.value, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_store_target(node.target, node)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._bind_only(node.target)
        self.generic_visit(node)

    visit_AsyncFor = visit_For

    def _bind_only(self, target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self.local_binds.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_only(element)

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            if isinstance(item.context_expr, ast.Call):
                self.with_items.add(id(item.context_expr))
            if item.optional_vars is not None:
                self._bind_only(item.optional_vars)
        self.generic_visit(node)

    visit_AsyncWith = visit_With

    def visit_Return(self, node: ast.Return) -> None:
        if node.value is not None:
            self.info.returns.append(ReturnInfo(
                line=node.lineno, col=node.col_offset,
                unit=UnitRef.of(node.value)))
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            if (isinstance(target, ast.Subscript)
                    and self._dotted(target.value) == "os.environ"):
                self._op("environ-write", "del os.environ[...]", node)
        self.generic_visit(node)

    # -- nested definitions are their own summaries ---------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return  # nested defs are walked separately by the extractor

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        return

    # -- calls ----------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        dotted = self._dotted(node.func)
        if dotted is not None:
            self._record_call(node, dotted)
            self._check_call_purity(node, dotted)
        self.generic_visit(node)

    def _record_call(self, node: ast.Call, dotted: str) -> None:
        args: list[CallArg] = []
        for position, value in enumerate(node.args):
            if isinstance(value, ast.Starred):
                continue
            args.append(CallArg(
                position=position, keyword=None,
                line=value.lineno, col=value.col_offset,
                unit=UnitRef.of(value),
                is_name=isinstance(value, (ast.Name, ast.Attribute))))
        for kw in node.keywords:
            if kw.arg is None:
                continue
            args.append(CallArg(
                position=None, keyword=kw.arg,
                line=kw.value.lineno, col=kw.value.col_offset,
                unit=UnitRef.of(kw.value),
                is_name=isinstance(kw.value, (ast.Name, ast.Attribute))))
        self.info.calls.append(CallSite(
            callee=dotted, line=node.lineno, col=node.col_offset,
            args=args))

    def _check_call_purity(self, node: ast.Call, dotted: str) -> None:
        if dotted in _ENVIRON_WRITERS:
            self._op("environ-write", f"{dotted}()", node)
        elif dotted in _PROCESS_STATE_CALLS:
            if id(node) not in self.with_items:
                self._op("process-state", f"{dotted}()", node)
        elif dotted in ("open", "io.open"):
            if id(node) not in self.with_items:
                self._op("open-handle", f"{dotted}()", node)
        elif "." in dotted:
            base, method = dotted.rsplit(".", 1)
            if (method in _MUTATING_METHODS and "." not in base
                    and base in self.module_mutables
                    and base not in self.local_binds):
                self._op("module-mutate", base, node)

    # -- unit-flow assignments ------------------------------------------

    def _maybe_unit_assign(self, target: ast.expr | None,
                           value: ast.expr, node: ast.AST) -> None:
        if target is None or not isinstance(target, ast.Name):
            return
        target_unit = UnitRef.of(target)
        if target_unit is None:
            return
        value_unit = UnitRef.of(value)
        value_call: str | None = None
        if value_unit is None and isinstance(value, ast.Call):
            value_call = self._dotted(value.func)
        if value_unit is None and value_call is None:
            return
        self.info.assigns.append(AssignInfo(
            line=getattr(node, "lineno", target.lineno),
            col=getattr(node, "col_offset", 0),
            target=target.id, target_unit=target_unit,
            value_unit=value_unit, value_call=value_call))


def _function_params(node: ast.FunctionDef | ast.AsyncFunctionDef
                     ) -> tuple[list[str], list[str]]:
    """``(positional, keyword-only)`` parameter names, in order."""
    args = node.args
    positional = [a.arg for a in args.posonlyargs + args.args]
    return positional, [a.arg for a in args.kwonlyargs]


def build_summary(ctx: FileContext) -> ModuleSummary:
    """Extract the :class:`ModuleSummary` for one parsed file."""
    summary = ModuleSummary(
        module=ctx.module, path=ctx.path,
        is_init=ctx.path.endswith("__init__.py"),
        is_test=ctx.is_test,
    )
    summary.imports = {
        local: _absolutize(target, ctx)
        for local, target in ctx.import_map.items()
    }
    per_line, file_wide = ctx.suppressions
    summary.suppress_lines = {line: sorted(rules)
                              for line, rules in per_line.items()}
    summary.suppress_file = sorted(file_wide)
    summary.stmt_spans = list(ctx.stmt_spans)

    # Module-level bindings (for shared-mutable-state detection).
    for node in ctx.tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign):
            targets, value = [node.target], node.value
        for target in targets:
            if isinstance(target, ast.Name):
                summary.module_bindings.append(target.id)
                if value is not None and _is_mutable_literal(value, ctx):
                    summary.mutable_bindings.append(target.id)

    mutable = frozenset(summary.mutable_bindings)

    def walk_defs(body: list[ast.stmt], prefix: str,
                  in_class: bool) -> Iterator[None]:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}.{node.name}" if prefix else node.name
                positional, kwonly = _function_params(node)
                info = FunctionInfo(
                    qualname=qualname, line=node.lineno,
                    col=node.col_offset, params=positional, kwonly=kwonly,
                    is_method=in_class)
                extractor = _FunctionExtractor(ctx, info, mutable)
                for stmt in node.body:
                    extractor.visit(stmt)
                summary.functions[qualname] = info
                yield from walk_defs(node.body, qualname, False)
            elif isinstance(node, ast.ClassDef):
                qualname = f"{prefix}.{node.name}" if prefix else node.name
                is_dc, frozen, kw_only, slots = _dataclass_flags(node, ctx)
                cls_info = ClassInfo(
                    qualname=qualname, line=node.lineno,
                    col=node.col_offset,
                    bases=[token for base in node.bases
                           for token in _annotation_tokens(base, ctx)],
                    is_dataclass=is_dc, frozen=frozen, kw_only=kw_only,
                    slots=slots)
                for item in node.body:
                    if isinstance(item, ast.AnnAssign) and isinstance(
                            item.target, ast.Name):
                        tokens = _annotation_tokens(item.annotation, ctx)
                        cls_info.fields.append(FieldDecl(
                            name=item.target.id, line=item.lineno,
                            col=item.col_offset, type_tokens=tokens,
                            lambda_default=_has_lambda_default(
                                item.value, ctx),
                            mutable_class_default=(
                                not is_dc and item.value is not None
                                and _is_mutable_literal(item.value, ctx)
                                and "typing.ClassVar" not in tokens
                                and "ClassVar" not in tokens)))
                    elif isinstance(item, ast.Assign):
                        for target in item.targets:
                            if (isinstance(target, ast.Name)
                                    and _is_mutable_literal(item.value, ctx)):
                                cls_info.fields.append(FieldDecl(
                                    name=target.id, line=item.lineno,
                                    col=item.col_offset,
                                    mutable_class_default=True))
                    elif isinstance(item, (ast.FunctionDef,
                                           ast.AsyncFunctionDef)):
                        cls_info.methods.append(item.name)
                summary.classes[qualname] = cls_info
                yield from walk_defs(node.body, qualname, True)

    list(walk_defs(ctx.tree.body, "", False))
    return summary


# ----------------------------------------------------------------------
# Project-wide graph
# ----------------------------------------------------------------------


class ModuleGraph:
    """Project-wide symbol index over a set of :class:`ModuleSummary`.

    Provides the resolution primitive every interprocedural pass needs:
    a canonical dotted name (``repro.faults.FaultPlan``) resolves to its
    *defining* ``(module, qualname)`` pair, following import aliases and
    re-exports through package ``__init__.py`` files.
    """

    def __init__(self, summaries: Mapping[str, ModuleSummary]) -> None:
        #: module dotted name → summary
        self.modules: dict[str, ModuleSummary] = dict(summaries)
        #: fully-qualified function name → (summary, FunctionInfo)
        self.functions: dict[str, tuple[ModuleSummary, FunctionInfo]] = {}
        #: fully-qualified class name → (summary, ClassInfo)
        self.classes: dict[str, tuple[ModuleSummary, ClassInfo]] = {}
        #: bare method/function name → sorted fq names defining it
        self.name_index: dict[str, list[str]] = {}
        for module in sorted(self.modules):
            summary = self.modules[module]
            for qualname, info in summary.functions.items():
                fq = f"{module}.{qualname}"
                self.functions[fq] = (summary, info)
                bare = qualname.rsplit(".", 1)[-1]
                self.name_index.setdefault(bare, []).append(fq)
            for qualname, cls in summary.classes.items():
                self.classes[f"{module}.{qualname}"] = (summary, cls)

    @classmethod
    def from_summaries(cls, summaries: list[ModuleSummary]) -> "ModuleGraph":
        """Index a list of summaries by their module names."""
        return cls({summary.module: summary for summary in summaries})

    # -- symbol resolution ----------------------------------------------

    def resolve(self, dotted: str, *, _depth: int = 0) -> str | None:
        """Canonicalize ``dotted`` to its defining fully-qualified name.

        Follows aliases and ``__init__.py`` re-exports up to a small
        depth bound (cycles terminate). Returns ``None`` when the name
        does not land in an analyzed module.
        """
        if _depth > 8:
            return None
        module, remainder = self.split_module(dotted)
        if module is None:
            return None
        summary = self.modules[module]
        if not remainder:
            return module
        head = remainder[0]
        # Defined here?
        candidate = ".".join(remainder)
        if candidate in summary.functions or candidate in summary.classes:
            return f"{module}.{candidate}"
        # Attribute on a class defined here (Cls.method)?
        if head in summary.classes and len(remainder) > 1:
            return self.resolve_method(f"{module}.{head}", remainder[1])
        # Re-exported / aliased?
        if head in summary.imports:
            target = summary.imports[head] + (
                "." + ".".join(remainder[1:]) if len(remainder) > 1 else "")
            return self.resolve(target, _depth=_depth + 1)
        return None

    def split_module(self, dotted: str
                     ) -> tuple[str | None, tuple[str, ...]]:
        """``(longest module prefix, remaining parts)`` of ``dotted``."""
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            prefix = ".".join(parts[:cut])
            if prefix in self.modules:
                return prefix, tuple(parts[cut:])
        return None, tuple(parts)

    def resolve_method(self, class_fq: str, method: str) -> str | None:
        """Resolve ``method`` on ``class_fq``, walking analyzed bases."""
        seen: set[str] = set()
        stack = [class_fq]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            entry = self.classes.get(current)
            if entry is None:
                continue
            summary, cls = entry
            fq = f"{summary.module}.{cls.qualname}.{method}"
            if fq in self.functions:
                return fq
            for base in cls.bases:
                resolved = self.resolve(base)
                if resolved is not None:
                    stack.append(resolved)
        return None

    def function(self, fq: str) -> FunctionInfo | None:
        """The :class:`FunctionInfo` for a fully-qualified name."""
        entry = self.functions.get(fq)
        return entry[1] if entry else None

    def class_info(self, fq: str) -> ClassInfo | None:
        """The :class:`ClassInfo` for a fully-qualified name."""
        entry = self.classes.get(fq)
        return entry[1] if entry else None

    def summary_of(self, fq: str) -> ModuleSummary | None:
        """The defining module summary for a fully-qualified name."""
        entry = self.functions.get(fq) or self.classes.get(fq)
        if entry is not None:
            return entry[0]
        return self.modules.get(fq)
