"""Per-file analysis context shared by every rule.

One :class:`FileContext` is built per analyzed file. It owns the parsed
AST plus three derived artifacts every rule needs:

* an **import map** so calls can be resolved to canonical dotted names
  (``np.random.default_rng`` and ``numpy.random.default_rng`` both
  resolve to ``numpy.random.default_rng``);
* **suppression comments** (``# repro-lint: disable=RPR001`` on the
  offending line, or ``# repro-lint: disable-file=RPR003`` anywhere at
  column zero for a whole-file waiver);
* a line → **enclosing scope** map (``Class.method`` qualnames) used by
  baseline fingerprints.
"""

from __future__ import annotations

import ast
import re
from functools import cached_property

#: Community-standard aliases applied when no explicit import rebinds
#: the name (``np`` is numpy everywhere in this codebase).
_CONVENTIONAL_ALIASES = {"np": "numpy", "npt": "numpy.typing"}

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(disable|disable-file)\s*=\s*"
    r"(all|RPR\d{3}(?:\s*,\s*RPR\d{3})*)")


def _parse_rule_list(spec: str) -> frozenset[str]:
    if spec.strip() == "all":
        return frozenset({"all"})
    return frozenset(part.strip() for part in spec.split(","))


class FileContext:
    """Parsed source + derived lookup tables for one analyzed file."""

    def __init__(self, source: str, path: str) -> None:
        self.source = source
        self.path = path.replace("\\", "/")
        self.tree = ast.parse(source, filename=path)
        self.lines = source.splitlines()

    # -- module identity ------------------------------------------------

    @cached_property
    def module_parts(self) -> tuple[str, ...]:
        """Dotted-module path parts, rooted at ``repro`` when present.

        ``src/repro/sim/rng.py`` → ``("repro", "sim", "rng")``;
        ``tests/test_cli.py`` → ``("tests", "test_cli")``.
        """
        parts = [p for p in self.path.split("/") if p not in ("", ".", "..")]
        if parts and parts[-1].endswith(".py"):
            parts[-1] = parts[-1][:-3]
        if parts and parts[-1] == "__init__":
            parts.pop()
        if "repro" in parts:
            parts = parts[parts.index("repro"):]
        elif "src" in parts:
            parts = parts[parts.index("src") + 1:]
        return tuple(parts)

    @property
    def module(self) -> str:
        return ".".join(self.module_parts)

    @property
    def is_test(self) -> bool:
        parts = self.path.split("/")
        name = parts[-1] if parts else ""
        return ("tests" in parts or name.startswith("test_")
                or name == "conftest.py")

    # -- import resolution ----------------------------------------------

    @cached_property
    def import_map(self) -> dict[str, str]:
        """Local binding name → canonical dotted prefix.

        ``import numpy as np`` → ``{"np": "numpy"}``;
        ``from datetime import datetime`` →
        ``{"datetime": "datetime.datetime"}``.
        """
        mapping: dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        mapping[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".")[0]
                        mapping[root] = root
            elif isinstance(node, ast.ImportFrom):
                prefix = ("." * node.level) + (node.module or "")
                for alias in node.names:
                    local = alias.asname or alias.name
                    mapping[local] = (f"{prefix}.{alias.name}"
                                      if prefix else alias.name)
        return mapping

    def dotted_name(self, node: ast.expr) -> str | None:
        """Resolve a ``Name``/``Attribute`` chain to a canonical dotted name.

        Returns ``None`` for anything that is not a plain chain (calls,
        subscripts, …). The chain root is rewritten through
        :attr:`import_map`, so per-file aliases are normalized away.
        """
        parts: list[str] = []
        cur: ast.expr = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if not isinstance(cur, ast.Name):
            return None
        parts.append(cur.id)
        parts.reverse()
        root = self.import_map.get(parts[0])
        if root is None:
            # Conventional aliases resolve even without the import in
            # scope — an un-imported ``np.random.default_rng()`` is a
            # NameError at runtime but still a hazard worth naming.
            root = _CONVENTIONAL_ALIASES.get(parts[0])
        if root is not None:
            parts[0:1] = root.split(".")
        return ".".join(parts)

    # -- suppression comments -------------------------------------------

    @cached_property
    def suppressions(self) -> tuple[dict[int, frozenset[str]],
                                    frozenset[str]]:
        """``(per-line rules, file-wide rules)`` suppression tables."""
        per_line: dict[int, frozenset[str]] = {}
        file_wide: set[str] = set()
        for lineno, text in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(text)
            if match is None:
                continue
            rules = _parse_rule_list(match.group(2))
            if match.group(1) == "disable-file":
                file_wide |= rules
            else:
                per_line[lineno] = per_line.get(lineno, frozenset()) | rules
        return per_line, frozenset(file_wide)

    @cached_property
    def stmt_spans(self) -> list[tuple[int, int]]:
        """Line spans over which a suppression comment extends.

        A ``# repro-lint: disable=...`` anywhere on a multi-line
        statement must suppress findings attributed to any line of that
        statement — a call argument on line N+3 of a wrapped call, or a
        decorated ``def`` whose finding points at the ``def`` line while
        the comment sits on the closing-paren line. Simple statements
        span ``lineno..end_lineno``; compound statements (defs, classes,
        ``if``/``for``/``with``/``try``) contribute their *header* only
        (decorators through the line before the first body statement) so
        a waiver inside a function body never blankets the whole body.
        """
        spans: list[tuple[int, int]] = []
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.stmt):
                continue
            body = getattr(node, "body", None)
            if isinstance(body, list) and body and isinstance(
                    body[0], ast.stmt):
                start = node.lineno
                decorators = getattr(node, "decorator_list", [])
                if decorators:
                    start = min(start, decorators[0].lineno)
                end = max(start, body[0].lineno - 1)
            else:
                start = node.lineno
                end = node.end_lineno or node.lineno
            if end > start:
                spans.append((start, end))
        return spans

    def is_suppressed(self, rule: str, line: int) -> bool:
        """True when ``rule`` is waived on ``line`` (or file-wide).

        A waiver counts when it sits on ``line`` itself, anywhere on a
        multi-line statement containing ``line`` (see
        :attr:`stmt_spans`), or file-wide.
        """
        per_line, file_wide = self.suppressions
        if "all" in file_wide or rule in file_wide:
            return True

        def _on(lineno: int) -> bool:
            here = per_line.get(lineno, frozenset())
            return "all" in here or rule in here

        if _on(line):
            return True
        return any(_on(covered)
                   for start, end in self.stmt_spans if start <= line <= end
                   for covered in range(start, end + 1))

    # -- enclosing scopes -----------------------------------------------

    @cached_property
    def _scope_spans(self) -> list[tuple[int, int, str]]:
        spans: list[tuple[int, int, str]] = []

        def visit(node: ast.AST, prefix: str) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                      ast.ClassDef)):
                    qualname = (f"{prefix}.{child.name}" if prefix
                                else child.name)
                    end = child.end_lineno or child.lineno
                    spans.append((child.lineno, end, qualname))
                    visit(child, qualname)
                else:
                    visit(child, prefix)

        visit(self.tree, "")
        return spans

    def scope_at(self, line: int) -> str:
        """Qualname of the innermost def/class enclosing ``line``."""
        best = "<module>"
        best_size = None
        for start, end, qualname in self._scope_spans:
            if start <= line <= end:
                size = end - start
                if best_size is None or size < best_size:
                    best, best_size = qualname, size
        return best
