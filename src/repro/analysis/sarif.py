"""SARIF 2.1.0 output for ``repro-lint``.

SARIF (Static Analysis Results Interchange Format) is what CI surfaces
understand: GitHub renders it as code-scanning annotations, editors
import it, and artifact archives of it diff cleanly. This module maps a
:class:`~repro.analysis.reporter.LintOutcome` onto the subset of SARIF
2.1.0 that those consumers read — ``tool.driver`` with a populated rule
catalog, one ``result`` per finding with a physical location, and the
baseline fingerprint carried in ``partialFingerprints`` so re-runs
correlate.

The container has no ``jsonschema`` package and the lint toolchain must
stay stdlib-only, so :func:`validate_sarif` embeds a structural
validator for exactly the subset we emit: required properties, types,
and value constraints lifted from the published SARIF 2.1.0 schema.
The validator is intentionally strict on what *we* produce (a test runs
every report through it) rather than a general-purpose SARIF checker.
"""

from __future__ import annotations

import json

from .reporter import LintOutcome

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")

#: Rule catalog: id → (name, short description). Kept in one place so
#: the SARIF driver metadata and DESIGN.md stay in sync.
RULE_CATALOG: dict[str, tuple[str, str]] = {
    "RPR001": ("determinism-hazards",
               "Unseeded RNG, wall-clock, or iteration-order hazards in "
               "simulation code"),
    "RPR002": ("rng-stream-discipline",
               "RNG streams must be requested by stable name from the "
               "registry"),
    "RPR003": ("unit-suffix-discipline",
               "Quantities mix unit suffixes without an explicit "
               "conversion"),
    "RPR004": ("merge-associativity",
               "Shard-fold accumulators must merge associatively"),
    "RPR005": ("numpy-entropy",
               "Global numpy entropy (np.random.*) is banned in "
               "simulation code"),
    "RPR006": ("shard-purity",
               "Code reachable from execute_shard must not mutate state "
               "that outlives the shard"),
    "RPR007": ("serialization-safety",
               "Shard-boundary payload types must be statically "
               "picklable/JSON-round-trippable"),
    "RPR008": ("unit-flow",
               "Unit suffixes must survive assignments, returns, and "
               "calls across module boundaries"),
}


def _result(finding_json: dict[str, object], level: str) -> dict[str, object]:
    """One SARIF ``result`` object from a finding's JSON row."""
    return {
        "ruleId": finding_json["rule"],
        "level": level,
        "message": {"text": finding_json["message"]},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": finding_json["path"],
                                     "uriBaseId": "SRCROOT"},
                "region": {"startLine": max(1, int(finding_json["line"])),  # type: ignore[arg-type]
                           "startColumn": int(finding_json["col"]) + 1},  # type: ignore[arg-type]
            },
        }],
        "partialFingerprints": {
            "reproLint/v1": finding_json["fingerprint"],
        },
        "properties": {"scope": finding_json["scope"]},
    }


def sarif_report(outcome: LintOutcome, *,
                 tool_version: str = "2.0") -> dict[str, object]:
    """Map a lint outcome onto a SARIF 2.1.0 log (as a plain dict)."""
    rules = [
        {
            "id": rule_id,
            "name": name,
            "shortDescription": {"text": text},
            "helpUri": "https://github.com/ad-prefetch-repro/"
                       "ad-prefetch-repro/blob/main/DESIGN.md",
        }
        for rule_id, (name, text) in sorted(RULE_CATALOG.items())
    ]
    results = [_result(f.to_json(), "error") for f in outcome.new_findings]
    results += [_result(f.to_json(), "note") for f in outcome.baselined]
    invocation: dict[str, object] = {
        "executionSuccessful": not outcome.parse_errors,
    }
    notifications = [
        {"level": "error", "message": {"text": error}}
        for error in outcome.parse_errors
    ] + [
        {"level": "warning", "message": {"text": f"manifest: {problem}"}}
        for problem in outcome.manifest_problems
    ]
    if notifications:
        invocation["toolExecutionNotifications"] = notifications
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "version": tool_version,
                    "informationUri": "https://github.com/ad-prefetch-repro",
                    "rules": rules,
                },
            },
            "invocations": [invocation],
            "results": results,
            "columnKind": "utf16CodeUnits",
        }],
    }


def render_sarif(outcome: LintOutcome) -> str:
    """Serialized SARIF log for ``repro-lint --format sarif``."""
    return json.dumps(sarif_report(outcome), indent=2)


# ----------------------------------------------------------------------
# Embedded structural validator (jsonschema is not installed)
# ----------------------------------------------------------------------


def validate_sarif(doc: object) -> list[str]:
    """Structural SARIF 2.1.0 validation; returns problem strings.

    Checks the constraints the published schema imposes on the subset
    ``repro-lint`` emits: required properties, property types, the
    version literal, and per-result location shape. An empty return
    value means the document is schema-clean for this subset.
    """
    problems: list[str] = []

    def need(obj: object, key: str, kind: type, where: str) -> object:
        if not isinstance(obj, dict):
            problems.append(f"{where}: expected object")
            return None
        if key not in obj:
            problems.append(f"{where}: missing required property '{key}'")
            return None
        value = obj[key]
        if not isinstance(value, kind):
            problems.append(
                f"{where}.{key}: expected {kind.__name__}, "
                f"got {type(value).__name__}")
            return None
        return value

    version = need(doc, "version", str, "$")
    if version is not None and version != SARIF_VERSION:
        problems.append(f"$.version: must be '{SARIF_VERSION}'")
    runs = need(doc, "runs", list, "$")
    if runs is None:
        return problems
    if not runs:
        problems.append("$.runs: must contain at least one run")
    for i, run in enumerate(runs):
        where = f"$.runs[{i}]"
        tool = need(run, "tool", dict, where)
        if tool is not None:
            driver = need(tool, "driver", dict, f"{where}.tool")
            if driver is not None:
                need(driver, "name", str, f"{where}.tool.driver")
                rules = driver.get("rules", [])
                if not isinstance(rules, list):
                    problems.append(f"{where}.tool.driver.rules: "
                                    "expected array")
                else:
                    for j, rule in enumerate(rules):
                        need(rule, "id", str,
                             f"{where}.tool.driver.rules[{j}]")
        results = run.get("results") if isinstance(run, dict) else None
        if results is None:
            continue
        if not isinstance(results, list):
            problems.append(f"{where}.results: expected array")
            continue
        for j, result in enumerate(results):
            rw = f"{where}.results[{j}]"
            message = need(result, "message", dict, rw)
            if message is not None:
                need(message, "text", str, f"{rw}.message")
            level = result.get("level") if isinstance(result, dict) else None
            if level is not None and level not in (
                    "none", "note", "warning", "error"):
                problems.append(f"{rw}.level: invalid level {level!r}")
            locations = result.get("locations", []) if isinstance(
                result, dict) else []
            if not isinstance(locations, list):
                problems.append(f"{rw}.locations: expected array")
                continue
            for k, location in enumerate(locations):
                lw = f"{rw}.locations[{k}]"
                physical = need(location, "physicalLocation", dict, lw)
                if physical is None:
                    continue
                artifact = need(physical, "artifactLocation", dict,
                                f"{lw}.physicalLocation")
                if artifact is not None:
                    need(artifact, "uri", str,
                         f"{lw}.physicalLocation.artifactLocation")
                region = physical.get("region")
                if region is not None:
                    start = need(region, "startLine", int,
                                 f"{lw}.physicalLocation.region")
                    if isinstance(start, int) and start < 1:
                        problems.append(
                            f"{lw}.physicalLocation.region.startLine: "
                            "must be >= 1")
    return problems
