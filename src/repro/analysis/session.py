"""Project-wide analysis session: cached, parallel, deterministic.

One :class:`AnalysisSession` is one ``repro-lint`` run. It drives three
stages:

1. **Per-file** — parse each file, run the per-file rules (RPR001–005),
   and extract the :class:`~repro.analysis.modgraph.ModuleSummary` the
   interprocedural passes need. This stage fans out over a thread pool
   and is cached per file, keyed by a content hash: a warm run loads
   findings + summary from the cache directory and never re-parses.
2. **Project** — merge the summaries into a
   :class:`~repro.analysis.modgraph.ModuleGraph`, build the shard call
   graph, and run the project-level rules (RPR006–008) once over the
   whole program.
3. **Merge** — apply suppression comments (replayed from cached tables
   on warm runs), sort everything by location, and hand back one
   :class:`~repro.analysis.engine.AnalysisReport`.

Determinism contract: the report is a pure function of the file set and
rule selection — thread scheduling and cache state never change the
output, only ``files_parsed``/``cache_hits`` accounting. The cache-
speedup test asserts on those counters (work actually avoided), not on
wall clock.
"""

from __future__ import annotations

import hashlib
import json
import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from .callgraph import SHARD_ENTRY_POINTS, ProjectContext
from .context import FileContext
from .findings import Finding
from .modgraph import SUMMARY_VERSION, ModuleGraph, ModuleSummary, build_summary
from .rules import Rule, get_project_rules, get_rules
from .rules.rng_streams import iter_stream_calls

#: Bump to invalidate every cache entry (per-file result shape change).
CACHE_VERSION = 1


@dataclass(slots=True)
class FileResult:
    """Per-file stage output: findings are *pre-suppression*.

    Suppression is applied at merge time by replaying the summary's
    cached comment tables, so a cached result stays valid whether or
    not the waivers around it change style.
    """

    path: str
    findings: list[Finding] = field(default_factory=list)
    summary: ModuleSummary | None = None
    stream_sites: list[tuple[str, int]] = field(default_factory=list)
    parse_error: str | None = None
    from_cache: bool = False

    def to_jsonable(self) -> dict[str, object]:
        """Cache row for one successfully analyzed file."""
        assert self.summary is not None
        return {
            "cache_version": CACHE_VERSION,
            "path": self.path,
            "findings": [
                {"rule": f.rule, "message": f.message, "path": f.path,
                 "line": f.line, "col": f.col, "scope": f.scope}
                for f in self.findings
            ],
            "summary": self.summary.to_jsonable(),
            "stream_sites": [list(site) for site in self.stream_sites],
        }

    @classmethod
    def from_jsonable(cls, row: Mapping[str, object]) -> "FileResult":
        """Inverse of :meth:`to_jsonable`; raises on version mismatch."""
        if row.get("cache_version") != CACHE_VERSION:
            raise ValueError("cache entry version mismatch")
        return cls(
            path=str(row["path"]),
            findings=[Finding(rule=str(f["rule"]), message=str(f["message"]),
                              path=str(f["path"]), line=int(f["line"]),  # type: ignore[arg-type]
                              col=int(f["col"]), scope=str(f["scope"]))  # type: ignore[arg-type]
                      for f in row.get("findings", [])],  # type: ignore[union-attr]
            summary=ModuleSummary.from_jsonable(row["summary"]),  # type: ignore[arg-type]
            stream_sites=[(str(t), int(line))
                          for t, line in row.get("stream_sites", [])],  # type: ignore[union-attr]
            from_cache=True,
        )


def _analyze_one(source: str, rel: str, rules: Sequence[Rule]) -> FileResult:
    """Cold path: parse, run per-file rules, extract the summary."""
    ctx = FileContext(source, rel)
    result = FileResult(path=rel)
    for rule in rules:
        result.findings.extend(rule.check(ctx))
    result.findings.sort(key=lambda f: (f.line, f.col, f.rule, f.message))
    result.summary = build_summary(ctx)
    if not ctx.is_test:
        result.stream_sites = [
            (template, node.lineno)
            for node, template in iter_stream_calls(ctx)
            if template is not None
        ]
    return result


class AnalysisSession:
    """One cached, parallel lint run over a set of files."""

    def __init__(self, *, select: list[str] | None = None,
                 cache_dir: str | Path | None = None,
                 jobs: int | None = None,
                 entry_points: Iterable[str] = SHARD_ENTRY_POINTS) -> None:
        self.rules = get_rules(select)
        self.project_rules = get_project_rules(select)
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.jobs = jobs if jobs and jobs > 0 else min(
            8, os.cpu_count() or 1)
        self.entry_points = tuple(entry_points)
        #: Files actually parsed this run (the cache-speedup metric).
        self.files_parsed = 0
        #: Files served from the content-hash cache.
        self.cache_hits = 0
        self._rule_signature = ",".join(
            sorted(r.id for r in self.rules)) + f"|{CACHE_VERSION}|{SUMMARY_VERSION}"

    # -- cache ----------------------------------------------------------

    def _cache_key(self, rel: str, source: str) -> str:
        blob = f"{self._rule_signature}|{rel}|".encode() + source.encode()
        return hashlib.sha256(blob).hexdigest()

    def _cache_load(self, key: str) -> FileResult | None:
        if self.cache_dir is None:
            return None
        entry = self.cache_dir / f"{key}.json"
        try:
            row = json.loads(entry.read_text(encoding="utf-8"))
            return FileResult.from_jsonable(row)
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def _cache_store(self, key: str, result: FileResult) -> None:
        if self.cache_dir is None or result.summary is None:
            return
        try:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            entry = self.cache_dir / f"{key}.json"
            tmp = entry.with_suffix(".tmp")
            tmp.write_text(json.dumps(result.to_jsonable()),
                           encoding="utf-8")
            tmp.replace(entry)
        except OSError:
            pass  # a cold cache is a slow run, never a failed one

    # -- per-file stage --------------------------------------------------

    def _run_file(self, file_path: Path) -> FileResult:
        rel = file_path.as_posix()
        try:
            source = file_path.read_text(encoding="utf-8")
        except (UnicodeDecodeError, OSError) as exc:
            return FileResult(path=rel, parse_error=f"{rel}: {exc}")
        key = self._cache_key(rel, source)
        cached = self._cache_load(key)
        if cached is not None:
            return cached
        try:
            result = _analyze_one(source, rel, self.rules)
        except SyntaxError as exc:
            return FileResult(path=rel, parse_error=f"{rel}: {exc}")
        self._cache_store(key, result)
        return result

    def run_files(self, files: Sequence[Path]) -> list[FileResult]:
        """Per-file stage over ``files``; deterministic path order."""
        if self.jobs > 1 and len(files) > 1:
            with ThreadPoolExecutor(max_workers=self.jobs) as pool:
                results = list(pool.map(self._run_file, files))
        else:
            results = [self._run_file(path) for path in files]
        for result in results:
            if result.parse_error is not None:
                continue
            if result.from_cache:
                self.cache_hits += 1
            else:
                self.files_parsed += 1
        results.sort(key=lambda r: r.path)
        return results

    # -- project stage ---------------------------------------------------

    def run_project(self, results: Sequence[FileResult]) -> list[Finding]:
        """Project-level rules over the merged module graph."""
        if not self.project_rules:
            return []
        summaries = [r.summary for r in results if r.summary is not None]
        graph = ModuleGraph.from_summaries(summaries)
        project = ProjectContext.build(graph, self.entry_points)
        findings: list[Finding] = []
        for rule in self.project_rules:
            findings.extend(rule.check_project(project))
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule,
                                     f.message))
        return findings


def analyze_project_sources(sources: Mapping[str, str],
                            select: list[str] | None = None,
                            entry_points: Iterable[str] | None = None
                            ) -> list[Finding]:
    """Run the full session over in-memory sources (the test entry point).

    ``sources`` maps path → source text; module names derive from the
    paths exactly as on disk, so a fixture can impersonate
    ``src/repro/experiments/harness.py`` to exercise the shard entry
    points. Suppression comments are honored. Returns all (per-file +
    project) findings sorted by location.
    """
    session = AnalysisSession(
        select=select, jobs=1,
        entry_points=tuple(entry_points) if entry_points is not None
        else SHARD_ENTRY_POINTS)
    results: list[FileResult] = []
    for path in sorted(sources):
        result = _analyze_one(sources[path], path.replace("\\", "/"),
                              session.rules)
        results.append(result)
    findings: list[Finding] = []
    by_path = {r.path: r.summary for r in results if r.summary is not None}
    for result in results:
        assert result.summary is not None
        findings.extend(f for f in result.findings
                        if not result.summary.is_suppressed(f.rule, f.line))
    for finding in session.run_project(results):
        summary = by_path.get(finding.path)
        if summary is None or not summary.is_suppressed(finding.rule,
                                                        finding.line):
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings
