"""``repro-lint``: AST-based determinism & unit-discipline analyzer.

The :class:`repro.runner.Runner`'s bit-for-bit parallelism invariance
rests on conventions — named RNG streams, no ambient entropy in sim
code, associative metric merges, unit-suffixed quantities — that tests
only catch probabilistically. This package enforces them statically:

========  =====================================================
RPR001    determinism hazards (global RNGs, wall clock, bare-set
          iteration order)
RPR002    RNG stream discipline (centralized construction,
          statically-resolvable stream names + manifest)
RPR003    unit discipline (suffix-encoded dimension checking)
RPR004    merge associativity (accumulator contract in metrics)
========  =====================================================

Run as ``repro-lint`` or ``python -m repro.analysis``; see
:mod:`repro.analysis.cli` for flags, DESIGN.md for the contract.
The package is stdlib-only so it can run where numpy is absent.
"""

from __future__ import annotations

from .engine import AnalysisReport, analyze_source, run_analysis
from .findings import Finding
from .rules import ALL_RULES, get_rules

__all__ = [
    "ALL_RULES",
    "AnalysisReport",
    "Finding",
    "analyze_source",
    "get_rules",
    "run_analysis",
]
