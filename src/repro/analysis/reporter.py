"""Text and JSON rendering for ``repro-lint`` results."""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from .findings import Finding


@dataclass(slots=True)
class LintOutcome:
    """Everything the CLI needs to render and pick an exit code."""

    new_findings: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    stale_baseline: list[str] = field(default_factory=list)
    suppressed: int = 0
    files_analyzed: int = 0
    parse_errors: list[str] = field(default_factory=list)
    manifest_problems: list[str] = field(default_factory=list)

    @property
    def failed(self) -> bool:
        return bool(self.new_findings or self.parse_errors
                    or self.manifest_problems)


def render_text(outcome: LintOutcome) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines: list[str] = []
    for finding in outcome.new_findings:
        lines.append(finding.render())
    for finding in outcome.baselined:
        lines.append(f"{finding.render()} [baselined]")
    for problem in outcome.manifest_problems:
        lines.append(f"manifest: {problem}")
    for error in outcome.parse_errors:
        lines.append(f"error: {error}")
    for fingerprint in outcome.stale_baseline:
        lines.append(f"note: baseline entry {fingerprint} no longer "
                     "matches any finding; remove it")
    lines.append(
        f"repro-lint: {len(outcome.new_findings)} finding(s), "
        f"{len(outcome.baselined)} baselined, "
        f"{outcome.suppressed} suppressed, "
        f"{outcome.files_analyzed} file(s) analyzed")
    return "\n".join(lines)


def render_json(outcome: LintOutcome) -> str:
    """Machine-readable report mirroring :func:`render_text`."""
    payload = {
        "findings": [f.to_json() for f in outcome.new_findings],
        "baselined": [f.to_json() for f in outcome.baselined],
        "stale_baseline": outcome.stale_baseline,
        "suppressed": outcome.suppressed,
        "files_analyzed": outcome.files_analyzed,
        "parse_errors": outcome.parse_errors,
        "manifest_problems": outcome.manifest_problems,
        "ok": not outcome.failed,
    }
    return json.dumps(payload, indent=2)
