"""RPR007 — serialization safety for shard-boundary payload types.

Everything that crosses the Runner's process boundary — the
:class:`~repro.experiments.harness.ShardJob` payload, the committed
ledger's :class:`~repro.obs.ledger.RunRecord`, the JSON-round-tripping
:class:`~repro.faults.plan.FaultPlan`, and the accumulator snapshots
the shard fold merges — must be statically shippable: picklable for the
worker pool today, JSON-friendly for the queue-backed coordinator the
ROADMAP plans. This rule walks the *type closure* of those contract
roots through the module graph and flags:

* a root that is not a dataclass, or missing its contract bits
  (``frozen`` for value types, ``kw_only``/``slots`` where the API
  requires them);
* a field anywhere in the closure whose annotation mentions a
  statically unpicklable type — ``Callable``, loggers, locks, open
  files/sockets, iterators/generators, queues;
* lambda defaults (``field(default_factory=lambda: …)``): lambdas do
  not pickle, so the first worker dispatch dies at runtime.

Unknown external types get the benefit of the doubt (numpy arrays and
generators-of-state pickle fine); only *provably* unshippable tokens
fail the gate, so the rule stays quiet on subset runs where parts of
the closure are not analyzed.
"""

from __future__ import annotations

from typing import Iterator

from ..callgraph import ProjectContext
from ..findings import Finding
from ..modgraph import ClassInfo, ModuleSummary

#: Contract roots: dotted name → required dataclass flags.
SERIALIZATION_ROOTS: dict[str, dict[str, bool]] = {
    "repro.experiments.harness.ShardJob": {"kw_only": True, "slots": True},
    "repro.obs.ledger.RunRecord": {"frozen": True},
    "repro.faults.plan.FaultPlan": {"frozen": True, "kw_only": True},
    "repro.obs.metrics.MetricsSnapshot": {},
    # The repro.dist wire contract: every control message that crosses
    # the coordinator/worker transport, plus the chaos plan shipped
    # beside claimed jobs. All must stay flat scalar dataclasses so
    # they both pickle across Manager queues and JSON-round-trip for
    # the planned socket/multi-host backend.
    "repro.dist.protocol.WorkerHello": {"frozen": True, "kw_only": True},
    "repro.dist.protocol.WorkerBeat": {"frozen": True, "kw_only": True},
    "repro.dist.protocol.JobEnvelope": {"frozen": True, "kw_only": True},
    "repro.dist.protocol.JobAck": {"frozen": True, "kw_only": True},
    "repro.dist.protocol.JobNack": {"frozen": True, "kw_only": True},
    "repro.dist.protocol.ResultEnvelope": {"frozen": True, "kw_only": True},
    "repro.faults.chaos.CoordinatorChaos": {"frozen": True,
                                            "kw_only": True},
}

#: Module whose every class is a shard-fold accumulator (implicit roots).
ACCUMULATOR_MODULE = "repro.metrics.accumulators"

#: Annotation tokens that are statically unpicklable / not JSON-safe.
BANNED_TYPE_TOKENS = frozenset({
    "typing.Callable", "collections.abc.Callable", "Callable",
    "logging.Logger",
    "threading.Lock", "threading.RLock", "threading.Event",
    "threading.Condition", "threading.Semaphore",
    "typing.IO", "typing.TextIO", "typing.BinaryIO",
    "io.IOBase", "io.TextIOWrapper", "io.BufferedReader",
    "io.BufferedWriter", "io.BytesIO", "io.StringIO",
    "typing.Iterator", "typing.Generator", "typing.AsyncIterator",
    "collections.abc.Iterator", "collections.abc.Generator",
    "socket.socket", "queue.Queue", "multiprocessing.Queue",
    "concurrent.futures.Executor",
    "concurrent.futures.ThreadPoolExecutor",
    "concurrent.futures.ProcessPoolExecutor",
})


class SerializationRule:
    """RPR007: shard-boundary payload types must be statically shippable."""

    id = "RPR007"
    title = "serialization safety"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        """Findings over the type closure of every serialization root."""
        roots = dict(SERIALIZATION_ROOTS)
        accumulators = project.graph.modules.get(ACCUMULATOR_MODULE)
        if accumulators is not None:
            for qualname in accumulators.classes:
                roots.setdefault(f"{ACCUMULATOR_MODULE}.{qualname}", {})

        visited: set[str] = set()
        for root in sorted(roots):
            resolved = project.graph.resolve(root)
            if resolved is None or resolved not in project.graph.classes:
                continue  # subset run: root not analyzed, nothing to prove
            summary, cls = project.graph.classes[resolved]
            yield from self._check_contract(summary, cls, root,
                                            roots[root])
            yield from self._walk_closure(project, resolved, root, visited)

    def _check_contract(self, summary: ModuleSummary, cls: ClassInfo,
                        root: str, required: dict[str, bool]
                        ) -> Iterator[Finding]:
        short = root.rsplit(".", 1)[-1]
        if not cls.is_dataclass:
            yield Finding(
                rule=self.id,
                message=(f"serialization root '{short}' is not a "
                         "dataclass; the shard boundary contract "
                         "requires declarative, field-enumerable "
                         "payload types"),
                path=summary.path, line=cls.line, col=cls.col,
                scope=cls.qualname)
            return
        for flag, needed in sorted(required.items()):
            if needed and not getattr(cls, flag):
                yield Finding(
                    rule=self.id,
                    message=(f"serialization root '{short}' must be "
                             f"declared with {flag}=True; the "
                             "shard-boundary contract depends on it"),
                    path=summary.path, line=cls.line, col=cls.col,
                    scope=cls.qualname)

    def _walk_closure(self, project: ProjectContext, class_fq: str,
                      root: str, visited: set[str]) -> Iterator[Finding]:
        """BFS the field-type closure, yielding banned-token findings."""
        short_root = root.rsplit(".", 1)[-1]
        frontier: list[tuple[str, str]] = [(class_fq, short_root)]
        while frontier:
            current, via = frontier.pop(0)
            if current in visited:
                continue
            visited.add(current)
            entry = project.graph.classes.get(current)
            if entry is None:
                continue
            summary, cls = entry
            for decl in cls.fields:
                if decl.lambda_default:
                    yield Finding(
                        rule=self.id,
                        message=(f"field '{decl.name}' of '{cls.qualname}' "
                                 "defaults through a lambda; lambdas do "
                                 "not pickle across the shard boundary "
                                 f"[in the closure of {via}]"),
                        path=summary.path, line=decl.line, col=decl.col,
                        scope=cls.qualname)
                for token in decl.type_tokens:
                    if token in BANNED_TYPE_TOKENS or (
                            token.rsplit(".", 1)[-1] in ("Callable",)
                            and token.startswith("typing.")):
                        yield Finding(
                            rule=self.id,
                            message=(f"field '{decl.name}' of "
                                     f"'{cls.qualname}' is typed "
                                     f"'{token}', which cannot cross the "
                                     "shard boundary (not statically "
                                     "picklable/JSON-safe) [in the "
                                     f"closure of {via}]"),
                            path=summary.path, line=decl.line,
                            col=decl.col, scope=cls.qualname)
                        continue
                    resolved = project.graph.resolve(token)
                    if (resolved is not None
                            and resolved in project.graph.classes
                            and resolved not in visited):
                        frontier.append(
                            (resolved, f"{via}.{decl.name}"))
