"""RPR003 — unit discipline over the energy/revenue models.

The codebase encodes physical dimensions in name suffixes (``ad_joules``,
``epoch_s``, ``latency_sum_s``, ``billed_usd``). This rule is a
lightweight dimension checker over those conventions:

* adding, subtracting, or comparing two unit-suffixed names whose
  suffixes disagree — either across dimensions (``_j`` + ``_s``) or
  across scales of one dimension (``_s`` + ``_ms``) — is flagged;
  multiplication/division are exempt (they legitimately combine
  dimensions);
* passing a unit-suffixed name to a keyword parameter carrying a
  different unit suffix is flagged (``EnergyReport(ad_joules=x_ms)``);
* a function whose name promises a unit must not return a bare nonzero
  numeric literal (zero is dimension-neutral and allowed as the empty
  default).

Count-style names (``n_users``, ``n_days``) are excluded: the ``n_``
prefix marks a dimensionless cardinality even when the tail looks like
a unit.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import FileContext
from ..findings import Finding
from .common import Rule, make_finding

#: suffix → (dimension, scale relative to the dimension's base unit).
UNIT_SUFFIXES: dict[str, tuple[str, float]] = {
    "s": ("time", 1.0),
    "ms": ("time", 1e-3),
    "us": ("time", 1e-6),
    "ns": ("time", 1e-9),
    "day": ("time", 86400.0),
    "days": ("time", 86400.0),
    "j": ("energy", 1.0),
    "joules": ("energy", 1.0),
    "mj": ("energy", 1e-3),
    "kj": ("energy", 1e3),
    "mwh": ("energy", 3600.0),
    "usd": ("money", 1.0),
    "cents": ("money", 0.01),
    "bytes": ("data", 1.0),
    "kb": ("data", 1e3),
    "mb": ("data", 1e6),
    "gb": ("data", 1e9),
}

#: Name prefixes marking dimensionless counts, exempt from unit checks.
_COUNT_PREFIXES = ("n_", "num_", "idx_")


def unit_of(name: str) -> tuple[str, str, float] | None:
    """``(suffix, dimension, scale)`` for a unit-suffixed name, else None."""
    if name.startswith(_COUNT_PREFIXES):
        return None
    if "_" not in name:
        return None
    suffix = name.rsplit("_", 1)[-1].lower()
    entry = UNIT_SUFFIXES.get(suffix)
    if entry is None:
        return None
    return (suffix, entry[0], entry[1])


def _named_unit(node: ast.expr) -> tuple[str, str, str, float] | None:
    """``(display_name, suffix, dimension, scale)`` for Name/Attribute."""
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    else:
        return None
    unit = unit_of(name)
    if unit is None:
        return None
    return (name, *unit)


def _mismatch(a: tuple[str, str, str, float],
              b: tuple[str, str, str, float]) -> str | None:
    """Human-readable mismatch description, or None when compatible."""
    _, suf_a, dim_a, scale_a = a
    _, suf_b, dim_b, scale_b = b
    if dim_a != dim_b:
        return f"mixes dimensions {dim_a} (_{suf_a}) and {dim_b} (_{suf_b})"
    if scale_a != scale_b:
        return (f"mixes {dim_a} scales _{suf_a} and _{suf_b} "
                "without an explicit conversion")
    return None


class UnitRule(Rule):
    id = "RPR003"
    title = "unit discipline"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp) and isinstance(
                    node.op, (ast.Add, ast.Sub)):
                yield from self._check_pair(ctx, node, node.left, node.right)
            elif isinstance(node, ast.AugAssign) and isinstance(
                    node.op, (ast.Add, ast.Sub)):
                yield from self._check_pair(ctx, node, node.target, node.value)
            elif isinstance(node, ast.Compare):
                operands = [node.left, *node.comparators]
                for left, right in zip(operands, operands[1:]):
                    yield from self._check_pair(ctx, node, left, right)
            elif isinstance(node, ast.Call):
                yield from self._check_keywords(ctx, node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_literal_returns(ctx, node)

    def _check_pair(self, ctx: FileContext, where: ast.AST,
                    left: ast.expr, right: ast.expr) -> Iterator[Finding]:
        a = _named_unit(left)
        b = _named_unit(right)
        if a is None or b is None:
            return
        problem = _mismatch(a, b)
        if problem is not None:
            yield make_finding(
                self.id, ctx, where,
                f"'{a[0]}' vs '{b[0]}' {problem}")

    def _check_keywords(self, ctx: FileContext,
                        node: ast.Call) -> Iterator[Finding]:
        for keyword in node.keywords:
            if keyword.arg is None:
                continue
            param = unit_of(keyword.arg)
            if param is None:
                continue
            value = _named_unit(keyword.value)
            if value is None:
                continue
            problem = _mismatch((keyword.arg, *param), value)
            if problem is not None:
                yield make_finding(
                    self.id, ctx, keyword.value,
                    f"keyword '{keyword.arg}' receives '{value[0]}': "
                    f"{problem}")

    def _check_literal_returns(self, ctx: FileContext,
                               node: ast.FunctionDef | ast.AsyncFunctionDef
                               ) -> Iterator[Finding]:
        if unit_of(node.name) is None:
            return
        # Walk only this function's own statements (not nested defs).
        stack: list[ast.AST] = list(node.body)
        returns: list[ast.Return] = []
        while stack:
            item = stack.pop()
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            if isinstance(item, ast.Return):
                returns.append(item)
            stack.extend(ast.iter_child_nodes(item))
        for child in returns:
            if child.value is None:
                continue
            value = child.value
            if (isinstance(value, ast.Constant)
                    and isinstance(value.value, (int, float))
                    and not isinstance(value.value, bool)
                    and value.value != 0):
                yield make_finding(
                    self.id, ctx, child,
                    f"function '{node.name}' promises a unit but returns the "
                    f"bare literal {value.value!r}; name the constant with "
                    "a unit suffix so its dimension is checkable")
