"""RPR002 — RNG stream discipline.

Two obligations keep the Runner's parallelism-invariance provable:

1. **Construction is centralized.** Only :mod:`repro.sim.rng` may build
   numpy bit generators / ``Generator`` objects. Everything else
   receives a threaded ``np.random.Generator`` parameter or asks an
   ``RngRegistry`` for a named stream. A stray
   ``np.random.default_rng()`` deep in sim code silently decouples that
   component from the master seed.

2. **Stream names are statically knowable.** Arguments to
   ``registry.stream(...)`` / ``registry.fresh(...)`` must be string
   literals, f-strings over simple names, or ``literal + name``
   concatenations (the shard-tag idiom). The resolvable templates are
   collected into a committed manifest (``analysis/streams.json``) so a
   stream rename — which silently re-seeds a component — shows up as a
   manifest diff in review.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import FileContext
from ..findings import Finding
from .common import (
    RNG_CONSTRUCTOR_CALLS,
    RNG_HOME_MODULE,
    Rule,
    iter_calls,
    make_finding,
)

_STREAM_METHODS = frozenset({"stream", "fresh"})


def module_constants(tree: ast.Module) -> dict[str, str]:
    """Module-level ``NAME = "literal"`` string bindings.

    These fold into stream-name templates: ``repro.faults`` names its
    stream prefixes once (``STREAM_LOSS = "faults.loss"``) and builds
    per-user names as ``f"{STREAM_LOSS}:{uid}"`` — the manifest should
    record ``faults.loss:{uid}``, not an opaque ``{STREAM_LOSS}``.
    Rebound names (assigned more than once, or augmented) are dropped:
    their value is not statically knowable.
    """
    constants: dict[str, str] = {}
    rebound: set[str] = set()
    for node in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            if target.id in constants or target.id in rebound:
                rebound.add(target.id)
                constants.pop(target.id, None)
                continue
            if (isinstance(value, ast.Constant)
                    and isinstance(value.value, str)):
                constants[target.id] = value.value
    return constants


def stream_name_template(node: ast.expr,
                         constants: dict[str, str] | None = None
                         ) -> str | None:
    """Render a stream-name expression to a stable template, or ``None``.

    ``"traces"`` → ``traces``; ``"campaigns" + rng_tag`` →
    ``campaigns{rng_tag}``; ``f"user-{uid}"`` → ``user-{uid}``. Names
    bound to module-level string constants (``constants``, from
    :func:`module_constants`) fold to their values:
    ``f"{STREAM_LOSS}:{uid}"`` → ``faults.loss:{uid}``. Returns ``None``
    for expressions that cannot be statically templated (calls,
    subscripts, conditionals, …) — those are RPR002 findings.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.Name):
        if constants is not None and node.id in constants:
            return constants[node.id]
        return "{" + node.id + "}"
    if isinstance(node, ast.Attribute):
        inner = stream_name_template(node.value)
        if inner is None:
            return None
        return "{" + inner.strip("{}") + "." + node.attr + "}"
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        left = stream_name_template(node.left, constants)
        right = stream_name_template(node.right, constants)
        if left is None or right is None:
            return None
        return left + right
    if isinstance(node, ast.JoinedStr):
        parts: list[str] = []
        for piece in node.values:
            if isinstance(piece, ast.Constant):
                parts.append(str(piece.value))
            elif isinstance(piece, ast.FormattedValue):
                inner = stream_name_template(piece.value, constants)
                if inner is None:
                    return None
                # A folded constant is already literal text; anything
                # else stays a {placeholder}.
                folded = (constants is not None
                          and isinstance(piece.value, ast.Name)
                          and piece.value.id in constants)
                parts.append(inner if folded or inner.startswith("{")
                             else "{" + inner + "}")
            else:
                return None
        return "".join(parts)
    return None


def iter_stream_calls(ctx: FileContext) -> Iterator[tuple[ast.Call, str | None]]:
    """Yield ``(call, template)`` for every ``.stream(...)``/``.fresh(...)``.

    ``template`` is ``None`` when the name expression is not statically
    resolvable. Calls with the wrong arity are reported as unresolvable
    (empty-argument registries cannot name a stream).
    """
    constants = module_constants(ctx.tree)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute)
                and func.attr in _STREAM_METHODS):
            continue
        if len(node.args) != 1 or node.keywords:
            yield node, None
            continue
        yield node, stream_name_template(node.args[0], constants)


class RngStreamRule(Rule):
    id = "RPR002"
    title = "RNG stream discipline"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        in_rng_home = ctx.module == RNG_HOME_MODULE
        for node, name in iter_calls(ctx):
            if name in RNG_CONSTRUCTOR_CALLS and not in_rng_home:
                yield make_finding(
                    self.id, ctx, node,
                    f"{name}() constructs an RNG outside {RNG_HOME_MODULE}; "
                    "thread an np.random.Generator parameter or request a "
                    "named RngRegistry stream instead")
        for node, template in iter_stream_calls(ctx):
            if template is None:
                yield make_finding(
                    self.id, ctx, node,
                    "stream name is not statically resolvable; use a string "
                    "literal, an f-string over simple names, or a "
                    "literal + tag concatenation so the stream manifest "
                    "can track it")
