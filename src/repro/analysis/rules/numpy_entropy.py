"""RPR005 — nondeterministic numpy entry points.

The batched backend (:mod:`repro.sim.batched`) made vectorized numpy
code a first-class citizen of the hot path, which widens the surface
for two classic reproducibility leaks this rule closes:

1. **Hidden global state.** ``np.random.<fn>()`` convenience functions
   draw from the module-level legacy ``RandomState``. They are easy to
   reach for while vectorizing (``np.random.poisson(lam, n)`` instead of
   ``rng.poisson(lam, n)``) and silently bypass the
   :class:`~repro.sim.rng.RngRegistry` stream tree entirely.

2. **Entropy-seeded construction.** An *unseeded* constructor —
   ``np.random.default_rng()``, ``SeedSequence()``, a bare bit
   generator, ``random.Random()`` — pulls OS entropy, so two runs of the
   same config diverge. RPR002 stops construction *outside*
   ``repro/sim/rng.py`` but grants the RNG home module amnesty; this
   rule has no home-module exemption, so even the registry itself must
   derive every seed from the run's master seed.

Together with RPR002 the invariant is: generators are built only in
``repro/sim/rng.py``, and *every* generator anywhere is a pure function
of ``(master_seed, stream name)``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import FileContext
from ..findings import Finding
from .common import NUMPY_GLOBAL_FUNCS, Rule, iter_calls, make_finding

#: Constructors whose first argument (or ``seed=``/``entropy=`` keyword)
#: is a seed; calling them without one falls back to OS entropy.
SEEDABLE_CONSTRUCTORS = frozenset({
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "numpy.random.PCG64",
    "numpy.random.PCG64DXSM",
    "numpy.random.MT19937",
    "numpy.random.Philox",
    "numpy.random.SFC64",
    "numpy.random.SeedSequence",
    "random.Random",
})

#: Constructors that are entropy sources by design — no seeding form
#: exists, so any call is nondeterministic.
ENTROPY_CONSTRUCTORS = frozenset({
    "random.SystemRandom",
})

_SEED_KEYWORDS = frozenset({"seed", "entropy"})


def _is_unseeded(call: ast.Call) -> bool:
    """True when the call provably falls back to OS entropy.

    A positional first argument counts as the seed unless it is a
    literal ``None``; ``seed=``/``entropy=`` keywords likewise. A
    ``**kwargs`` splat is not statically decidable and gets the benefit
    of the doubt.
    """
    if call.args:
        first = call.args[0]
        return isinstance(first, ast.Constant) and first.value is None
    for kw in call.keywords:
        if kw.arg is None:
            return False                          # **kwargs: unknowable
        if kw.arg in _SEED_KEYWORDS:
            return (isinstance(kw.value, ast.Constant)
                    and kw.value.value is None)
    return True


class NumpyEntropyRule(Rule):
    id = "RPR005"
    title = "nondeterministic numpy entry points"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node, name in iter_calls(ctx):
            if (name.startswith("numpy.random.")
                    and name.rsplit(".", 1)[-1] in NUMPY_GLOBAL_FUNCS):
                yield make_finding(
                    self.id, ctx, node,
                    f"{name}() uses numpy's hidden global RandomState; "
                    "thread an explicit Generator from RngRegistry instead")
            elif name in ENTROPY_CONSTRUCTORS:
                yield make_finding(
                    self.id, ctx, node,
                    f"{name}() is an OS-entropy source and can never be "
                    "reproduced; derive randomness from the run's master "
                    "seed via RngRegistry")
            elif name in SEEDABLE_CONSTRUCTORS and _is_unseeded(node):
                yield make_finding(
                    self.id, ctx, node,
                    f"{name}() without an explicit seed pulls OS entropy, "
                    "so reruns diverge; derive the seed from the run's "
                    "master seed (see repro/sim/rng.py)")
