"""RPR004 — merge associativity for sharded-metric accumulators.

The Runner folds shard results through the accumulators in
:mod:`repro.metrics.accumulators` and the observability snapshots in
:mod:`repro.obs`; parallelism-invariance holds only if every mergeable
value exposes an associative ``merge``. This rule enforces the
structural half of that contract over both trees
(``repro/metrics/`` and ``repro/obs/``):

* every ``*Accumulator`` class must define a ``merge`` method;
* **any** class defining a ``merge`` method (accumulator-named or not —
  snapshots, profiles) must have that method return a value: an
  in-place mutating merge is a latent aliasing bug across shard
  boundaries;
* float reductions (``sum``, ``fsum``, ``reduce``) over bare ``set``
  expressions are flagged — float addition is not associative under
  reordering, and set order is PYTHONHASHSEED-dependent (the general
  case is RPR001; it is repeated here because in mergeable-value code
  it changes published numbers).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import FileContext
from ..findings import Finding
from .common import Rule, is_set_expr, iter_calls, make_finding

#: Module trees holding mergeable shard-fold values.
_MERGEABLE_PREFIXES = (("repro", "metrics"), ("repro", "obs"))
_REDUCERS = frozenset({"sum", "fsum", "math.fsum", "reduce",
                       "functools.reduce"})


def _returns_value(func: ast.FunctionDef) -> bool:
    stack: list[ast.AST] = list(func.body)
    while stack:
        item = stack.pop()
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        if isinstance(item, ast.Return) and item.value is not None:
            return True
        stack.extend(ast.iter_child_nodes(item))
    return False


class MergeRule(Rule):
    id = "RPR004"
    title = "merge associativity"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.module_parts[:2] not in _MERGEABLE_PREFIXES:
            return
        yield from self._check_mergeable_classes(ctx)
        yield from self._check_reductions(ctx)

    def _check_mergeable_classes(self,
                                 ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            merge = next(
                (item for item in node.body
                 if isinstance(item, ast.FunctionDef)
                 and item.name == "merge"), None)
            if merge is None:
                if node.name.endswith("Accumulator"):
                    yield make_finding(
                        self.id, ctx, node,
                        f"accumulator class '{node.name}' has no merge() "
                        "method; sharded runs cannot fold its results")
            elif not _returns_value(merge):
                yield make_finding(
                    self.id, ctx, merge,
                    f"'{node.name}.merge' never returns a value; merge "
                    "must be a pure associative combination, not an "
                    "in-place mutation")

    def _check_reductions(self, ctx: FileContext) -> Iterator[Finding]:
        for node, name in iter_calls(ctx):
            if name not in _REDUCERS:
                continue
            idx = 1 if name.endswith("reduce") else 0
            if len(node.args) > idx and is_set_expr(node.args[idx]):
                yield make_finding(
                    self.id, ctx, node,
                    f"{name}(...) over a set in metrics code: float "
                    "reduction order is PYTHONHASHSEED-dependent; sort "
                    "the operands first")
