"""RPR006 — shard purity over the `execute_shard` reachability closure.

The ROADMAP's distributed coordinator/worker runner retries a dropped
worker by *re-executing the shard as a pure function*. That is only
sound if nothing reachable from the shard entry points
(:data:`~repro.analysis.callgraph.SHARD_ENTRY_POINTS`) mutates state
that outlives the call or leaks across process boundaries. This rule
walks the conservative call graph and flags, inside reachable code:

* writes to module globals (``global X`` + assignment) and mutation of
  module-level mutable bindings (``CACHE[k] = v``, ``REGISTRY.append``);
* writes to ``os.environ`` (or ``os.putenv``/``os.chdir``/…): process
  environment escapes the shard;
* class-level attribute writes (``cls.x = …``, ``SomeClass.x = …``) and
  mutable class-body defaults on shard-constructed classes — state
  shared by every instance in the worker process;
* ``open()`` outside a ``with`` block and process/thread spawns
  (``subprocess``, ``threading.Thread``, executors): handles and
  process state a re-executed shard cannot reproduce.

Findings carry a ``reachable via`` chain so the reviewer can see *why*
the analyzer believes the code runs inside a shard. Intentional ambient
state (e.g. the process-local observability context) is waived inline
with a justification, exactly like every other rule family.
"""

from __future__ import annotations

from typing import Iterator

from ..callgraph import ProjectContext
from ..findings import Finding
from ..modgraph import ModuleSummary, PurityOp

#: Message templates per purity-op kind.
_MESSAGES = {
    "global-write": ("writes module global '{detail}'; shard re-execution "
                     "must be a pure function of the job — thread the "
                     "state through the job or its result"),
    "environ-write": ("writes the process environment ({detail}); "
                      "os.environ outlives the shard and leaks between "
                      "shard re-executions"),
    "module-mutate": ("mutates module-level container '{detail}'; shared "
                      "module state breaks shard re-execution and "
                      "differs between worker processes"),
    "class-attr-write": ("writes class-level attribute {detail}; class "
                         "state is shared by every instance in the "
                         "worker process"),
    "open-handle": ("calls {detail} outside a with block in shard-"
                    "reachable code; an open handle held across the "
                    "shard boundary cannot be shipped or re-executed"),
    "process-state": ("creates process/thread state ({detail}) in shard-"
                      "reachable code; shards must stay single-process "
                      "pure functions"),
}


class PurityRule:
    """RPR006: code reachable from ``execute_shard`` must be shard-pure."""

    id = "RPR006"
    title = "shard purity"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        """Findings over all shard-reachable functions and classes."""
        for summary, info in project.iter_reachable():
            fq = f"{summary.module}.{info.qualname}"
            for op in info.purity:
                finding = self._finding_for(project, summary, fq, op)
                if finding is not None:
                    yield finding
        yield from self._check_constructed_classes(project)

    def _finding_for(self, project: ProjectContext, summary: ModuleSummary,
                     fq: str, op: PurityOp) -> Finding | None:
        kind = op.kind
        detail = op.detail
        if kind == "attr-write":
            # Only a write whose target root resolves to a *class* or a
            # *module* is shared state; instance-attribute writes on
            # runtime objects are the normal case and stay silent.
            owner = detail.rsplit(".", 1)[0] if "." in detail else detail
            resolved = project.graph.resolve(owner)
            if resolved is None:
                return None
            if resolved in project.graph.classes:
                kind = "class-attr-write"
            elif resolved in project.graph.modules:
                kind = "module-mutate"
            else:
                return None
        template = _MESSAGES.get(kind)
        if template is None:
            return None
        chain = project.callgraph.chain(fq, project.parents)
        return Finding(
            rule=self.id,
            message=(template.format(detail=detail)
                     + f" [shard-reachable via {chain}]"),
            path=summary.path, line=op.line, col=op.col,
            scope=info_scope(fq, summary))

    def _check_constructed_classes(self, project: ProjectContext
                                   ) -> Iterator[Finding]:
        """Mutable class-body defaults on classes with reachable methods."""
        for class_fq in sorted(project.graph.classes):
            summary, cls = project.graph.classes[class_fq]
            if summary.is_test:
                continue
            touched = any(f"{class_fq}.{m}" in project.reachable
                          for m in cls.methods)
            if not touched:
                continue
            for decl in cls.fields:
                if decl.mutable_class_default:
                    yield Finding(
                        rule=self.id,
                        message=(f"class '{cls.qualname}' declares mutable "
                                 f"class-level default '{decl.name}'; every "
                                 "instance in a shard worker shares it — "
                                 "initialize per-instance in __init__ or "
                                 "use a dataclass field factory"),
                        path=summary.path, line=decl.line, col=decl.col,
                        scope=cls.qualname)


def info_scope(fq: str, summary: ModuleSummary) -> str:
    """Module-relative scope qualname for a fully-qualified function."""
    prefix = summary.module + "."
    return fq[len(prefix):] if fq.startswith(prefix) else fq
