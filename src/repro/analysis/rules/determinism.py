"""RPR001 — determinism hazards.

Flags ambient-nondeterminism sources anywhere in the tree:

* calls through the stdlib ``random`` module's hidden global state;
* wall-clock/entropy reads (``time.time``, ``datetime.now``,
  ``os.urandom``, ``uuid.uuid4``); elapsed-time reporting must use the
  monotonic allowlist (``time.perf_counter`` and friends);
* iteration over bare ``set`` expressions in order-sensitive positions
  (``for`` targets, comprehensions, ``sum``/``list``/``reduce``
  arguments) without a ``sorted(...)`` wrapper — set order depends on
  PYTHONHASHSEED, so it differs between the Runner's worker processes.

Inside :mod:`repro.obs` the rule is stricter: **any** clock read —
including the monotonic allowlist — is flagged outside
``repro/obs/profile.py``, ``repro/obs/resources.py``, and
``repro/obs/live.py``. Observability code runs interleaved with the
simulation, so traces and metrics must be pure functions of simulated
time; only the profiling module (wall-clock phase timing), the
resource-telemetry module (CPU seconds, peak RSS), and the live
telemetry plane (heartbeat pacing, stall/straggler watchdog — beats
are out-of-band and never enter results) measure real time, which
keeps the "where may real time leak in?" audit surface to those three
files.

Constructor-shaped RNG calls (``default_rng``, ``Generator``,
``random.Random``) are RPR002's jurisdiction and skipped here; numpy
legacy global-state draws (``np.random.rand`` & co.) and unseeded
constructors are RPR005's.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import FileContext
from ..findings import Finding
from .common import (
    ALLOWED_CLOCK_CALLS,
    ORDER_SENSITIVE_CONSUMERS,
    RNG_CONSTRUCTOR_CALLS,
    WALL_CLOCK_CALLS,
    Rule,
    is_set_expr,
    iter_calls,
    make_finding,
)


class DeterminismRule(Rule):
    id = "RPR001"
    title = "determinism hazards"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        yield from self._check_calls(ctx)
        yield from self._check_set_iteration(ctx)

    # -- ambient state calls --------------------------------------------

    #: repro.obs modules allowed to read wall clocks (profile: phase
    #: timing; resources: CPU seconds / RSS telemetry; live: heartbeat
    #: pacing + stall watchdog — out-of-band, never entering results).
    OBS_CLOCK_MODULES = (("repro", "obs", "profile"),
                         ("repro", "obs", "resources"),
                         ("repro", "obs", "live"))

    def _check_calls(self, ctx: FileContext) -> Iterator[Finding]:
        obs_clock_free = (ctx.module_parts[:2] == ("repro", "obs")
                          and ctx.module_parts[:3] not in
                          self.OBS_CLOCK_MODULES)
        for node, name in iter_calls(ctx):
            if name in RNG_CONSTRUCTOR_CALLS:
                continue
            if name in ALLOWED_CLOCK_CALLS:
                if obs_clock_free:
                    yield make_finding(
                        self.id, ctx, node,
                        f"clock read {name}() inside repro.obs; wall-clock "
                        "measurement belongs in repro/obs/profile.py, "
                        "repro/obs/resources.py, or repro/obs/live.py — "
                        "traces and metrics must carry simulated time only")
                continue
            if name in WALL_CLOCK_CALLS:
                yield make_finding(
                    self.id, ctx, node,
                    f"wall-clock/entropy call {name}() in deterministic "
                    "code; use time.perf_counter() for elapsed timing or "
                    "thread simulated time explicitly")
            elif name.startswith("random."):
                yield make_finding(
                    self.id, ctx, node,
                    f"{name}() draws from the stdlib global RNG; thread an "
                    "explicit numpy Generator from RngRegistry instead")

    # -- unordered iteration --------------------------------------------

    def _set_iter_finding(self, ctx: FileContext, node: ast.AST,
                          where: str) -> Finding:
        return make_finding(
            self.id, ctx, node,
            f"iteration over a bare set {where} is PYTHONHASHSEED-"
            "dependent and breaks cross-process reproducibility; wrap "
            "the set in sorted(...)")

    def _check_set_iteration(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if is_set_expr(node.iter):
                    yield self._set_iter_finding(ctx, node.iter,
                                                 "in a for loop")
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for comp in node.generators:
                    if is_set_expr(comp.iter):
                        yield self._set_iter_finding(ctx, comp.iter,
                                                     "in a comprehension")
            elif isinstance(node, ast.Call):
                name = ctx.dotted_name(node.func)
                if name in ORDER_SENSITIVE_CONSUMERS:
                    # reduce(fn, iterable, ...) takes its iterable second.
                    idx = 1 if name.endswith("reduce") else 0
                    if len(node.args) > idx and is_set_expr(node.args[idx]):
                        yield self._set_iter_finding(
                            ctx, node.args[idx], f"passed to {name}(...)")
