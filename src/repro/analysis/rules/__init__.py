"""Rule registry for ``repro-lint``.

Rules register here by id; :func:`get_rules` materializes the (optionally
filtered) active set for one engine run.
"""

from __future__ import annotations

from .common import Rule
from .determinism import DeterminismRule
from .merges import MergeRule
from .numpy_entropy import NumpyEntropyRule
from .rng_streams import RngStreamRule
from .units import UnitRule

ALL_RULES: dict[str, type[Rule]] = {
    rule.id: rule
    for rule in (DeterminismRule, RngStreamRule, UnitRule, MergeRule,
                 NumpyEntropyRule)
}


def get_rules(select: list[str] | None = None) -> list[Rule]:
    """Instantiate the active rules (all by default).

    ``select`` is a list of rule ids; unknown ids raise ``ValueError``
    so CI configs fail loudly rather than silently checking nothing.
    """
    if select is None:
        ids = sorted(ALL_RULES)
    else:
        unknown = sorted(set(select) - set(ALL_RULES))
        if unknown:
            raise ValueError(
                f"unknown rule id(s) {', '.join(unknown)}; "
                f"available: {', '.join(sorted(ALL_RULES))}")
        ids = sorted(set(select))
    return [ALL_RULES[rule_id]() for rule_id in ids]


__all__ = ["ALL_RULES", "Rule", "get_rules"]
