"""Rule registry for ``repro-lint``.

Rules register here by id; :func:`get_rules` materializes the (optionally
filtered) active per-file set for one engine run and
:func:`get_project_rules` the interprocedural set (RPR006–RPR008), which
run once per session over the merged module graph rather than per file.
"""

from __future__ import annotations

from .common import Rule
from .determinism import DeterminismRule
from .merges import MergeRule
from .numpy_entropy import NumpyEntropyRule
from .purity import PurityRule
from .rng_streams import RngStreamRule
from .serialization import SerializationRule
from .unit_flow import UnitFlowRule
from .units import UnitRule

ALL_RULES: dict[str, type[Rule]] = {
    rule.id: rule
    for rule in (DeterminismRule, RngStreamRule, UnitRule, MergeRule,
                 NumpyEntropyRule)
}

#: Project-level (interprocedural) rules: run once over the module graph.
PROJECT_RULES: dict[str, type] = {
    rule.id: rule
    for rule in (PurityRule, SerializationRule, UnitFlowRule)
}


def _validate(select: list[str]) -> None:
    known = set(ALL_RULES) | set(PROJECT_RULES)
    unknown = sorted(set(select) - known)
    if unknown:
        raise ValueError(
            f"unknown rule id(s) {', '.join(unknown)}; "
            f"available: {', '.join(sorted(known))}")


def get_rules(select: list[str] | None = None) -> list[Rule]:
    """Instantiate the active per-file rules (all by default).

    ``select`` is a list of rule ids; unknown ids raise ``ValueError``
    so CI configs fail loudly rather than silently checking nothing.
    Project-level ids (RPR006–RPR008) are accepted here for validation
    but materialize through :func:`get_project_rules`.
    """
    if select is None:
        ids = sorted(ALL_RULES)
    else:
        _validate(select)
        ids = sorted(set(select) & set(ALL_RULES))
    return [ALL_RULES[rule_id]() for rule_id in ids]


def get_project_rules(select: list[str] | None = None) -> list[object]:
    """Instantiate the active project-level rules (all by default)."""
    if select is None:
        ids = sorted(PROJECT_RULES)
    else:
        _validate(select)
        ids = sorted(set(select) & set(PROJECT_RULES))
    return [PROJECT_RULES[rule_id]() for rule_id in ids]


__all__ = ["ALL_RULES", "PROJECT_RULES", "Rule", "get_rules",
           "get_project_rules"]
