"""RPR008 — interprocedural unit flow (taint-style suffix propagation).

RPR003 checks unit suffixes *within one expression*. This rule follows
the value across the places RPR003 cannot see:

* **calls** — a positional argument named ``latency_s`` flowing into a
  parameter named ``timeout_ms`` of a function defined in another file;
* **assignments** — ``budget_ms = elapsed_s`` (plain rebinding carries
  no conversion), including ``x_ms = f(...)`` where ``f`` is a
  unit-promising function (``…_s``) or a function whose ``return``
  statements all carry one inferable unit suffix;
* **returns** — a function named ``…_ms`` returning a ``…_s``-suffixed
  value.

Only *unique* call-graph resolutions are checked (a direct import edge
or an unambiguous method), so the rule inherits the precision of the
module graph instead of the recall of the CHA fallback — a unit finding
should never require the reader to second-guess which callee was meant.
Keyword arguments are RPR003's jurisdiction (the keyword name *is* the
parameter name) and are skipped here.
"""

from __future__ import annotations

from typing import Iterator

from ..callgraph import ProjectContext, resolve_call
from ..findings import Finding
from ..modgraph import FunctionInfo, ModuleSummary, UnitRef
from .units import unit_of


def _mismatch(a: UnitRef, b: UnitRef) -> str | None:
    """Human-readable unit conflict between two refs, or ``None``."""
    if a.dim != b.dim:
        return f"mixes dimensions {a.dim} (_{a.suffix}) and {b.dim} (_{b.suffix})"
    if a.scale != b.scale:
        return (f"mixes {a.dim} scales _{a.suffix} and _{b.suffix} "
                "without an explicit conversion")
    return None


def _name_unit(name: str) -> UnitRef | None:
    """Unit promised by a bare identifier, as a :class:`UnitRef`."""
    unit = unit_of(name)
    if unit is None:
        return None
    return UnitRef(name, *unit)


def _return_unit(info: FunctionInfo) -> UnitRef | None:
    """The unit a function's returns consistently carry, if inferable.

    The function's own name suffix wins when present; otherwise all
    unit-carrying ``return`` statements must agree on one suffix.
    """
    promised = _name_unit(info.qualname.rsplit(".", 1)[-1])
    if promised is not None:
        return promised
    units = [ret.unit for ret in info.returns if ret.unit is not None]
    if not units or any(u.suffix != units[0].suffix for u in units):
        return None
    first = units[0]
    return UnitRef(display=f"{info.qualname}()", suffix=first.suffix,
                   dim=first.dim, scale=first.scale)


class UnitFlowRule:
    """RPR008: unit suffixes must survive assignments, returns, calls."""

    id = "RPR008"
    title = "interprocedural unit flow"

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        """Findings over every analyzed function (tests included)."""
        for fq in sorted(project.graph.functions):
            summary, info = project.graph.functions[fq]
            yield from self._check_calls(project, summary, info)
            yield from self._check_assigns(project, summary, info)
            yield from self._check_returns(summary, info)

    # -- calls ----------------------------------------------------------

    def _check_calls(self, project: ProjectContext,
                     summary: ModuleSummary, info: FunctionInfo
                     ) -> Iterator[Finding]:
        for site in info.calls:
            candidates = resolve_call(project.graph, summary, info, site)
            if len(candidates) != 1:
                continue
            callee = project.graph.function(candidates[0])
            if callee is None:
                continue
            params = list(callee.params)
            # Instance/class receiver is not an argument slot.
            if callee.is_method and params and params[0] in ("self", "cls"):
                params = params[1:]
            for arg in site.args:
                if arg.position is None or arg.unit is None:
                    continue  # keywords are RPR003's jurisdiction
                if arg.position >= len(params):
                    continue
                param_unit = _name_unit(params[arg.position])
                if param_unit is None:
                    continue
                problem = _mismatch(arg.unit, param_unit)
                if problem is not None:
                    short = candidates[0].split(".", 1)[-1]
                    yield self._finding(
                        summary, info, arg.line, arg.col,
                        f"argument '{arg.unit.display}' flows into "
                        f"parameter '{params[arg.position]}' of "
                        f"{short}(): {problem}")

    # -- assignments ----------------------------------------------------

    def _check_assigns(self, project: ProjectContext,
                       summary: ModuleSummary, info: FunctionInfo
                       ) -> Iterator[Finding]:
        for assign in info.assigns:
            value_unit = assign.value_unit
            source = value_unit.display if value_unit else ""
            if value_unit is None and assign.value_call is not None:
                value_unit = self._callee_unit(project, summary, info,
                                               assign.value_call)
                source = f"{assign.value_call}()"
            if value_unit is None:
                continue
            problem = _mismatch(value_unit, assign.target_unit)
            if problem is not None:
                yield self._finding(
                    summary, info, assign.line, assign.col,
                    f"'{assign.target}' is assigned from '{source}': "
                    f"{problem}")

    def _callee_unit(self, project: ProjectContext,
                     summary: ModuleSummary, info: FunctionInfo,
                     callee: str) -> UnitRef | None:
        for candidate in (f"{summary.module}.{callee}", callee):
            resolved = project.graph.resolve(candidate)
            if resolved is not None and resolved in project.graph.functions:
                return _return_unit(project.graph.functions[resolved][1])
        return None

    # -- returns --------------------------------------------------------

    def _check_returns(self, summary: ModuleSummary,
                       info: FunctionInfo) -> Iterator[Finding]:
        promised = _name_unit(info.qualname.rsplit(".", 1)[-1])
        if promised is None:
            return
        for ret in info.returns:
            if ret.unit is None:
                continue
            problem = _mismatch(ret.unit, promised)
            if problem is not None:
                yield self._finding(
                    summary, info, ret.line, ret.col,
                    f"'{info.qualname}' promises _{promised.suffix} but "
                    f"returns '{ret.unit.display}': {problem}")

    def _finding(self, summary: ModuleSummary, info: FunctionInfo,
                 line: int, col: int, message: str) -> Finding:
        return Finding(rule=self.id, message=message, path=summary.path,
                       line=line, col=col, scope=info.qualname)
