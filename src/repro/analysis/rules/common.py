"""Shared vocabulary for the RPR rule families.

Canonical names here are post-resolution (see
:meth:`repro.analysis.context.FileContext.dotted_name`), so ``np.random
.seed`` and ``numpy.random.seed`` are the same entry.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import FileContext
from ..findings import Finding

#: Calls that read the wall clock (or other ambient entropy). Banned in
#: deterministic code; elapsed-time reporting must use the allowlist.
WALL_CLOCK_CALLS = frozenset({
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "os.urandom",
    "os.getrandom",
    "uuid.uuid1",
    "uuid.uuid4",
})

#: Monotonic/process clocks: explicitly fine for elapsed-time reporting
#: (they never leak into simulated quantities the way calendar time can).
ALLOWED_CLOCK_CALLS = frozenset({
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
})

#: numpy legacy global-state functions (``np.random.<fn>`` drawing from
#: the hidden module-level RandomState).
NUMPY_GLOBAL_FUNCS = frozenset({
    "seed", "rand", "randn", "randint", "random", "random_sample",
    "ranf", "sample", "choice", "shuffle", "permutation", "uniform",
    "normal", "standard_normal", "poisson", "exponential", "binomial",
    "beta", "gamma", "geometric", "pareto", "bytes", "get_state",
    "set_state",
})

#: RNG constructors: only ``repro.sim.rng`` may build generator objects;
#: everything else must thread a Generator or go through RngRegistry.
RNG_CONSTRUCTOR_CALLS = frozenset({
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.RandomState",
    "numpy.random.PCG64",
    "numpy.random.PCG64DXSM",
    "numpy.random.MT19937",
    "numpy.random.Philox",
    "numpy.random.SFC64",
    "numpy.random.SeedSequence",
    "random.Random",
    "random.SystemRandom",
})

#: The one module allowed to construct numpy bit generators.
RNG_HOME_MODULE = "repro.sim.rng"

#: Builtin consumers whose result depends on iteration order: feeding
#: them a ``set`` makes output depend on PYTHONHASHSEED across processes.
ORDER_SENSITIVE_CONSUMERS = frozenset({
    "sum", "list", "tuple", "enumerate", "reduce", "functools.reduce",
    "fsum", "math.fsum",
})


def is_set_expr(node: ast.expr) -> bool:
    """True for expressions that are syntactically a ``set``.

    Covers set displays, set comprehensions, ``set(...)`` /
    ``frozenset(...)`` calls, and binary set algebra over either.
    """
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return is_set_expr(node.left) or is_set_expr(node.right)
    return False


def iter_calls(ctx: FileContext) -> Iterator[tuple[ast.Call, str]]:
    """Yield ``(call_node, resolved_dotted_name)`` for resolvable calls."""
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            name = ctx.dotted_name(node.func)
            if name is not None:
                yield node, name


def make_finding(rule: str, ctx: FileContext, node: ast.AST,
                 message: str) -> Finding:
    """Build a :class:`Finding` located at ``node`` in ``ctx``."""
    line = getattr(node, "lineno", 1)
    return Finding(
        rule=rule,
        message=message,
        path=ctx.path,
        line=line,
        col=getattr(node, "col_offset", 0),
        scope=ctx.scope_at(line),
    )


class Rule:
    """Base class: one rule family, one ``check`` pass over a file."""

    id: str = ""
    title: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError
