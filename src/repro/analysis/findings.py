"""Finding model for :mod:`repro.analysis` (``repro-lint``).

A :class:`Finding` is one rule violation at one source location. Its
:attr:`~Finding.fingerprint` deliberately excludes the line/column so a
baselined finding survives unrelated edits that shift code around; it
keys on (rule, file, enclosing scope, message) instead.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one source location."""

    rule: str           # "RPR001" .. "RPR004"
    message: str        # human-readable explanation (stable wording)
    path: str           # posix-style path as given to the linter
    line: int           # 1-based
    col: int            # 0-based (ast convention)
    scope: str = "<module>"  # enclosing ``Class.method`` qualname

    @property
    def fingerprint(self) -> str:
        """Line-independent identity used by the baseline file."""
        blob = f"{self.rule}|{self.path}|{self.scope}|{self.message}"
        return hashlib.sha256(blob.encode()).hexdigest()[:16]

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_json(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "scope": self.scope,
            "fingerprint": self.fingerprint,
        }


@dataclass(slots=True)
class FileReport:
    """All findings for one analyzed file, plus suppression accounting."""

    path: str
    findings: list[Finding] = field(default_factory=list)
    suppressed: int = 0
