"""Conservative call graph rooted at the shard entry points.

The shard-purity rule (RPR006) asks: *which code can run inside
:func:`repro.experiments.harness.execute_shard`?* This module answers
it over the :class:`~repro.analysis.modgraph.ModuleGraph` with a
deliberately over-approximating call graph:

* direct calls resolved through imports are precise edges;
* ``self.meth()`` / ``cls.meth()`` resolve against the enclosing class
  (walking analyzed bases);
* constructor calls edge into ``__init__`` / ``__post_init__`` of the
  resolved class;
* attribute calls on runtime objects (``server.plan_epoch()``) fall
  back to class-hierarchy analysis by *method name*: every analyzed
  class method with that name is assumed callable.

Over-approximation is the right failure mode for a purity gate — a
function wrongly considered reachable produces at worst a reviewable
finding; one wrongly considered unreachable hides a real shared-state
bug behind the coordinator/worker split the ROADMAP is building toward.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from .modgraph import CallSite, FunctionInfo, ModuleGraph, ModuleSummary

#: Where shard execution enters: the dispatch function, the job payload
#: class, and the vectorized backend module (its classes are constructed
#: inside shard workers).
SHARD_ENTRY_POINTS = (
    "repro.experiments.harness.execute_shard",
    "repro.experiments.harness.ShardJob",
    "repro.sim.batched",
)


def resolve_call(graph: ModuleGraph, summary: ModuleSummary,
                 caller: FunctionInfo, site: CallSite) -> list[str]:
    """Candidate fully-qualified callees for one call site.

    Returns an empty list for calls that leave the analyzed project
    (stdlib, numpy). A single-element list is a *precise* edge; multiple
    elements mean name-based class-hierarchy fallback.
    """
    callee = site.callee
    parts = callee.split(".")

    # self.meth() / cls.meth(): precise resolution on the own class.
    if parts[0] in ("self", "cls") and len(parts) == 2 and caller.is_method:
        class_qual = caller.qualname.rsplit(".", 1)[0]
        resolved = graph.resolve_method(
            f"{summary.module}.{class_qual}", parts[1])
        return [resolved] if resolved else []

    # Locally-defined or imported symbol (module function, class, or a
    # fully-dotted path like repro.sim.rng.RngRegistry).
    for candidate in (f"{summary.module}.{callee}", callee):
        resolved = graph.resolve(candidate)
        if resolved is None:
            continue
        if resolved in graph.functions:
            return [resolved]
        if resolved in graph.classes:
            # Constructor: run __init__ and (dataclasses) __post_init__.
            edges = [fq for method in ("__init__", "__post_init__")
                     if (fq := graph.resolve_method(resolved, method))]
            return edges or [resolved + ".__init__"]
        if resolved in graph.modules:
            return []

    # Attribute call on a runtime object: conservative CHA by name.
    if len(parts) >= 2:
        method = parts[-1]
        return [fq for fq in graph.name_index.get(method, ())
                if graph.functions[fq][1].is_method]
    return []


@dataclass(slots=True)
class CallGraphNode:
    """Adjacency row: outgoing edges of one function."""

    fq: str
    edges: list[str] = field(default_factory=list)


class CallGraph:
    """Function-level adjacency + reachability over a module graph."""

    def __init__(self, graph: ModuleGraph) -> None:
        self.graph = graph
        self.edges: dict[str, list[str]] = {}
        for fq in sorted(graph.functions):
            summary, info = graph.functions[fq]
            out: list[str] = []
            seen: set[str] = set()
            for site in info.calls:
                for target in resolve_call(graph, summary, info, site):
                    if target in graph.functions and target not in seen:
                        seen.add(target)
                        out.append(target)
            self.edges[fq] = out

    def roots_for(self, entry_points: Iterable[str]) -> list[str]:
        """Expand entry-point specs into fully-qualified function roots.

        A spec may name a function, a class (all methods), or a module
        (all functions and methods). Unknown specs are skipped — a
        subset run simply has a smaller reachable surface.
        """
        roots: list[str] = []
        for spec in entry_points:
            resolved = self.graph.resolve(spec)
            if resolved is None:
                continue
            if resolved in self.graph.functions:
                roots.append(resolved)
            elif resolved in self.graph.classes:
                summary, cls = self.graph.classes[resolved]
                roots.extend(f"{resolved}.{method}"
                             for method in cls.methods
                             if f"{resolved}.{method}" in self.graph.functions)
            elif resolved in self.graph.modules:
                prefix = resolved + "."
                roots.extend(fq for fq in sorted(self.graph.functions)
                             if fq.startswith(prefix))
        return roots

    def reachable(self, entry_points: Iterable[str]
                  ) -> tuple[set[str], dict[str, str]]:
        """BFS closure from ``entry_points``.

        Returns ``(reachable fq names, parent map)``; the parent map
        lets findings render a *why-reachable* chain.
        """
        roots = self.roots_for(entry_points)
        parents: dict[str, str] = {}
        seen: set[str] = set(roots)
        frontier = list(roots)
        while frontier:
            current = frontier.pop(0)
            for target in self.edges.get(current, ()):
                if target not in seen:
                    seen.add(target)
                    parents[target] = current
                    frontier.append(target)
        return seen, parents

    def chain(self, fq: str, parents: dict[str, str],
              limit: int = 4) -> str:
        """Short ``a <- b <- c`` provenance string for a finding."""
        hops = [self._short(fq)]
        current = fq
        while current in parents and len(hops) < limit:
            current = parents[current]
            hops.append(self._short(current))
        return " <- ".join(hops)

    def _short(self, fq: str) -> str:
        """Render ``repro.pkg.mod.Cls.meth`` as ``mod.Cls.meth``."""
        entry = self.graph.functions.get(fq)
        if entry is None:
            return fq
        summary, info = entry
        module_tail = summary.module.rsplit(".", 1)[-1]
        return f"{module_tail}.{info.qualname}"


@dataclass(slots=True)
class ProjectContext:
    """Everything a project-level rule sees: graph + shard reachability."""

    graph: ModuleGraph
    callgraph: CallGraph
    reachable: set[str]
    parents: dict[str, str]

    @classmethod
    def build(cls, graph: ModuleGraph,
              entry_points: Iterable[str] = SHARD_ENTRY_POINTS
              ) -> "ProjectContext":
        """Construct the call graph and shard-reachable closure."""
        callgraph = CallGraph(graph)
        reachable, parents = callgraph.reachable(entry_points)
        return cls(graph=graph, callgraph=callgraph,
                   reachable=reachable, parents=parents)

    def iter_reachable(self) -> Iterator[tuple[ModuleSummary, FunctionInfo]]:
        """Shard-reachable functions in deterministic order (tests skipped)."""
        for fq in sorted(self.reachable):
            summary, info = self.graph.functions[fq]
            if not summary.is_test:
                yield summary, info
