"""Advertisers and campaigns.

A campaign is a budgeted intent to buy impressions at some valuation.
The reproduction does not need Microsoft's real demand curve — revenue
loss is a *fraction* — but it does need heterogeneous valuations (so
second-price auctions produce a non-degenerate price distribution) and
budgets (so demand is finite and campaigns churn).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Targeting wildcard: campaign bids on every category/platform.
ANY = "*"


@dataclass(slots=True)
class Campaign:
    """One advertiser campaign.

    Attributes
    ----------
    bid:
        The campaign's per-impression valuation (currency units; think
        CPM/1000).
    budget:
        Total spend cap; the campaign leaves the market once exhausted.
    category / platform:
        Targeting filters (:data:`ANY` matches everything).
    creative_bytes:
        Size of the ad creative the client must download.
    """

    campaign_id: str
    advertiser: str
    bid: float
    budget: float
    category: str = ANY
    platform: str = ANY
    creative_bytes: int = 4000
    spent: float = field(default=0.0)
    impressions: int = field(default=0)

    def __post_init__(self) -> None:
        if self.bid <= 0:
            raise ValueError("bid must be positive")
        if self.budget <= 0:
            raise ValueError("budget must be positive")

    @property
    def active(self) -> bool:
        """A campaign bids while it can still afford its own bid.

        Jittered clearing prices can slightly exceed the base bid, so a
        small overspend remains possible — real networks overdeliver in
        the same way.
        """
        return self.remaining_budget >= self.bid

    @property
    def remaining_budget(self) -> float:
        return self.budget - self.spent

    def matches(self, category: str, platform: str) -> bool:
        """Whether the campaign targets this slot context."""
        return ((self.category == ANY or self.category == category)
                and (self.platform == ANY or self.platform == platform))

    def charge(self, price: float) -> None:
        """Commit budget for a won impression at ``price``.

        For sold-ahead impressions this happens at *sale* time — the
        budget is committed while the outcome is pending — and
        :meth:`refund` returns it if the impression is never delivered.
        """
        if price < 0:
            raise ValueError("price must be non-negative")
        self.spent += price
        self.impressions += 1

    def refund(self, price: float) -> None:
        """Return committed budget for an undelivered (voided) sale.

        ``spent`` is a float accumulator, so refunding the last
        outstanding sale can overshoot it by a few ulp
        (``(a + b) - a != b``); such residue is clamped to zero rather
        than rejected.
        """
        if price < 0:
            raise ValueError("price must be non-negative")
        if price > self.spent + 1e-9 * max(1.0, price):
            raise ValueError("refund exceeds committed spend")
        self.spent = max(0.0, self.spent - price)
        self.impressions -= 1


@dataclass(frozen=True, slots=True)
class CampaignPoolConfig:
    """Knobs for sampling a synthetic demand side."""

    n_campaigns: int = 400
    median_bid: float = 1.0
    bid_sigma: float = 0.5
    budget_median: float = 50_000.0
    budget_sigma: float = 1.0
    targeted_fraction: float = 0.3
    categories: tuple[str, ...] = (
        "game", "tool", "weather", "news", "social", "photo", "media",
        "shopping")
    creative_bytes_low: int = 2500
    creative_bytes_high: int = 6000

    def __post_init__(self) -> None:
        if self.n_campaigns <= 0:
            raise ValueError("n_campaigns must be positive")
        if not 0.0 <= self.targeted_fraction <= 1.0:
            raise ValueError("targeted_fraction must be in [0, 1]")


def build_campaigns(config: CampaignPoolConfig,
                    rng: np.random.Generator) -> list[Campaign]:
    """Sample a campaign population with lognormal bids and budgets."""
    campaigns = []
    # Ids are numbered locally per build: a campaign pool must be a pure
    # function of (config, rng) so shard-local pools are identical no
    # matter how many pools this process built before (a process-global
    # counter would leak build history into ids and break the
    # parallelism-invariance of anything that records them).
    for idx in range(config.n_campaigns):
        bid = float(rng.lognormal(np.log(config.median_bid), config.bid_sigma))
        budget = float(rng.lognormal(np.log(config.budget_median),
                                     config.budget_sigma))
        if rng.random() < config.targeted_fraction:
            category = str(rng.choice(config.categories))
        else:
            category = ANY
        campaigns.append(Campaign(
            campaign_id=f"c{idx:05d}",
            advertiser=f"adv{idx % 97:03d}",
            bid=bid,
            budget=budget,
            category=category,
            creative_bytes=int(rng.integers(config.creative_bytes_low,
                                            config.creative_bytes_high + 1)),
        ))
    return campaigns
