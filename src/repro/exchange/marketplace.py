"""The ad exchange.

Sits between the ad server and the demand side. Two selling paths exist:

* :meth:`Exchange.sell_now` — the status-quo real-time path: a slot is
  on screen *right now*, the auction clears, the winner is billed
  immediately.
* :meth:`Exchange.sell_ahead` — the paper's path: the ad server offers
  inventory that is merely *predicted* to exist. The auction clears and
  the winner's budget is committed immediately (so demand depletes the
  same way it does under real-time selling), but *billing* is deferred
  until the impression is actually rendered (:meth:`settle_shown`);
  undelivered impressions are voided and refunded
  (:meth:`settle_violated`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.obs.runtime import current_obs

from .auction import AuctionConfig, AuctionOutcome, run_auction, run_bulk_auctions
from .campaign import ANY, Campaign


@dataclass(frozen=True, slots=True)
class Sale:
    """One sold impression (a contract to display an ad)."""

    sale_id: int
    campaign_id: str
    price: float
    creative_bytes: int
    sold_at: float
    deadline: float           # show-by time; inf for real-time sales

    @property
    def has_deadline(self) -> bool:
        return self.deadline != float("inf")


class Exchange:
    """Marketplace facade over a campaign population.

    Parameters
    ----------
    campaigns:
        The demand side; campaigns drop out as budgets exhaust.
    auction_config:
        Mechanics shared by all auctions.
    rng:
        Dedicated random stream (bid jitter, bidder sampling).
    component:
        Instrument/trace namespace for this marketplace instance.
        Headline runs hold two exchanges per shard (prefetch and the
        real-time baseline); distinct components keep their auction
        counters separable in the merged snapshot.
    """

    def __init__(self, campaigns: list[Campaign],
                 auction_config: AuctionConfig,
                 rng: np.random.Generator,
                 component: str = "exchange") -> None:
        self.campaigns = list(campaigns)
        self.auction_config = auction_config
        self.rng = rng
        self.component = component
        self._by_id = {c.campaign_id: c for c in self.campaigns}
        if len(self._by_id) != len(self.campaigns):
            raise ValueError("duplicate campaign ids")
        self._sale_ids = itertools.count()
        # Revenue ledger.
        self.billed_revenue = 0.0        # actually collected
        self.booked_revenue = 0.0        # sold (collected + pending + voided)
        self.voided_revenue = 0.0        # sold but never shown (SLA misses)
        self.sales_count = 0
        self.unsold_count = 0
        obs = current_obs()
        self._recorder = obs.recorder
        self._auction_counter = obs.metrics.counter(
            f"{component}.auctions.held")
        self._sold_counter = obs.metrics.counter(f"{component}.auctions.sold")
        self._price_hist = obs.metrics.histogram(
            f"{component}.clearing_price")

    # ------------------------------------------------------------------
    # Demand-side views
    # ------------------------------------------------------------------

    def eligible(self, category: str = ANY, platform: str = ANY) -> list[Campaign]:
        """Active campaigns targeting the given slot context."""
        return [c for c in self.campaigns
                if c.active and c.matches(category, platform)]

    def active_campaigns(self) -> int:
        return sum(1 for c in self.campaigns if c.active)

    def campaign(self, campaign_id: str) -> Campaign:
        return self._by_id[campaign_id]

    # ------------------------------------------------------------------
    # Selling
    # ------------------------------------------------------------------

    def sell_now(self, now: float, category: str = ANY,
                 platform: str = ANY) -> Sale | None:
        """Real-time auction for a slot being displayed immediately.

        The winner is billed on the spot (display is guaranteed).
        Returns ``None`` when the auction does not clear.
        """
        outcome = run_auction(self.eligible(category, platform),
                              self.auction_config, self.rng)
        self._auction_counter.inc()
        if not outcome.sold:
            self.unsold_count += 1
            return None
        sale = self._record(outcome, now, deadline=float("inf"))
        outcome.winner.charge(outcome.price)
        self.billed_revenue += outcome.price
        if self._recorder.enabled:
            self._recorder.instant(
                now, self.component, "auction.now",
                args={"sale": sale.sale_id, "campaign": sale.campaign_id})
        return sale

    def sell_ahead(self, now: float, count: int, deadline: float,
                   platform: str = ANY) -> list[Sale]:
        """Auction ``count`` *predicted* impressions, show-by ``deadline``.

        Predicted slots have no app context yet, so targeting is by
        platform only. Billing is deferred to settlement. Unsold
        predicted slots simply produce fewer sales than ``count``.
        """
        if deadline <= now:
            raise ValueError("deadline must be after the sale time")
        # Predicted slots have no app context yet; campaigns treat them
        # as run-of-network inventory for the user's platform, so
        # category targeting does not filter the bidder pool here.
        eligible = [c for c in self.campaigns
                    if c.active and (c.platform in (ANY, platform))]
        outcomes = run_bulk_auctions(eligible, count,
                                     self.auction_config, self.rng)
        self._auction_counter.inc(len(outcomes))
        sales = []
        for outcome in outcomes:
            if not outcome.sold:
                self.unsold_count += 1
                continue
            # Commit the budget now; billing waits for delivery.
            outcome.winner.charge(outcome.price)
            sales.append(self._record(outcome, now, deadline))
        if self._recorder.enabled:
            self._recorder.instant(
                now, self.component, "auction.ahead",
                args={"n_offered": count, "n_sold": len(sales)})
        return sales

    def _record(self, outcome: AuctionOutcome, now: float,
                deadline: float) -> Sale:
        sale = Sale(
            sale_id=next(self._sale_ids),
            campaign_id=outcome.winner.campaign_id,
            price=outcome.price,
            creative_bytes=outcome.winner.creative_bytes,
            sold_at=now,
            deadline=deadline,
        )
        self.booked_revenue += outcome.price
        self.sales_count += 1
        self._sold_counter.inc()
        self._price_hist.observe(outcome.price)
        return sale

    # ------------------------------------------------------------------
    # Settlement (prefetch path only)
    # ------------------------------------------------------------------

    def settle_shown(self, sale: Sale) -> None:
        """Bill a deferred sale: its impression was rendered in time.

        The budget was already committed at sale time.
        """
        self.billed_revenue += sale.price

    def settle_violated(self, sale: Sale) -> None:
        """Void a deferred sale that missed its deadline (SLA violation).

        The advertiser gets its committed budget back.
        """
        self._by_id[sale.campaign_id].refund(sale.price)
        self.voided_revenue += sale.price

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def mean_clearing_price(self) -> float:
        """Average booked price per sold impression."""
        if self.sales_count == 0:
            return 0.0
        return self.booked_revenue / self.sales_count
