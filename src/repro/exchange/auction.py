"""Second-price (Vickrey) auctions.

Each displayable slot — current or predicted — is sold in a sealed-bid
second-price auction among the campaigns targeting it: the highest
bidder wins and pays the second-highest bid (or the reserve). Per-bid
multiplicative jitter models the bid-landscape noise real exchanges see,
so clearing prices vary across otherwise identical slots.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .campaign import Campaign


@dataclass(frozen=True, slots=True)
class AuctionConfig:
    """Mechanics of a single auction."""

    reserve_price: float = 0.1
    bid_jitter_sigma: float = 0.15
    max_bidders: int = 24

    def __post_init__(self) -> None:
        if self.reserve_price < 0:
            raise ValueError("reserve_price must be non-negative")
        if self.max_bidders < 1:
            raise ValueError("max_bidders must be >= 1")


@dataclass(frozen=True, slots=True)
class AuctionOutcome:
    """Result of one auction. ``winner`` is ``None`` when unsold."""

    winner: Campaign | None
    price: float
    n_bidders: int

    @property
    def sold(self) -> bool:
        return self.winner is not None


def run_auction(eligible: list[Campaign], config: AuctionConfig,
                rng: np.random.Generator) -> AuctionOutcome:
    """Run one second-price auction over ``eligible`` campaigns.

    A random subset of at most ``max_bidders`` campaigns participates
    (real exchanges shard demand); jittered bids below the reserve are
    dropped. The winner is *not* charged here — the caller settles
    payment, because in prefetch mode payment is contingent on display.
    """
    if not eligible:
        return AuctionOutcome(winner=None, price=0.0, n_bidders=0)
    if len(eligible) > config.max_bidders:
        picks = rng.choice(len(eligible), size=config.max_bidders,
                           replace=False)
        bidders = [eligible[int(i)] for i in picks]
    else:
        bidders = eligible
    base = np.array([c.bid for c in bidders])
    jitter = rng.lognormal(mean=0.0, sigma=config.bid_jitter_sigma,
                           size=base.size)
    bids = base * jitter
    live = bids >= config.reserve_price
    if not live.any():
        return AuctionOutcome(winner=None, price=0.0, n_bidders=len(bidders))
    bids = np.where(live, bids, -np.inf)
    order = np.argsort(bids)
    win_idx = int(order[-1])
    if live.sum() >= 2:
        second = float(bids[order[-2]])
        price = max(second, config.reserve_price)
    else:
        price = config.reserve_price
    return AuctionOutcome(winner=bidders[win_idx], price=price,
                          n_bidders=len(bidders))


def run_bulk_auctions(eligible: list[Campaign], count: int,
                      config: AuctionConfig,
                      rng: np.random.Generator) -> list[AuctionOutcome]:
    """Run ``count`` independent auctions over the same eligible set.

    Vectorised across auctions: used when the ad server sells a whole
    epoch's predicted inventory at once. Budget attrition within the
    batch is handled by the caller (budgets are large relative to one
    epoch's spend).
    """
    if count <= 0:
        return []
    if not eligible:
        return [AuctionOutcome(None, 0.0, 0)] * count
    n_bidders = min(len(eligible), config.max_bidders)
    bids_base = np.array([c.bid for c in eligible])
    outcomes: list[AuctionOutcome] = []
    # One (count, n_bidders) matrix of participants and jittered bids.
    if len(eligible) > config.max_bidders:
        participant_idx = np.stack([
            rng.choice(len(eligible), size=n_bidders, replace=False)
            for _ in range(count)
        ])
    else:
        participant_idx = np.tile(np.arange(len(eligible)), (count, 1))
    jitter = rng.lognormal(0.0, config.bid_jitter_sigma,
                           size=(count, n_bidders))
    bids = bids_base[participant_idx] * jitter
    bids[bids < config.reserve_price] = -np.inf
    order = np.argsort(bids, axis=1)
    for row in range(count):
        row_bids = bids[row]
        live = np.isfinite(row_bids).sum()
        if live == 0:
            outcomes.append(AuctionOutcome(None, 0.0, n_bidders))
            continue
        win_col = int(order[row, -1])
        if live >= 2:
            price = max(float(row_bids[order[row, -2]]), config.reserve_price)
        else:
            price = config.reserve_price
        winner = eligible[int(participant_idx[row, win_col])]
        outcomes.append(AuctionOutcome(winner, price, n_bidders))
    return outcomes
