"""S7 — ad exchange: campaigns, second-price auctions, deferred billing."""

from .auction import AuctionConfig, AuctionOutcome, run_auction, run_bulk_auctions
from .campaign import ANY, Campaign, CampaignPoolConfig, build_campaigns
from .marketplace import Exchange, Sale

__all__ = [
    "Campaign",
    "CampaignPoolConfig",
    "build_campaigns",
    "ANY",
    "AuctionConfig",
    "AuctionOutcome",
    "run_auction",
    "run_bulk_auctions",
    "Exchange",
    "Sale",
]
