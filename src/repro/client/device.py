"""The phone: a radio plus tagged transfer helpers.

Every byte a client moves goes through its :class:`Device`, tagged
``"ad"`` or ``"app"``, so the run can split communication energy the way
the paper's measurement study does.
"""

from __future__ import annotations

from repro.radio.profiles import RadioProfile
from repro.radio.statemachine import RadioStateMachine, TransferRecord

TAG_AD = "ad"
TAG_APP = "app"


class Device:
    """Per-user device wrapping one radio state machine."""

    def __init__(self, user_id: str, profile: RadioProfile,
                 keep_timeline: bool = False) -> None:
        self.user_id = user_id
        # Per-transfer records are only needed when the caller wants the
        # state timeline; population-scale runs keep aggregates only.
        self.radio = RadioStateMachine(profile, keep_timeline=keep_timeline,
                                       keep_records=keep_timeline)
        self.ad_bytes = 0
        self.app_bytes = 0

    def ad_fetch(self, now: float, nbytes: int,
                 extra_s: float = 0.0) -> TransferRecord:
        """Download ad payload (a creative, a prefetch batch, a sync).

        ``extra_s`` extends the active-radio time beyond the throughput
        model — used by fault injection to charge honest energy for
        inflated sync latency (the radio stays up while the response
        dribbles in).
        """
        self.ad_bytes += nbytes
        duration = (self.radio.profile.transfer_time(nbytes) + extra_s
                    if extra_s > 0.0 else None)
        return self.radio.transfer(now, nbytes, TAG_AD, duration=duration)

    def app_request(self, now: float, nbytes: int) -> TransferRecord:
        """One app-originated request/response pair."""
        self.app_bytes += nbytes
        return self.radio.transfer(now, nbytes, TAG_APP)

    def app_streaming(self, now: float, duration: float) -> TransferRecord:
        """Continuous app activity (e.g. audio streaming) for ``duration``.

        Modelled as one long transfer: request gaps shorter than the
        radio's first tail stage never let it leave the active state, so
        the energy is identical and the event count collapses.
        """
        nbytes = int(duration * self.radio.profile.throughput)
        self.app_bytes += nbytes
        return self.radio.transfer(now, nbytes, TAG_APP, duration=duration)

    def finish(self, horizon: float | None = None) -> None:
        """Settle the trailing radio tail at the end of a run."""
        self.radio.finalize(horizon)

    def ad_energy(self) -> float:
        """Marginal communication energy charged to advertising (J)."""
        return self.radio.energy_by_tag().get(TAG_AD, 0.0)

    def app_energy(self) -> float:
        """Marginal communication energy charged to the apps (J)."""
        return self.radio.energy_by_tag().get(TAG_APP, 0.0)

    @property
    def wakeups(self) -> int:
        return self.radio.wakeups
