"""S5 — client device, event timelines, ad cache, and the ad SDK."""

from .cache import AdQueue, CacheStats
from .device import TAG_AD, TAG_APP, Device
from .sdk import AdClient, ClientStats
from .timeline import (
    KIND_APP,
    KIND_APP_STREAM,
    KIND_SLOT,
    KIND_SLOT_START,
    ClientTimeline,
    compile_timeline,
    compile_trace,
)

__all__ = [
    "Device",
    "TAG_AD",
    "TAG_APP",
    "ClientTimeline",
    "compile_timeline",
    "compile_trace",
    "KIND_SLOT",
    "KIND_SLOT_START",
    "KIND_APP",
    "KIND_APP_STREAM",
    "AdQueue",
    "CacheStats",
    "AdClient",
    "ClientStats",
]
