"""Per-client event timelines compiled from a trace.

The end-to-end simulations replay, per client, a chronological stream of
three event kinds:

* ``SLOT`` — an ad rotation fired while an app was in foreground;
* ``APP`` — one app-originated request/response;
* ``APP_STREAM`` — a continuous-activity span (chatty apps whose request
  gaps are shorter than the radio's first tail stage collapse into one
  span with identical radio energy).

Compiling the trace once into flat numpy arrays makes epoch slicing a
pair of ``searchsorted`` calls instead of a discrete-event queue with
millions of entries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.radio.profiles import RadioProfile
from repro.traces.schema import Trace, UserTrace
from repro.workloads.appstore import AppProfile

KIND_SLOT = 0
KIND_APP = 1
KIND_APP_STREAM = 2
#: First ad slot of a foreground session (app launch) — the SDK's
#: natural check-in point.
KIND_SLOT_START = 3


@dataclass(slots=True)
class ClientTimeline:
    """One client's chronological event stream.

    ``payload`` is bytes for ``APP`` events, the span duration (seconds)
    for ``APP_STREAM`` events, and the catalog app index for ``SLOT``
    events (so fallback auctions know the slot's category).
    """

    user_id: str
    platform: str
    times: np.ndarray      # float64, sorted
    kinds: np.ndarray      # int8
    payload: np.ndarray    # float64

    def __len__(self) -> int:
        return int(self.times.size)

    def slot_count(self) -> int:
        return int(((self.kinds == KIND_SLOT)
                    | (self.kinds == KIND_SLOT_START)).sum())

    def window(self, start: float, end: float) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Events with ``start <= time < end`` (views, not copies)."""
        lo = int(np.searchsorted(self.times, start, side="left"))
        hi = int(np.searchsorted(self.times, end, side="left"))
        return self.times[lo:hi], self.kinds[lo:hi], self.payload[lo:hi]

    def first_slot_in(self, start: float, end: float) -> float | None:
        """Time of the first SLOT event in [start, end), or None."""
        times, kinds, _ = self.window(start, end)
        idx = np.flatnonzero((kinds == KIND_SLOT) | (kinds == KIND_SLOT_START))
        if idx.size == 0:
            return None
        return float(times[idx[0]])


def compile_timeline(user: UserTrace, apps: Sequence[AppProfile],
                     profile: RadioProfile) -> ClientTimeline:
    """Compile one user's sessions into a :class:`ClientTimeline`."""
    app_index = {a.app_id: i for i, a in enumerate(apps)}
    times: list[float] = []
    kinds: list[int] = []
    payload: list[float] = []
    for session in user.sessions:
        app = apps[app_index[session.app_id]]
        for i, t in enumerate(session.slot_times(app.ad_refresh_s)):
            times.append(t)
            kinds.append(KIND_SLOT_START if i == 0 else KIND_SLOT)
            payload.append(float(app_index[session.app_id]))
        if app.app_request_interval_s is None:
            continue
        if app.app_request_interval_s < profile.high_tail_time:
            # Streaming-class app: radio never leaves the active state
            # between requests — one continuous span, same energy.
            times.append(session.start)
            kinds.append(KIND_APP_STREAM)
            payload.append(session.duration)
        else:
            for t in session.app_request_times(app.app_request_interval_s):
                times.append(t)
                kinds.append(KIND_APP)
                payload.append(float(app.app_request_bytes))
    order = np.argsort(np.asarray(times, dtype=np.float64), kind="stable")
    return ClientTimeline(
        user_id=user.user_id,
        platform=user.platform,
        times=np.asarray(times, dtype=np.float64)[order],
        kinds=np.asarray(kinds, dtype=np.int8)[order],
        payload=np.asarray(payload, dtype=np.float64)[order],
    )


def compile_trace(trace: Trace, apps: Sequence[AppProfile],
                  profile: RadioProfile) -> dict[str, ClientTimeline]:
    """Compile every user in a trace (sorted user-id order)."""
    return {
        user.user_id: compile_timeline(user, apps, profile)
        for user in trace.sorted_users()
    }
