"""The client ad SDK.

Runs inside each (simulated) app process. Per prefetch epoch it:

1. **checks in** at the first ad slot — reporting displays since the
   previous sync, receiving invalidations and its new staggered queue,
   and downloading the batch in one radio transfer;
2. **serves slots locally** from the cache (zero radio cost);
3. **falls back** to the classic real-time fetch when the cache is dry.

The sync deliberately rides the first slot rather than the epoch
boundary: at that moment an app is in foreground, so the radio wakeup
the batch costs is the *only* ad-related wakeup of the epoch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.obs.runtime import current_obs
from repro.workloads.appstore import AppProfile

from .cache import AdQueue
from .device import Device
from .timeline import (KIND_APP, KIND_APP_STREAM, KIND_SLOT,
                        KIND_SLOT_START, ClientTimeline)


@dataclass(slots=True)
class ClientStats:
    """Lifetime counters of one SDK instance."""

    cached_displays: int = 0
    rescued_displays: int = 0
    fallback_displays: int = 0
    house_displays: int = 0
    syncs: int = 0

    @property
    def total_slots(self) -> int:
        return (self.cached_displays + self.rescued_displays
                + self.fallback_displays + self.house_displays)


class AdClient:
    """One user's SDK: cache, device, and the per-epoch protocol."""

    def __init__(self, timeline: ClientTimeline, device: Device,
                 apps: Sequence[AppProfile],
                 report_delay_s: float = 900.0,
                 report_bytes: int = 200) -> None:
        self.timeline = timeline
        self.device = device
        self.apps = list(apps)
        self.queue = AdQueue()
        self.stats = ClientStats()
        self.report_delay_s = report_delay_s
        self.report_bytes = report_bytes
        self._pending_reports: list[tuple[int, float]] = []
        obs = current_obs()
        self._recorder = obs.recorder
        self._sync_counter = obs.metrics.counter("client.syncs")
        self._beacon_counter = obs.metrics.counter("client.beacons")
        self._sync_bytes = obs.metrics.histogram("client.sync.bytes")
        self._display_counters = {
            outcome: obs.metrics.counter(f"client.displays.{outcome}")
            for outcome in ("cached", "rescued", "fallback", "house")}

    @property
    def user_id(self) -> str:
        return self.timeline.user_id

    def run_epoch(self, start: float, end: float, server) -> None:
        """Replay this client's events in ``[start, end)``.

        ``server`` is an :class:`~repro.server.adserver.AdServer`; the
        first slot of the window triggers the sync.
        """
        times, kinds, payload = self.timeline.window(start, end)
        synced = False
        for t, kind, p in zip(times, kinds, payload):
            if kind == KIND_SLOT or kind == KIND_SLOT_START:
                if not synced:
                    self._sync(float(t), server)
                    synced = True
                elif kind == KIND_SLOT_START and (len(self.queue)
                                                  or self._pending_reports):
                    # App launch mid-epoch: check in so stale replicas
                    # are invalidated before this session displays them
                    # (and pending deliveries arrive early).
                    self._sync(float(t), server)
                self._serve_slot(float(t), int(p), server)
                self._maybe_beacon(float(t), server)
            elif kind == KIND_APP:
                self.device.app_request(float(t), int(p))
                self._flush_reports(float(t), server)  # piggyback, radio warm
            elif kind == KIND_APP_STREAM:
                self.device.app_streaming(float(t), float(p))
                self._flush_reports(float(t), server)  # piggyback, radio warm
            else:  # pragma: no cover - timeline compiler emits only 4 kinds
                raise ValueError(f"unknown event kind {kind}")
        if times.size:
            self.flush_overdue(float(times[-1]), end, server)

    def _sync(self, now: float, server) -> None:
        """Check in: report, reconcile, download the new batch."""
        response = server.sync(self.user_id, now, self._pending_reports)
        self._pending_reports = []
        self.queue.invalidate(response.invalidated_ids)
        self.queue.drop_expired(now)
        self.queue.install(response.assignments)
        self.device.ad_fetch(now, response.nbytes)
        self.stats.syncs += 1
        self._sync_counter.inc()
        self._sync_bytes.observe(response.nbytes)
        if self._recorder.enabled:
            self._recorder.instant(
                now, "client", "sync",
                args={"user": self.user_id, "n_bytes": response.nbytes,
                      "n_ads": len(response.assignments)})

    def _serve_slot(self, now: float, app_index: int, server) -> None:
        """Fill one ad slot: cache first, fallback second."""
        sale = self.queue.pop_for_display(now)
        if sale is not None:
            server.record_display(sale.sale_id, self.user_id, now)
            self._pending_reports.append((sale.sale_id, now))
            self.stats.cached_displays += 1
            self._display_counters["cached"].inc()
            return
        # Dry cache: first try to rescue sold-but-unshown ads — this
        # client is demonstrably consuming slots right now.
        rescued = server.rescue(self.user_id, now)
        if rescued:
            from repro.core.overbooking import Assignment
            nbytes = sum(s.creative_bytes for s in rescued)
            self.device.ad_fetch(now, nbytes)
            self.queue.install([Assignment(s) for s in rescued])
            self._flush_reports(now, server)  # piggyback on the fetch
            sale = self.queue.pop_for_display(now)
            if sale is not None:
                server.record_display(sale.sale_id, self.user_id, now)
                self._pending_reports.append((sale.sale_id, now))
                # Report on the rescue fetch's still-open connection so
                # the original replicas are invalidated immediately.
                self._flush_reports(now, server)
                self.stats.rescued_displays += 1
                self._display_counters["rescued"].inc()
                return
        app = self.apps[app_index]
        fallback = server.realtime_fill(now, category=app.category,
                                        platform=self.timeline.platform)
        if fallback is not None:
            self.device.ad_fetch(now, fallback.creative_bytes)
            self._flush_reports(now, server)  # piggyback on the fetch
            self.stats.fallback_displays += 1
            self._display_counters["fallback"].inc()
        else:
            self.stats.house_displays += 1
            self._display_counters["house"].inc()

    def _flush_reports(self, now: float, server) -> None:
        """Hand pending impression reports to the server (free: the
        radio is already warm from the transfer we piggyback on); apply
        any invalidations the response carries."""
        if self._pending_reports:
            invalidated = server.report(self.user_id, self._pending_reports)
            self._pending_reports = []
            if invalidated:
                self.queue.invalidate(invalidated)

    def flush_overdue(self, now: float, end: float, server) -> None:
        """Fire the SDK's background report timer if it is due.

        Real SDKs schedule an OS timer ``report_delay_s`` after the first
        unreported impression; it fires even when no app is running. The
        beacon's radio cost is charged at its actual firing time.
        """
        if not self._pending_reports:
            return
        due = self._pending_reports[0][1] + self.report_delay_s
        if due < end:
            beacon_at = max(due, now)
            self.device.ad_fetch(beacon_at, self.report_bytes)
            self._flush_reports(beacon_at, server)
            self._beacon_counter.inc()
            if self._recorder.enabled:
                self._recorder.instant(beacon_at, "client", "beacon",
                                       args={"user": self.user_id,
                                             "kind": "timer"})

    def _maybe_beacon(self, now: float, server) -> None:
        """Flush reports with a dedicated beacon once they grow stale.

        This is the industry-standard batched impression beacon: it
        costs a real radio transfer (cheap when the tail is still warm,
        ~a full wakeup when not), bounding invalidation latency by
        ``report_delay_s``.
        """
        if not self._pending_reports:
            return
        oldest = self._pending_reports[0][1]
        if now - oldest >= self.report_delay_s:
            self.device.ad_fetch(now, self.report_bytes)
            self._flush_reports(now, server)
            self._beacon_counter.inc()
            if self._recorder.enabled:
                self._recorder.instant(now, "client", "beacon",
                                       args={"user": self.user_id,
                                             "kind": "stale"})
