"""The client ad SDK.

Runs inside each (simulated) app process. Per prefetch epoch it:

1. **checks in** at the first ad slot — reporting displays since the
   previous sync, receiving invalidations and its new staggered queue,
   and downloading the batch in one radio transfer;
2. **serves slots locally** from the cache (zero radio cost);
3. **falls back** to the classic real-time fetch when the cache is dry.

The sync deliberately rides the first slot rather than the epoch
boundary: at that moment an app is in foreground, so the radio wakeup
the batch costs is the *only* ad-related wakeup of the epoch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.faults.injector import UserFaults
from repro.obs.runtime import current_obs
from repro.workloads.appstore import AppProfile

from .cache import AdQueue
from .device import Device
from .timeline import (KIND_APP, KIND_APP_STREAM, KIND_SLOT,
                        KIND_SLOT_START, ClientTimeline)


@dataclass(slots=True)
class ClientStats:
    """Lifetime counters of one SDK instance."""

    cached_displays: int = 0
    rescued_displays: int = 0
    fallback_displays: int = 0
    house_displays: int = 0
    syncs: int = 0

    @property
    def total_slots(self) -> int:
        return (self.cached_displays + self.rescued_displays
                + self.fallback_displays + self.house_displays)


class AdClient:
    """One user's SDK: cache, device, and the per-epoch protocol."""

    def __init__(self, timeline: ClientTimeline, device: Device,
                 apps: Sequence[AppProfile],
                 report_delay_s: float = 900.0,
                 report_bytes: int = 200,
                 faults: UserFaults | None = None) -> None:
        self.timeline = timeline
        self.device = device
        self.apps = list(apps)
        self.queue = AdQueue()
        self.stats = ClientStats()
        self.report_delay_s = report_delay_s
        self.report_bytes = report_bytes
        self.faults = faults
        self._pending_reports: list[tuple[int, float]] = []
        # Sync retry state (reset per epoch): failed attempts so far and
        # the earliest time the next backoff retry may fire.
        self._sync_attempts = 0
        self._sync_retry_at: float | None = None
        obs = current_obs()
        self._recorder = obs.recorder
        self._sync_counter = obs.metrics.counter("client.syncs")
        self._beacon_counter = obs.metrics.counter("client.beacons")
        self._sync_bytes = obs.metrics.histogram("client.sync.bytes")
        self._display_counters = {
            outcome: obs.metrics.counter(f"client.displays.{outcome}")
            for outcome in ("cached", "rescued", "fallback", "house")}
        # Resilience instruments exist only on faulty runs so fault-free
        # metrics snapshots stay byte-identical to pre-fault builds.
        if faults is not None:
            self._retry_counter = obs.metrics.counter("sdk.retries")
            self._sync_failures = obs.metrics.counter("sdk.sync_failures")
            self._beacon_failures = obs.metrics.counter("sdk.beacon_failures")
            self._backoff_hist = obs.metrics.histogram("sdk.backoff_wait_s")

    @property
    def user_id(self) -> str:
        return self.timeline.user_id

    def run_epoch(self, start: float, end: float, server) -> None:
        """Replay this client's events in ``[start, end)``.

        ``server`` is an :class:`~repro.server.adserver.AdServer`; the
        first slot of the window triggers the sync.
        """
        times, kinds, payload = self.timeline.window(start, end)
        synced = False
        self._sync_attempts = 0
        self._sync_retry_at = None
        dark = False
        for t, kind, p in zip(times, kinds, payload):
            if self.faults is not None and self.faults.dark(float(t)):
                dark = True  # device churned away: no further events
                break
            if kind == KIND_SLOT or kind == KIND_SLOT_START:
                if not synced:
                    if self._sync_due(float(t)):
                        synced = self._attempt_sync(float(t), server)
                elif kind == KIND_SLOT_START and (len(self.queue)
                                                  or self._pending_reports):
                    # App launch mid-epoch: check in so stale replicas
                    # are invalidated before this session displays them
                    # (and pending deliveries arrive early).
                    self._attempt_sync(float(t), server)
                self._serve_slot(float(t), int(p), server)
                self._maybe_beacon(float(t), server)
            elif kind == KIND_APP:
                self.device.app_request(float(t), int(p))
                self._piggyback_reports(float(t), server)  # radio warm
            elif kind == KIND_APP_STREAM:
                self.device.app_streaming(float(t), float(p))
                self._piggyback_reports(float(t), server)  # radio warm
            else:  # pragma: no cover - timeline compiler emits only 4 kinds
                raise ValueError(f"unknown event kind {kind}")
        if times.size and not dark:
            self.flush_overdue(float(times[-1]), end, server)

    def _sync_due(self, now: float) -> bool:
        """Is a (re)sync attempt allowed at ``now`` this epoch?

        The first attempt is always due; after a failure, the next
        attempt waits out its exponential backoff and the whole epoch
        gives up once the retry budget is spent.
        """
        if self._sync_attempts == 0:
            return True
        return self._sync_retry_at is not None and now >= self._sync_retry_at

    def _attempt_sync(self, now: float, server) -> bool:
        """One gated sync attempt; schedules a backoff retry on failure.

        A lost attempt still cost a radio transfer (the request went
        out), charged at the plan's ``failed_attempt_bytes``; the
        pending impression reports stay queued for the retry — the
        deferred-report queue.
        """
        faults = self.faults
        if faults is not None and self._sync_attempts > 0:
            self._retry_counter.inc()
        if faults is None or faults.attempt(now):
            self._sync(now, server)
            self._sync_retry_at = None
            return True
        self._sync_failures.inc()
        plan = faults.plan
        if plan.failed_attempt_bytes:
            self.device.ad_fetch(now, plan.failed_attempt_bytes)
        self._sync_attempts += 1
        if self._sync_attempts <= plan.max_retries:
            wait = faults.backoff_wait(self._sync_attempts)
            self._backoff_hist.observe(wait)
            self._sync_retry_at = now + wait
        else:
            self._sync_retry_at = None  # retry budget exhausted this epoch
        return False

    def _sync(self, now: float, server) -> None:
        """Check in: report, reconcile, download the new batch."""
        response = server.sync(self.user_id, now, self._pending_reports)
        self._pending_reports = []
        delay = self.faults.sync_delay() if self.faults is not None else 0.0
        arrival = now + delay
        self.queue.invalidate(response.invalidated_ids)
        # Merge before expiring: ads that are already past (or reach)
        # their deadline by the time the download lands must be counted
        # as deadline losses, not silently skipped.
        self.queue.install(response.assignments)
        self.queue.drop_expired(arrival)
        self.device.ad_fetch(now, response.nbytes, extra_s=delay)
        self.stats.syncs += 1
        self._sync_counter.inc()
        self._sync_bytes.observe(response.nbytes)
        if self._recorder.enabled:
            self._recorder.instant(
                now, "client", "sync",
                args={"user": self.user_id, "n_bytes": response.nbytes,
                      "n_ads": len(response.assignments)})

    def _serve_slot(self, now: float, app_index: int, server) -> None:
        """Fill one ad slot: cache first, fallback second."""
        sale = self.queue.pop_for_display(now)
        if sale is not None:
            server.record_display(sale.sale_id, self.user_id, now)
            self._pending_reports.append((sale.sale_id, now))
            self.stats.cached_displays += 1
            self._display_counters["cached"].inc()
            return
        if self.faults is not None and not self.faults.attempt(now):
            # Dry cache and the server is unreachable: the rescue /
            # realtime request dies in flight. The attempt still woke
            # the radio; the slot degrades to a house ad.
            nbytes = self.faults.plan.failed_attempt_bytes
            if nbytes:
                self.device.ad_fetch(now, nbytes)
            self.stats.house_displays += 1
            self._display_counters["house"].inc()
            return
        # Dry cache: first try to rescue sold-but-unshown ads — this
        # client is demonstrably consuming slots right now.
        rescued = server.rescue(self.user_id, now)
        if rescued:
            from repro.core.overbooking import Assignment
            nbytes = sum(s.creative_bytes for s in rescued)
            self.device.ad_fetch(now, nbytes)
            self.queue.install([Assignment(s) for s in rescued])
            self._flush_reports(now, server)  # piggyback on the fetch
            sale = self.queue.pop_for_display(now)
            if sale is not None:
                server.record_display(sale.sale_id, self.user_id, now)
                self._pending_reports.append((sale.sale_id, now))
                # Report on the rescue fetch's still-open connection so
                # the original replicas are invalidated immediately.
                self._flush_reports(now, server)
                self.stats.rescued_displays += 1
                self._display_counters["rescued"].inc()
                return
        app = self.apps[app_index]
        fallback = server.realtime_fill(now, category=app.category,
                                        platform=self.timeline.platform)
        if fallback is not None:
            self.device.ad_fetch(now, fallback.creative_bytes)
            self._flush_reports(now, server)  # piggyback on the fetch
            self.stats.fallback_displays += 1
            self._display_counters["fallback"].inc()
        else:
            self.stats.house_displays += 1
            self._display_counters["house"].inc()

    def _flush_reports(self, now: float, server) -> None:
        """Hand pending impression reports to the server (free: the
        radio is already warm from the transfer we piggyback on); apply
        any invalidations the response carries.

        Callers must have cleared the fault gate for this contact
        already — the flush rides a transfer that is known to have
        reached the server."""
        if self._pending_reports:
            invalidated = server.report(self.user_id, self._pending_reports)
            self._pending_reports = []
            if invalidated:
                self.queue.invalidate(invalidated)

    def _piggyback_reports(self, now: float, server) -> None:
        """Opportunistic report flush on app traffic (free: radio warm).

        The app's own transfer succeeds regardless (app traffic is not
        the ad system's to lose), but the piggybacked report leg still
        crosses the ad network: under faults it can be lost, in which
        case the reports stay queued — the deferred-report queue.
        """
        if not self._pending_reports:
            return
        if self.faults is not None and not self.faults.attempt(now):
            return  # lost in flight: reports stay queued for later
        self._flush_reports(now, server)

    def flush_overdue(self, now: float, end: float, server) -> None:
        """Fire the SDK's background report timer if it is due.

        Real SDKs schedule an OS timer ``report_delay_s`` after the first
        unreported impression; it fires even when no app is running. The
        beacon's radio cost is charged at its actual firing time.
        """
        if not self._pending_reports:
            return
        due = self._pending_reports[0][1] + self.report_delay_s
        if due < end:
            beacon_at = max(due, now)
            if not self._beacon_attempt(beacon_at):
                return
            self.device.ad_fetch(beacon_at, self.report_bytes)
            self._flush_reports(beacon_at, server)
            self._beacon_counter.inc()
            if self._recorder.enabled:
                self._recorder.instant(beacon_at, "client", "beacon",
                                       args={"user": self.user_id,
                                             "kind": "timer"})

    def _beacon_attempt(self, now: float) -> bool:
        """Gate one impression beacon through the fault injector.

        A dark device costs nothing (it is off); a lost beacon still
        charged the radio for the failed request and keeps its reports
        queued for the next contact — the deferred-report queue.
        """
        if self.faults is None:
            return True
        if self.faults.dark(now):
            return False
        if self.faults.attempt(now):
            return True
        nbytes = self.faults.plan.failed_attempt_bytes
        if nbytes:
            self.device.ad_fetch(now, nbytes)
        self._beacon_failures.inc()
        return False

    def _maybe_beacon(self, now: float, server) -> None:
        """Flush reports with a dedicated beacon once they grow stale.

        This is the industry-standard batched impression beacon: it
        costs a real radio transfer (cheap when the tail is still warm,
        ~a full wakeup when not), bounding invalidation latency by
        ``report_delay_s``.
        """
        if not self._pending_reports:
            return
        oldest = self._pending_reports[0][1]
        if now - oldest >= self.report_delay_s:
            if not self._beacon_attempt(now):
                return
            self.device.ad_fetch(now, self.report_bytes)
            self._flush_reports(now, server)
            self._beacon_counter.inc()
            if self._recorder.enabled:
                self._recorder.instant(now, "client", "beacon",
                                       args={"user": self.user_id,
                                             "kind": "stale"})
