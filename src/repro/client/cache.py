"""The client-side ad cache (queue).

Prefetched ads are consumed strictly in dispatch order — the order the
overbooking planner staggered them in — with two ways an entry can die
unshown: its deadline expires, or a sync reveals another replica was
already displayed (invalidation).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.core.overbooking import Assignment
from repro.exchange.marketplace import Sale


@dataclass(slots=True)
class CacheStats:
    """Lifetime counters of one client's cache."""

    installed: int = 0
    displayed: int = 0
    expired: int = 0
    invalidated: int = 0
    bytes_installed: int = 0

    @property
    def wasted(self) -> int:
        """Downloads that never produced an impression."""
        return self.expired + self.invalidated


class AdQueue:
    """Ordered cache of prefetched ads."""

    def __init__(self) -> None:
        self._queue: deque[Assignment] = deque()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._queue)

    def install(self, assignments: list[Assignment]) -> int:
        """Append new assignments in dispatch order; returns bytes added."""
        nbytes = 0
        for assignment in assignments:
            self._queue.append(assignment)
            nbytes += assignment.sale.creative_bytes
        self.stats.installed += len(assignments)
        self.stats.bytes_installed += nbytes
        return nbytes

    def invalidate(self, shown_ids: set[int]) -> int:
        """Drop queued ads another replica already displayed."""
        if not shown_ids or not self._queue:
            return 0
        kept = deque(a for a in self._queue if a.sale_id not in shown_ids)
        removed = len(self._queue) - len(kept)
        self._queue = kept
        self.stats.invalidated += removed
        return removed

    def drop_expired(self, now: float) -> int:
        """Drop every queued ad whose deadline has passed."""
        if not self._queue:
            return 0
        kept = deque(a for a in self._queue if a.sale.deadline >= now)
        removed = len(self._queue) - len(kept)
        self._queue = kept
        self.stats.expired += removed
        return removed

    def pop_for_display(self, now: float) -> Sale | None:
        """Take the next displayable ad.

        Expired entries encountered on the way are discarded (they can
        never be shown); standby entries (``active_from`` in the future)
        are *skipped but kept* — their grace period protects the primary
        replica from duplicates.
        """
        standby: list[Assignment] = []
        found: Sale | None = None
        while self._queue:
            assignment = self._queue.popleft()
            if assignment.sale.deadline < now:
                self.stats.expired += 1
                continue
            if assignment.active_from > now:
                standby.append(assignment)
                continue
            found = assignment.sale
            self.stats.displayed += 1
            break
        for assignment in reversed(standby):
            self._queue.appendleft(assignment)
        return found

    def peek_ids(self) -> list[int]:
        """Sale ids currently queued (for tests and server estimates)."""
        return [a.sale_id for a in self._queue]
