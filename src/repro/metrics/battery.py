"""Battery-impact translation.

The paper motivates everything in battery-life terms; this module
converts the simulator's joules into the numbers a user would feel:
percent of a day's battery spent on ads, and hours of standby those
joules would have bought.
"""

from __future__ import annotations

from dataclasses import dataclass

from .energy import EnergyReport

#: A 2012-class smartphone battery: 1500 mAh at 3.7 V nominal.
DEFAULT_BATTERY_WH = 1.5 * 3.7
JOULES_PER_WH = 3600.0


@dataclass(frozen=True, slots=True)
class BatteryImpact:
    """Per-user-day battery cost of an energy report."""

    joules_per_user_day: float
    battery_wh: float

    @property
    def battery_joules(self) -> float:
        return self.battery_wh * JOULES_PER_WH

    @property
    def percent_of_battery_per_day(self) -> float:
        """Fraction of a full charge burned per day (0..1+)."""
        return self.joules_per_user_day / self.battery_joules

    def standby_hours_lost(self, standby_power_w: float = 0.025) -> float:
        """Standby time the same energy would have provided.

        ``standby_power_w`` is the phone's total idle draw (screen off,
        radio idle) — ~25 mW for the era's hardware.
        """
        if standby_power_w <= 0:
            raise ValueError("standby_power_w must be positive")
        return self.joules_per_user_day / standby_power_w / 3600.0


def battery_impact(report: EnergyReport,
                   battery_wh: float = DEFAULT_BATTERY_WH) -> BatteryImpact:
    """Battery impact of a run's *ad* energy."""
    if battery_wh <= 0:
        raise ValueError("battery_wh must be positive")
    return BatteryImpact(
        joules_per_user_day=report.ad_joules_per_user_day(),
        battery_wh=battery_wh,
    )


def savings_in_battery_terms(prefetch: EnergyReport, realtime: EnergyReport,
                             battery_wh: float = DEFAULT_BATTERY_WH
                             ) -> tuple[BatteryImpact, BatteryImpact, float]:
    """(prefetch impact, realtime impact, battery %/day saved)."""
    before = battery_impact(realtime, battery_wh)
    after = battery_impact(prefetch, battery_wh)
    return after, before, (before.percent_of_battery_per_day
                           - after.percent_of_battery_per_day)
