"""Energy aggregation across a client population."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.client.device import Device


@dataclass(frozen=True, slots=True)
class EnergyReport:
    """Population-wide communication-energy outcome of a run."""

    ad_joules: float
    app_joules: float
    wakeups: int
    ad_bytes: int
    app_bytes: int
    n_users: int
    days: float

    @property
    def communication_joules(self) -> float:
        return self.ad_joules + self.app_joules

    @property
    def ad_share_of_communication(self) -> float:
        """The paper's 65% number: ad energy / communication energy."""
        total = self.communication_joules
        if total <= 0:
            return 0.0
        return self.ad_joules / total

    def ad_joules_per_user_day(self) -> float:
        denom = self.n_users * self.days
        return self.ad_joules / denom if denom > 0 else 0.0

    def wakeups_per_user_day(self) -> float:
        denom = self.n_users * self.days
        return self.wakeups / denom if denom > 0 else 0.0


def aggregate_devices(devices: Iterable[Device], days: float) -> EnergyReport:
    """Sum per-device tagged energy into one report.

    Devices must already be finalized (trailing tails settled).
    """
    ad = app = 0.0
    wakeups = 0
    ad_bytes = app_bytes = 0
    n = 0
    for device in devices:
        ad += device.ad_energy()
        app += device.app_energy()
        wakeups += device.wakeups
        ad_bytes += device.ad_bytes
        app_bytes += device.app_bytes
        n += 1
    return EnergyReport(ad_joules=ad, app_joules=app, wakeups=wakeups,
                        ad_bytes=ad_bytes, app_bytes=app_bytes,
                        n_users=n, days=days)


def energy_savings(prefetch_ad_joules: float,
                   baseline_ad_joules: float) -> float:
    """Fractional reduction of ad energy overhead vs the baseline.

    The abstract's headline: this should exceed 0.5 at default settings.
    """
    if baseline_ad_joules <= 0:
        return 0.0
    return 1.0 - prefetch_ad_joules / baseline_ad_joules
