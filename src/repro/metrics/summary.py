"""Plain-text tables for experiment output.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep that output aligned and readable in a
terminal without pulling in a plotting stack.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def fmt_pct(x: float, digits: int = 2) -> str:
    """0.1234 -> '12.34%'."""
    return f"{100.0 * x:.{digits}f}%"


def fmt_si(x: float, unit: str = "", digits: int = 2) -> str:
    """Scale a value with k/M/G suffixes: 12_345 -> '12.35k'."""
    for factor, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if abs(x) >= factor:
            return f"{x / factor:.{digits}f}{suffix}{unit}"
    return f"{x:.{digits}f}{unit}"


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str | None = None) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, pairs: Iterable[tuple[object, object]],
                  x_label: str = "x", y_label: str = "y") -> str:
    """Render a figure's (x, y) series as a two-column table."""
    return format_table([x_label, y_label], pairs, title=name)
