"""Mergeable metric accumulators for sharded runs.

The sharded run harness (:mod:`repro.runner`) executes each user shard
in its own process and gets back one per-shard report per metric
family. These accumulators fold shard reports into population-wide
reports without ever needing the shards' raw per-device state.

Every accumulator is a small immutable value with an **associative**
``merge()``: ``a.merge(b).merge(c) == a.merge(b.merge(c))``. That is
what makes the reduction independent of how many worker processes ran
and in which order their futures completed — the runner always folds
shard results in shard-index order, and associativity guarantees any
tree-shaped reduction would produce the same totals.

``finalize()`` converts the accumulated sums into the ordinary report
types (:class:`~repro.metrics.energy.EnergyReport`,
:class:`~repro.core.sla.SlaReport`,
:class:`~repro.core.revenue.RevenueReport`) so downstream consumers
(tables, comparisons, tests) are oblivious to whether a run was
sharded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.client.device import Device
from repro.core.revenue import RevenueReport
from repro.core.sla import SlaReport

from .energy import EnergyReport


@dataclass(frozen=True, slots=True)
class EnergyAccumulator:
    """Mergeable sums behind an :class:`EnergyReport`."""

    ad_joules: float = 0.0
    app_joules: float = 0.0
    wakeups: int = 0
    ad_bytes: int = 0
    app_bytes: int = 0
    n_users: int = 0

    @classmethod
    def from_report(cls, report: EnergyReport) -> "EnergyAccumulator":
        """Lift one (shard-local) report into an accumulator."""
        return cls(
            ad_joules=report.ad_joules,
            app_joules=report.app_joules,
            wakeups=report.wakeups,
            ad_bytes=report.ad_bytes,
            app_bytes=report.app_bytes,
            n_users=report.n_users,
        )

    @classmethod
    def from_devices(cls, devices: Iterable[Device]) -> "EnergyAccumulator":
        """Accumulate finalized :class:`~repro.client.device.Device`s."""
        acc = cls()
        for device in devices:
            acc = acc.merge(cls(
                ad_joules=device.ad_energy(),
                app_joules=device.app_energy(),
                wakeups=device.wakeups,
                ad_bytes=device.ad_bytes,
                app_bytes=device.app_bytes,
                n_users=1,
            ))
        return acc

    def merge(self, other: "EnergyAccumulator") -> "EnergyAccumulator":
        """Associative pairwise combination (field-wise sums)."""
        return EnergyAccumulator(
            ad_joules=self.ad_joules + other.ad_joules,
            app_joules=self.app_joules + other.app_joules,
            wakeups=self.wakeups + other.wakeups,
            ad_bytes=self.ad_bytes + other.ad_bytes,
            app_bytes=self.app_bytes + other.app_bytes,
            n_users=self.n_users + other.n_users,
        )

    def finalize(self, days: float) -> EnergyReport:
        """Materialize the population-wide report for a ``days`` window."""
        return EnergyReport(
            ad_joules=self.ad_joules,
            app_joules=self.app_joules,
            wakeups=self.wakeups,
            ad_bytes=self.ad_bytes,
            app_bytes=self.app_bytes,
            n_users=self.n_users,
            days=days,
        )


@dataclass(frozen=True, slots=True)
class SlaAccumulator:
    """Mergeable sums behind an :class:`SlaReport`.

    The mean show latency is kept as a ``(sum, count)`` pair so that
    merging shards reweights it exactly (a mean of means would not).
    """

    n_sales: int = 0
    n_on_time: int = 0
    n_violated: int = 0
    n_duplicates: int = 0
    latency_sum_s: float = 0.0
    n_latencies: int = 0

    @classmethod
    def from_report(cls, report: SlaReport) -> "SlaAccumulator":
        """Lift one (shard-local) report into an accumulator.

        ``settle_sla`` records one latency sample per on-time sale, so
        the latency sum is recovered as ``mean * n_on_time``.
        """
        return cls(
            n_sales=report.n_sales,
            n_on_time=report.n_on_time,
            n_violated=report.n_violated,
            n_duplicates=report.n_duplicates,
            latency_sum_s=report.mean_latency_s * report.n_on_time,
            n_latencies=report.n_on_time,
        )

    def merge(self, other: "SlaAccumulator") -> "SlaAccumulator":
        """Associative pairwise combination (field-wise sums)."""
        return SlaAccumulator(
            n_sales=self.n_sales + other.n_sales,
            n_on_time=self.n_on_time + other.n_on_time,
            n_violated=self.n_violated + other.n_violated,
            n_duplicates=self.n_duplicates + other.n_duplicates,
            latency_sum_s=self.latency_sum_s + other.latency_sum_s,
            n_latencies=self.n_latencies + other.n_latencies,
        )

    def finalize(self) -> SlaReport:
        """Materialize the population-wide report."""
        mean = (self.latency_sum_s / self.n_latencies
                if self.n_latencies else 0.0)
        return SlaReport(
            n_sales=self.n_sales,
            n_on_time=self.n_on_time,
            n_violated=self.n_violated,
            n_duplicates=self.n_duplicates,
            mean_latency_s=mean,
        )


@dataclass(frozen=True, slots=True)
class RevenueAccumulator:
    """Mergeable sums behind a :class:`RevenueReport`.

    Every field of the report is already a population sum, so merging
    is plain field-wise addition; the duplicate opportunity cost keeps
    each shard's own mean clearing price baked in.
    """

    billed_prefetch: float = 0.0
    billed_fallback: float = 0.0
    voided: float = 0.0
    duplicate_impressions: int = 0
    duplicate_opportunity_cost: float = 0.0
    paid_impressions: int = 0
    fallback_impressions: int = 0
    unfilled_slots: int = 0

    @classmethod
    def from_report(cls, report: RevenueReport) -> "RevenueAccumulator":
        """Lift one (shard-local) report into an accumulator."""
        return cls(
            billed_prefetch=report.billed_prefetch,
            billed_fallback=report.billed_fallback,
            voided=report.voided,
            duplicate_impressions=report.duplicate_impressions,
            duplicate_opportunity_cost=report.duplicate_opportunity_cost,
            paid_impressions=report.paid_impressions,
            fallback_impressions=report.fallback_impressions,
            unfilled_slots=report.unfilled_slots,
        )

    def merge(self, other: "RevenueAccumulator") -> "RevenueAccumulator":
        """Associative pairwise combination (field-wise sums)."""
        return RevenueAccumulator(
            billed_prefetch=self.billed_prefetch + other.billed_prefetch,
            billed_fallback=self.billed_fallback + other.billed_fallback,
            voided=self.voided + other.voided,
            duplicate_impressions=(self.duplicate_impressions
                                   + other.duplicate_impressions),
            duplicate_opportunity_cost=(self.duplicate_opportunity_cost
                                        + other.duplicate_opportunity_cost),
            paid_impressions=self.paid_impressions + other.paid_impressions,
            fallback_impressions=(self.fallback_impressions
                                  + other.fallback_impressions),
            unfilled_slots=self.unfilled_slots + other.unfilled_slots,
        )

    def finalize(self) -> RevenueReport:
        """Materialize the population-wide report."""
        return RevenueReport(
            billed_prefetch=self.billed_prefetch,
            billed_fallback=self.billed_fallback,
            voided=self.voided,
            duplicate_impressions=self.duplicate_impressions,
            duplicate_opportunity_cost=self.duplicate_opportunity_cost,
            paid_impressions=self.paid_impressions,
            fallback_impressions=self.fallback_impressions,
            unfilled_slots=self.unfilled_slots,
        )


@dataclass(frozen=True, slots=True)
class MeanAccumulator:
    """Mergeable weighted mean (used for the mean replication factor)."""

    total: float = 0.0
    weight: float = 0.0

    @classmethod
    def from_mean(cls, mean: float, weight: float) -> "MeanAccumulator":
        """Lift a shard-local mean with its sample weight."""
        return cls(total=mean * weight, weight=weight)

    def merge(self, other: "MeanAccumulator") -> "MeanAccumulator":
        """Associative pairwise combination."""
        return MeanAccumulator(total=self.total + other.total,
                               weight=self.weight + other.weight)

    def finalize(self, default: float = 0.0) -> float:
        """The combined mean, or ``default`` with zero total weight."""
        return self.total / self.weight if self.weight else default
