"""S11 — energy/SLA/revenue aggregation and reporting."""

from .accumulators import (
    EnergyAccumulator,
    MeanAccumulator,
    RevenueAccumulator,
    SlaAccumulator,
)
from .battery import (
    DEFAULT_BATTERY_WH,
    BatteryImpact,
    battery_impact,
    savings_in_battery_terms,
)
from .energy import EnergyReport, aggregate_devices, energy_savings
from .outcomes import Comparison, PrefetchOutcome, RealtimeOutcome, compare
from .summary import fmt_pct, fmt_si, format_series, format_table

__all__ = [
    "EnergyAccumulator",
    "SlaAccumulator",
    "RevenueAccumulator",
    "MeanAccumulator",
    "EnergyReport",
    "aggregate_devices",
    "energy_savings",
    "PrefetchOutcome",
    "RealtimeOutcome",
    "Comparison",
    "compare",
    "format_table",
    "format_series",
    "fmt_pct",
    "fmt_si",
    "BatteryImpact",
    "battery_impact",
    "savings_in_battery_terms",
    "DEFAULT_BATTERY_WH",
]
