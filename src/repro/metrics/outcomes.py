"""Combined run outcomes and cross-system comparisons."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.revenue import RevenueReport
from repro.core.sla import SlaReport

from .energy import EnergyReport, energy_savings


@dataclass(frozen=True, slots=True)
class PrefetchOutcome:
    """Everything a prefetch run produces (one E9 column)."""

    energy: EnergyReport
    sla: SlaReport
    revenue: RevenueReport
    cached_displays: int
    rescued_displays: int
    fallback_displays: int
    house_displays: int
    wasted_downloads: int
    mean_replication: float
    syncs: int

    @property
    def total_slots(self) -> int:
        return (self.cached_displays + self.rescued_displays
                + self.fallback_displays + self.house_displays)

    @property
    def cache_hit_rate(self) -> float:
        """Slots served without a dedicated creative fetch."""
        total = self.total_slots
        return self.cached_displays / total if total else 0.0

    @property
    def prefetch_served_rate(self) -> float:
        """Slots that displayed a sold-ahead (prefetched) impression."""
        total = self.total_slots
        if not total:
            return 0.0
        return (self.cached_displays + self.rescued_displays) / total


@dataclass(frozen=True, slots=True)
class RealtimeOutcome:
    """Everything the status-quo baseline produces."""

    energy: EnergyReport
    billed_revenue: float
    impressions: int
    unfilled_slots: int

    @property
    def total_slots(self) -> int:
        return self.impressions + self.unfilled_slots


@dataclass(frozen=True, slots=True)
class Comparison:
    """Prefetch vs real-time on the identical trace (the headline row)."""

    energy_savings: float          # >0.5 is the paper's claim
    revenue_loss: float            # ~negligible is the claim
    sla_violation_rate: float      # ~negligible is the claim
    wakeup_reduction: float
    prefetch: PrefetchOutcome
    realtime: RealtimeOutcome


def compare(prefetch: PrefetchOutcome, realtime: RealtimeOutcome) -> Comparison:
    """Build the headline comparison."""
    wakeup_reduction = 0.0
    if realtime.energy.wakeups > 0:
        wakeup_reduction = 1.0 - prefetch.energy.wakeups / realtime.energy.wakeups
    return Comparison(
        energy_savings=energy_savings(prefetch.energy.ad_joules,
                                      realtime.energy.ad_joules),
        revenue_loss=prefetch.revenue.loss_vs(realtime.billed_revenue),
        sla_violation_rate=prefetch.sla.violation_rate,
        wakeup_reduction=wakeup_reduction,
        prefetch=prefetch,
        realtime=realtime,
    )
