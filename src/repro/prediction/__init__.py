"""S6 — client-side ad-slot predictors and their evaluation toolkit."""

from .base import (
    SlotPredictor,
    epochs_per_day,
    make_predictor,
    predictor_names,
    register_predictor,
)
from .errors import (
    ErrorSummary,
    PredictionLog,
    error_cdf,
    normalized_error,
    summarize_log,
)
from .evaluate import (
    EvaluationConfig,
    build_user_predictors,
    compare_models,
    evaluate_model,
    test_day_span,
    train_test_epoch_counts,
)
from .models import (
    EwmaTimeOfDayPredictor,
    GlobalMeanPredictor,
    HybridPredictor,
    LastValuePredictor,
    MarkovPredictor,
    OraclePredictor,
    QuantilePredictor,
    TimeOfDayMeanPredictor,
    ZeroPredictor,
)

__all__ = [
    "SlotPredictor",
    "register_predictor",
    "make_predictor",
    "predictor_names",
    "epochs_per_day",
    "ZeroPredictor",
    "LastValuePredictor",
    "GlobalMeanPredictor",
    "TimeOfDayMeanPredictor",
    "EwmaTimeOfDayPredictor",
    "MarkovPredictor",
    "QuantilePredictor",
    "HybridPredictor",
    "OraclePredictor",
    "PredictionLog",
    "ErrorSummary",
    "summarize_log",
    "error_cdf",
    "normalized_error",
    "EvaluationConfig",
    "evaluate_model",
    "compare_models",
    "build_user_predictors",
    "train_test_epoch_counts",
    "test_day_span",
]
