"""Prediction-error bookkeeping and metrics.

The overbooking model consumes *distributions* of prediction error, not
point accuracy, so this module keeps raw ``(predicted, actual)`` pairs
and derives whatever view a consumer needs: residual CDFs for the E4
figure, under/over-prediction rates, and normalised errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(slots=True)
class PredictionLog:
    """Accumulates (predicted, actual) pairs for one model."""

    model: str
    predicted: list[float] = field(default_factory=list)
    actual: list[int] = field(default_factory=list)

    def record(self, predicted: float, actual: int) -> None:
        if predicted < 0:
            raise ValueError("predictions must be non-negative")
        self.predicted.append(float(predicted))
        self.actual.append(int(actual))

    def __len__(self) -> int:
        return len(self.predicted)

    def arrays(self) -> tuple[np.ndarray, np.ndarray]:
        return (np.asarray(self.predicted, dtype=float),
                np.asarray(self.actual, dtype=float))

    def residuals(self) -> np.ndarray:
        """``predicted - actual`` (positive = over-prediction)."""
        pred, act = self.arrays()
        return pred - act

    def merged(self, other: "PredictionLog") -> "PredictionLog":
        """Pool two logs of the same model (e.g. across users)."""
        if other.model != self.model:
            raise ValueError("cannot merge logs of different models")
        out = PredictionLog(self.model)
        out.predicted = self.predicted + other.predicted
        out.actual = self.actual + other.actual
        return out


@dataclass(frozen=True, slots=True)
class ErrorSummary:
    """Point metrics of a prediction log (one row of the E4 table)."""

    model: str
    n: int
    mae: float
    rmse: float
    bias: float                  # mean(predicted - actual)
    over_rate: float             # fraction predicted > actual
    under_rate: float            # fraction predicted < actual
    exact_rate: float            # fraction round(predicted) == actual
    p90_abs_error: float


def summarize_log(log: PredictionLog) -> ErrorSummary:
    """Compute :class:`ErrorSummary` for a non-empty log."""
    if len(log) == 0:
        raise ValueError("empty prediction log")
    pred, act = log.arrays()
    resid = pred - act
    abs_resid = np.abs(resid)
    return ErrorSummary(
        model=log.model,
        n=len(log),
        mae=float(abs_resid.mean()),
        rmse=float(np.sqrt((resid ** 2).mean())),
        bias=float(resid.mean()),
        over_rate=float((resid > 0.5).mean()),
        under_rate=float((resid < -0.5).mean()),
        exact_rate=float((np.round(pred) == act).mean()),
        p90_abs_error=float(np.percentile(abs_resid, 90)),
    )


def error_cdf(log: PredictionLog) -> tuple[np.ndarray, np.ndarray]:
    """Absolute-error CDF: (sorted |error| values, cumulative prob)."""
    if len(log) == 0:
        raise ValueError("empty prediction log")
    v = np.sort(np.abs(log.residuals()))
    return v, np.arange(1, v.size + 1) / v.size


def normalized_error(log: PredictionLog) -> np.ndarray:
    """``(predicted - actual) / max(actual, 1)`` — scale-free residuals."""
    pred, act = log.arrays()
    return (pred - act) / np.maximum(act, 1.0)
