"""Offline predictor evaluation over a trace (experiment E4).

Walks a trace epoch by epoch: the first ``train_days`` warm each user's
model; on every test epoch the model predicts first, then observes the
truth (standard online evaluation, no leakage).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs import log as obs_log
from repro.traces.schema import SECONDS_PER_DAY, Trace
from repro.traces.stats import epoch_slot_counts

from .base import SlotPredictor, epochs_per_day, make_predictor
from .errors import ErrorSummary, PredictionLog, summarize_log
from .models import OraclePredictor

# Shared silenceable diagnostics (repro.obs.log); ad-hoc print()/logging
# is deprecated repo-wide.
_log = obs_log.get_logger("prediction.evaluate")


@dataclass(frozen=True, slots=True)
class EvaluationConfig:
    """Train/test split and epoch geometry for offline evaluation."""

    epoch_s: float = 3600.0
    train_days: int = 7

    def __post_init__(self) -> None:
        if self.train_days <= 0:
            raise ValueError("train_days must be positive")
        epochs_per_day(self.epoch_s)  # validates divisibility


def build_user_predictors(model: str, user_ids, epoch_s: float,
                          **kwargs) -> dict[str, SlotPredictor]:
    """One fresh predictor instance per user."""
    return {uid: make_predictor(model, epoch_s, **kwargs) for uid in user_ids}


def evaluate_model(model: str, trace: Trace, refresh_of: dict[str, float],
                   config: EvaluationConfig, **kwargs) -> PredictionLog:
    """Run one model over the whole population; returns the pooled log."""
    counts = epoch_slot_counts(trace, refresh_of, config.epoch_s)
    per_day = epochs_per_day(config.epoch_s)
    train_epochs = config.train_days * per_day
    if train_epochs >= trace.n_days * per_day:
        raise ValueError("train_days leaves no test epochs")
    log = PredictionLog(model)
    for uid, series in counts.items():
        predictor = make_predictor(model, config.epoch_s, **kwargs)
        if isinstance(predictor, OraclePredictor):
            predictor.set_truth(series, start_epoch=0)
        predictor.warm_up(series[:train_epochs], start_epoch=0)
        for epoch in range(train_epochs, series.size):
            predicted = predictor.predict(epoch)
            actual = int(series[epoch])
            log.record(predicted, actual)
            predictor.observe(epoch, actual)
    _log.debug("evaluated %s: %d users, %d test epochs each",
               model, len(counts), len(log) // max(len(counts), 1))
    return log


def compare_models(models, trace: Trace, refresh_of: dict[str, float],
                   config: EvaluationConfig) -> list[ErrorSummary]:
    """Evaluate several models; returns summaries sorted by MAE."""
    summaries = [
        summarize_log(evaluate_model(m, trace, refresh_of, config))
        for m in models
    ]
    summaries.sort(key=lambda s: s.mae)
    return summaries


def train_test_epoch_counts(trace: Trace, refresh_of: dict[str, float],
                            config: EvaluationConfig
                            ) -> tuple[dict[str, np.ndarray], int]:
    """Per-user epoch count series plus the index of the first test epoch.

    Convenience for end-to-end simulations that need the same geometry
    as offline evaluation.
    """
    counts = epoch_slot_counts(trace, refresh_of, config.epoch_s)
    first_test = config.train_days * epochs_per_day(config.epoch_s)
    return counts, first_test


def test_day_span(config: EvaluationConfig, trace: Trace) -> tuple[float, float]:
    """(start, end) simulated seconds of the test portion of a trace."""
    start = config.train_days * SECONDS_PER_DAY
    return start, trace.horizon
