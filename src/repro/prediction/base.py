"""Predictor interface and registry.

A *slot predictor* is the client-side model from the paper: given a
user's history of ad-slot counts per epoch (e.g. per hour), predict how
many slots the next epoch will surface. Predictions flow to the ad
server, which sells that many future impressions in the exchange.

Predictors are deliberately cheap — they must run on a phone — so the
interface is a pure online one:

* :meth:`SlotPredictor.observe` feeds the actual count of a finished
  epoch (training and test alike), and
* :meth:`SlotPredictor.predict` returns the expected count for an epoch.

Epoch indices are absolute (epoch 0 starts at the trace origin); the
epoch-of-day index, which carries the diurnal signal, is derived from
``epochs_per_day``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable

from repro.traces.schema import SECONDS_PER_DAY


def epochs_per_day(epoch_s: float) -> int:
    """Number of epochs per day; ``epoch_s`` must divide 24 h evenly."""
    if epoch_s <= 0:
        raise ValueError("epoch_s must be positive")
    n = SECONDS_PER_DAY / epoch_s
    if abs(n - round(n)) > 1e-9:
        raise ValueError(f"epoch length {epoch_s}s must divide a day evenly")
    return int(round(n))


class SlotPredictor(ABC):
    """Per-user online predictor of ad-slot counts per epoch."""

    def __init__(self, epoch_s: float) -> None:
        self.epoch_s = float(epoch_s)
        self.epochs_per_day = epochs_per_day(epoch_s)

    def epoch_of_day(self, epoch_index: int) -> int:
        return epoch_index % self.epochs_per_day

    @abstractmethod
    def observe(self, epoch_index: int, actual: int) -> None:
        """Record the true slot count of a completed epoch."""

    @abstractmethod
    def predict(self, epoch_index: int) -> float:
        """Predicted slot count for ``epoch_index`` (non-negative float)."""

    def warm_up(self, counts, start_epoch: int = 0) -> None:
        """Feed a contiguous history of epoch counts (training phase)."""
        for offset, actual in enumerate(counts):
            self.observe(start_epoch + offset, int(actual))


_REGISTRY: dict[str, Callable[[float], SlotPredictor]] = {}


def register_predictor(name: str):
    """Class decorator registering a predictor under ``name``.

    Registered constructors must accept ``epoch_s`` as their sole
    required argument so experiments can build any model from a string.
    """
    def decorator(cls):
        if name in _REGISTRY:
            raise ValueError(f"duplicate predictor name {name!r}")
        _REGISTRY[name] = cls
        cls.registry_name = name
        return cls
    return decorator


def make_predictor(name: str, epoch_s: float, **kwargs) -> SlotPredictor:
    """Instantiate a registered predictor by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown predictor {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return factory(epoch_s, **kwargs)


def predictor_names() -> list[str]:
    """All registered predictor names, sorted."""
    return sorted(_REGISTRY)
