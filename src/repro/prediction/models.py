"""The predictor suite.

The paper's finding is that *simple* client models suffice because the
overbooking layer absorbs their error; the suite spans the natural
design space from trivial (last value) to structured (time-of-day EWMA,
Markov) plus an oracle upper bound.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from .base import SlotPredictor, register_predictor


@register_predictor("zero")
class ZeroPredictor(SlotPredictor):
    """Always predicts zero slots (disables prefetching)."""

    def observe(self, epoch_index: int, actual: int) -> None:
        pass

    def predict(self, epoch_index: int) -> float:
        return 0.0


@register_predictor("last_value")
class LastValuePredictor(SlotPredictor):
    """Predicts the most recently observed epoch's count.

    Captures short-term burstiness but is blind to time of day: a busy
    evening epoch predicts a busy overnight epoch.
    """

    def __init__(self, epoch_s: float) -> None:
        super().__init__(epoch_s)
        self._last = 0

    def observe(self, epoch_index: int, actual: int) -> None:
        self._last = actual

    def predict(self, epoch_index: int) -> float:
        return float(self._last)


@register_predictor("global_mean")
class GlobalMeanPredictor(SlotPredictor):
    """Running mean over all observed epochs (no diurnal structure)."""

    def __init__(self, epoch_s: float) -> None:
        super().__init__(epoch_s)
        self._sum = 0.0
        self._count = 0

    def observe(self, epoch_index: int, actual: int) -> None:
        self._sum += actual
        self._count += 1

    def predict(self, epoch_index: int) -> float:
        if self._count == 0:
            return 0.0
        return self._sum / self._count


@register_predictor("time_of_day")
class TimeOfDayMeanPredictor(SlotPredictor):
    """Mean count for the same epoch-of-day across all observed days.

    The paper's core observation — phone use is diurnal and habitual —
    makes this the natural reference model.
    """

    def __init__(self, epoch_s: float) -> None:
        super().__init__(epoch_s)
        self._sums = np.zeros(self.epochs_per_day)
        self._counts = np.zeros(self.epochs_per_day, dtype=np.int64)

    def observe(self, epoch_index: int, actual: int) -> None:
        eod = self.epoch_of_day(epoch_index)
        self._sums[eod] += actual
        self._counts[eod] += 1

    def predict(self, epoch_index: int) -> float:
        eod = self.epoch_of_day(epoch_index)
        if self._counts[eod] == 0:
            return 0.0
        return float(self._sums[eod] / self._counts[eod])


@register_predictor("ewma")
class EwmaTimeOfDayPredictor(SlotPredictor):
    """Per-epoch-of-day exponentially weighted moving average.

    Like :class:`TimeOfDayMeanPredictor` but adapts when habits drift;
    ``alpha`` is the weight of the newest observation.
    """

    def __init__(self, epoch_s: float, alpha: float = 0.3) -> None:
        super().__init__(epoch_s)
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self._values = np.zeros(self.epochs_per_day)
        self._seen = np.zeros(self.epochs_per_day, dtype=bool)

    def observe(self, epoch_index: int, actual: int) -> None:
        eod = self.epoch_of_day(epoch_index)
        if self._seen[eod]:
            self._values[eod] = (self.alpha * actual
                                 + (1.0 - self.alpha) * self._values[eod])
        else:
            self._values[eod] = actual
            self._seen[eod] = True

    def predict(self, epoch_index: int) -> float:
        eod = self.epoch_of_day(epoch_index)
        return float(self._values[eod]) if self._seen[eod] else 0.0


@register_predictor("markov")
class MarkovPredictor(SlotPredictor):
    """First-order Markov chain over discretised activity levels.

    Counts are bucketed into geometric bins; the model predicts the
    expected bin midpoint of the next epoch given the current bin,
    blended with the time-of-day mean to anchor the diurnal signal.
    """

    BINS = (0, 1, 2, 4, 8, 16, 32, 64, 128)

    def __init__(self, epoch_s: float, blend: float = 0.5) -> None:
        super().__init__(epoch_s)
        if not 0.0 <= blend <= 1.0:
            raise ValueError("blend must be in [0, 1]")
        self.blend = blend
        n = len(self.BINS)
        self._transitions = np.zeros((n, n), dtype=np.int64)
        self._state = 0
        self._tod = TimeOfDayMeanPredictor(epoch_s)

    def _bin_of(self, count: int) -> int:
        for idx in range(len(self.BINS) - 1, -1, -1):
            if count >= self.BINS[idx]:
                return idx
        return 0

    def _midpoint(self, idx: int) -> float:
        lo = self.BINS[idx]
        hi = self.BINS[idx + 1] if idx + 1 < len(self.BINS) else lo * 1.5
        if idx == 0:
            return 0.0
        return (lo + max(hi - 1, lo)) / 2.0

    def observe(self, epoch_index: int, actual: int) -> None:
        new_state = self._bin_of(actual)
        self._transitions[self._state, new_state] += 1
        self._state = new_state
        self._tod.observe(epoch_index, actual)

    def predict(self, epoch_index: int) -> float:
        row = self._transitions[self._state]
        total = row.sum()
        tod = self._tod.predict(epoch_index)
        if total == 0:
            return tod
        probs = row / total
        markov = float(sum(p * self._midpoint(i) for i, p in enumerate(probs)))
        return self.blend * markov + (1.0 - self.blend) * tod


@register_predictor("quantile")
class QuantilePredictor(SlotPredictor):
    """Predicts a configurable percentile of the same-epoch-of-day history.

    ``q`` below 0.5 is deliberately conservative (under-predicts), which
    trades SLA headroom for fewer wasted prefetches; the overbooking
    ablation uses it to probe that trade-off.
    """

    def __init__(self, epoch_s: float, q: float = 0.5,
                 max_history: int = 60) -> None:
        super().__init__(epoch_s)
        if not 0.0 < q < 1.0:
            raise ValueError("q must be in (0, 1)")
        self.q = q
        self.max_history = max_history
        self._history: dict[int, list[int]] = defaultdict(list)

    def observe(self, epoch_index: int, actual: int) -> None:
        bucket = self._history[self.epoch_of_day(epoch_index)]
        bucket.append(actual)
        if len(bucket) > self.max_history:
            del bucket[0]

    def predict(self, epoch_index: int) -> float:
        bucket = self._history.get(self.epoch_of_day(epoch_index))
        if not bucket:
            return 0.0
        return float(np.quantile(np.array(bucket), self.q))


@register_predictor("hybrid")
class HybridPredictor(SlotPredictor):
    """Convex blend of time-of-day mean and last value.

    Time-of-day carries the habit; last value carries the current mood
    (an ongoing gaming binge raises the short-term forecast).
    """

    def __init__(self, epoch_s: float, weight_tod: float = 0.7) -> None:
        super().__init__(epoch_s)
        if not 0.0 <= weight_tod <= 1.0:
            raise ValueError("weight_tod must be in [0, 1]")
        self.weight_tod = weight_tod
        self._tod = TimeOfDayMeanPredictor(epoch_s)
        self._last = LastValuePredictor(epoch_s)

    def observe(self, epoch_index: int, actual: int) -> None:
        self._tod.observe(epoch_index, actual)
        self._last.observe(epoch_index, actual)

    def predict(self, epoch_index: int) -> float:
        return (self.weight_tod * self._tod.predict(epoch_index)
                + (1.0 - self.weight_tod) * self._last.predict(epoch_index))


@register_predictor("oracle")
class OraclePredictor(SlotPredictor):
    """Knows the future — the error-free upper bound for ablations.

    The truth is installed with :meth:`set_truth` before the run.
    """

    def __init__(self, epoch_s: float) -> None:
        super().__init__(epoch_s)
        self._truth: dict[int, int] = {}

    def set_truth(self, counts, start_epoch: int = 0) -> None:
        for offset, actual in enumerate(counts):
            self._truth[start_epoch + offset] = int(actual)

    def observe(self, epoch_index: int, actual: int) -> None:
        # Record anyway: keeps the oracle correct even for epochs the
        # caller never pre-installed.
        self._truth[epoch_index] = actual

    def predict(self, epoch_index: int) -> float:
        return float(self._truth.get(epoch_index, 0))
