"""S12 — experiment harness and one runner per paper table/figure."""

from .config import BENCH_SCALE, PAPER_SCALE, TEST_SCALE, ExperimentConfig
from .harness import (
    BACKENDS,
    MODES,
    PrefetchArtifacts,
    ShardExecution,
    ShardJob,
    World,
    execute_shard,
)
from .registry import EXPERIMENTS, Experiment, experiment_ids, run_experiment

__all__ = [
    "ExperimentConfig",
    "PAPER_SCALE",
    "BENCH_SCALE",
    "TEST_SCALE",
    "World",
    "PrefetchArtifacts",
    "BACKENDS",
    "MODES",
    "ShardJob",
    "ShardExecution",
    "execute_shard",
    "EXPERIMENTS",
    "Experiment",
    "experiment_ids",
    "run_experiment",
]
