"""S12 — experiment harness and one runner per paper table/figure."""

from .config import BENCH_SCALE, PAPER_SCALE, TEST_SCALE, ExperimentConfig
from .harness import (
    PrefetchArtifacts,
    World,
    clear_world_cache,
    get_world,
    run_prefetch_instrumented,
    run_prefetch_shard,
    run_realtime_shard,
)
from .registry import EXPERIMENTS, Experiment, experiment_ids, run_experiment

__all__ = [
    "ExperimentConfig",
    "PAPER_SCALE",
    "BENCH_SCALE",
    "TEST_SCALE",
    "World",
    "PrefetchArtifacts",
    "get_world",
    "clear_world_cache",
    "run_prefetch_instrumented",
    "run_prefetch_shard",
    "run_realtime_shard",
    "EXPERIMENTS",
    "Experiment",
    "experiment_ids",
    "run_experiment",
]
