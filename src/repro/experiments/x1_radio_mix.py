"""X1 (extension) — radio-technology sensitivity.

The paper evaluates on 3G, where the tail is king. Two forward-looking
questions it raises:

* does the case for prefetching survive on LTE (bigger tail power,
  shorter promotion)?
* how does the benefit erode as users shift to WiFi, whose tail is
  negligible?

Part A runs the headline comparison on homogeneous 3G/LTE/WiFi
populations; part B sweeps the WiFi share of a mixed 3G population.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import TYPE_CHECKING

from repro.metrics.summary import fmt_pct, format_table

from .config import ExperimentConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.runner import WorldSource

WIFI_FRACTIONS = (0.0, 0.3, 0.6, 1.0)


@dataclass(frozen=True, slots=True)
class RadioMixRow:
    label: str
    energy_savings: float
    sla_violation_rate: float
    revenue_loss: float
    realtime_ad_j_per_user_day: float
    prefetch_ad_j_per_user_day: float


@dataclass(frozen=True, slots=True)
class RadioMixStudy:
    homogeneous: list[RadioMixRow]   # 3g / lte / wifi
    mixed: list[RadioMixRow]         # wifi fraction sweep over 3G base

    def row_for(self, label: str) -> RadioMixRow:
        for row in self.homogeneous + self.mixed:
            if row.label == label:
                return row
        raise KeyError(label)

    def render(self) -> str:
        def rows(items):
            return [(r.label, fmt_pct(r.energy_savings, 1),
                     fmt_pct(r.sla_violation_rate), fmt_pct(r.revenue_loss),
                     f"{r.realtime_ad_j_per_user_day:.0f}",
                     f"{r.prefetch_ad_j_per_user_day:.0f}")
                    for r in items]
        head = ["population", "energy savings", "SLA violation",
                "revenue loss", "realtime J/u/d", "prefetch J/u/d"]
        return (format_table(head, rows(self.homogeneous),
                             title="X1a: homogeneous radio technologies")
                + "\n\n"
                + format_table(head, rows(self.mixed),
                               title="X1b: WiFi share of a 3G population"))


def _row(label: str, comparison) -> RadioMixRow:
    return RadioMixRow(
        label=label,
        energy_savings=comparison.energy_savings,
        sla_violation_rate=comparison.sla_violation_rate,
        revenue_loss=comparison.revenue_loss,
        realtime_ad_j_per_user_day=(
            comparison.realtime.energy.ad_joules_per_user_day()),
        prefetch_ad_j_per_user_day=(
            comparison.prefetch.energy.ad_joules_per_user_day()),
    )


def run_x1(config: ExperimentConfig | None = None, *,
           jobs: int = 1, backend: str = "event",
           source: "WorldSource | None" = None) -> RadioMixStudy:
    """Run both radio-technology studies."""
    from repro.runner import Runner, WorldSource

    config = config or ExperimentConfig()
    source = source or WorldSource()

    def headline(variant):
        return Runner(variant, parallelism=jobs, backend=backend,
                      source=source).run("headline").comparison

    homogeneous = []
    for radio in ("3g", "lte", "wifi"):
        variant = config.variant(radio=radio, wifi_fraction=0.0)
        homogeneous.append(_row(radio, headline(variant)))
    mixed = []
    for fraction in WIFI_FRACTIONS:
        variant = config.variant(radio="3g", wifi_fraction=fraction)
        mixed.append(_row(f"wifi={fraction:.0%}", headline(variant)))
    return RadioMixStudy(homogeneous=homogeneous, mixed=mixed)
