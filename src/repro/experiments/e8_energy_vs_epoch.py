"""E8 — prefetch-period sweep (paper's energy-vs-period figure).

Short epochs sync often (fresh predictions, fast invalidation, little
energy amortisation); long epochs amortise the radio but stretch the
feedback loop. Savings saturate once the batch dominates the wakeup.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics.summary import fmt_pct, format_table
from repro.traces.schema import SECONDS_PER_HOUR

from typing import TYPE_CHECKING

from .config import ExperimentConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.runner import WorldSource

DEFAULT_EPOCHS_H = (0.5, 1.0, 2.0, 3.0)


@dataclass(frozen=True, slots=True)
class EpochPoint:
    epoch_h: float
    energy_savings: float
    sla_violation_rate: float
    revenue_loss: float
    syncs_per_user_day: float


@dataclass(frozen=True, slots=True)
class EpochSweep:
    points: list[EpochPoint]

    def render(self) -> str:
        rows = [
            (f"{p.epoch_h:g}h", fmt_pct(p.energy_savings),
             fmt_pct(p.sla_violation_rate), fmt_pct(p.revenue_loss),
             f"{p.syncs_per_user_day:.1f}")
            for p in self.points
        ]
        return format_table(
            ["epoch T", "energy savings", "SLA violation", "revenue loss",
             "syncs/user/day"],
            rows,
            title="E8: prefetch period sweep (deadline fixed)")


def run_e8(config: ExperimentConfig | None = None,
           epochs_h: tuple[float, ...] = DEFAULT_EPOCHS_H, *,
           jobs: int = 1, backend: str = "event",
           source: "WorldSource | None" = None) -> EpochSweep:
    """Sweep the prefetch epoch length at a fixed deadline."""
    from repro.runner import Runner, WorldSource

    config = config or ExperimentConfig()
    world = (source or WorldSource()).world_for(config)
    points = []
    for t_h in epochs_h:
        epoch_s = t_h * SECONDS_PER_HOUR
        deadline_s = max(config.deadline_s, epoch_s)
        variant = config.variant(epoch_s=epoch_s, deadline_s=deadline_s,
                                 rescue_horizon_s=None)
        comparison = Runner(variant, parallelism=jobs, backend=backend,
                            world=world).run("headline").comparison
        p = comparison.prefetch
        denom = max(p.energy.n_users * p.energy.days, 1.0)
        points.append(EpochPoint(
            epoch_h=t_h,
            energy_savings=comparison.energy_savings,
            sla_violation_rate=comparison.sla_violation_rate,
            revenue_loss=comparison.revenue_loss,
            syncs_per_user_day=p.syncs / denom,
        ))
    return EpochSweep(points=points)
