"""E12 — radio activity figure (wakeups and state residency).

The mechanism behind the energy numbers, made visible: under real-time
serving the radio is promoted for every rotation; under prefetching it
wakes roughly once per active epoch. Uses a smaller population because
state timelines are memory-hungry.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.client.device import Device
from repro.client.timeline import KIND_APP, KIND_APP_STREAM
from repro.exchange.marketplace import Exchange
from repro.metrics.summary import fmt_pct, format_table
from repro.prediction.base import epochs_per_day
from repro.radio.profiles import get_profile

from typing import TYPE_CHECKING

from .config import ExperimentConfig
from .harness import ShardJob, execute_shard

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.runner import WorldSource


@dataclass(frozen=True, slots=True)
class RadioActivityFigure:
    """Wakeups/user/day and non-idle residency, both disciplines."""

    realtime_wakeups_per_user_day: float
    prefetch_wakeups_per_user_day: float
    realtime_residency: dict[str, float]    # state -> share of horizon
    prefetch_residency: dict[str, float]

    @property
    def wakeup_reduction(self) -> float:
        if self.realtime_wakeups_per_user_day <= 0:
            return 0.0
        return 1.0 - (self.prefetch_wakeups_per_user_day
                      / self.realtime_wakeups_per_user_day)

    def render(self) -> str:
        states = sorted(set(self.realtime_residency)
                        | set(self.prefetch_residency))
        rows = [("wakeups/user/day",
                 f"{self.realtime_wakeups_per_user_day:.1f}",
                 f"{self.prefetch_wakeups_per_user_day:.1f}")]
        for state in states:
            rows.append((f"residency:{state}",
                         fmt_pct(self.realtime_residency.get(state, 0.0)),
                         fmt_pct(self.prefetch_residency.get(state, 0.0))))
        return format_table(
            ["metric", "realtime", "prefetch"], rows,
            title="E12: radio wakeups and state residency "
                  f"(wakeup reduction {fmt_pct(self.wakeup_reduction, 1)})")


def _residency_shares(devices, horizon_s: float) -> dict[str, float]:
    total: dict[str, float] = {}
    n = 0
    for device in devices:
        n += 1
        for state, seconds in device.radio.state_residency().items():
            total[state] = total.get(state, 0.0) + seconds
    denom = max(n * horizon_s, 1.0)
    return {state: seconds / denom for state, seconds in total.items()
            if state != "idle"}


def run_e12(config: ExperimentConfig | None = None, *,
            source: "WorldSource | None" = None) -> RadioActivityFigure:
    """Replay a small population with full radio timelines."""
    from repro.runner import WorldSource

    config = config or ExperimentConfig(n_users=40, n_days=6, train_days=3)
    world = (source or WorldSource()).world_for(config)
    profile = get_profile(config.radio)
    per_day = epochs_per_day(config.epoch_s)
    start = config.train_days * per_day * config.epoch_s
    horizon = world.trace.horizon
    window = horizon - start

    # Prefetch side (instrumented, timelines kept — event backend only).
    job = ShardJob.for_world(config, world, mode="prefetch",
                             keep_radio_timeline=True)
    artifacts = execute_shard(job).prefetch
    assert artifacts is not None
    prefetch_devices = list(artifacts.devices.values())
    prefetch_wakeups = artifacts.outcome.energy.wakeups_per_user_day()

    # Real-time side, replayed with timeline-keeping devices.
    from repro.exchange.campaign import build_campaigns
    from repro.client.timeline import KIND_SLOT, KIND_SLOT_START
    from repro.sim.rng import RngRegistry

    registry = RngRegistry(config.seed)
    exchange = Exchange(build_campaigns(config.campaign_config(),
                                        registry.fresh("campaigns")),
                        config.auction_config(),
                        registry.fresh("exchange-e12"))
    realtime_devices = []
    wakeups = 0
    for uid in sorted(world.timelines):
        timeline = world.timelines[uid]
        device = Device(uid, profile, keep_timeline=True)
        realtime_devices.append(device)
        times, kinds, payload = timeline.window(start, horizon)
        for t, kind, p in zip(times, kinds, payload):
            if kind in (KIND_SLOT, KIND_SLOT_START):
                app = world.apps[int(p)]
                sale = exchange.sell_now(float(t), category=app.category,
                                         platform=timeline.platform)
                if sale is not None:
                    device.ad_fetch(float(t), sale.creative_bytes)
            elif kind == KIND_APP:
                device.app_request(float(t), int(p))
            elif kind == KIND_APP_STREAM:
                device.app_streaming(float(t), float(p))
        device.finish(horizon)
        wakeups += device.wakeups
    days = window / 86400.0
    realtime_wakeups = wakeups / max(len(realtime_devices) * days, 1.0)

    return RadioActivityFigure(
        realtime_wakeups_per_user_day=realtime_wakeups,
        prefetch_wakeups_per_user_day=prefetch_wakeups,
        realtime_residency=_residency_shares(realtime_devices, window),
        prefetch_residency=_residency_shares(prefetch_devices, window),
    )
