"""E13 — fault tolerance: SLA, revenue and energy under injected faults.

The paper's affordability argument assumes the network and the ad server
mostly work. E13 stresses that assumption with the :mod:`repro.faults`
injector: transfer loss, per-user connectivity outages, a scheduled
server blackout, sync latency inflation and device churn, all scaled by
one *intensity* knob. Three systems face the identical fault
environment:

* ``realtime`` — the status-quo baseline. Every failed per-slot fetch
  is a missed ad (there is no cache to fall back on).
* ``prefetch`` — prefetching with overbooking but no rescue path
  (``rescue_batch=0``): the cache absorbs faults until deadlines pass.
* ``prefetch+rescue`` — the full system plus contact-staleness rescue
  (``presumed_dark_after_s``): replicas on presumed-dark devices are
  re-dispatched to live ones.

Each system's revenue loss and energy overhead are measured against its
*own* zero-fault run, so the table isolates what faults cost rather than
re-stating E9. The headline acceptance check: the rescue system's SLA
violation rate stays strictly below real-time's ad-miss rate at every
non-zero intensity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.plan import FaultPlan
from repro.metrics.summary import fmt_pct, fmt_si, format_table
from repro.traces.schema import SECONDS_PER_DAY

from typing import TYPE_CHECKING

from .config import ExperimentConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.runner import WorldSource

#: Fault intensities swept (0 = the inert plan, the bit-identity anchor).
INTENSITIES = (0.0, 0.05, 0.15, 0.3)

SYSTEMS = ("realtime", "prefetch", "prefetch+rescue")


def plan_for(intensity: float, config: ExperimentConfig) -> FaultPlan:
    """Scale every fault mode by one intensity knob in [0, 1).

    Zero returns the empty plan (no injector is built). Non-zero plans
    combine transfer loss, connectivity outages, a single server
    blackout inside the test window, latency inflation and churn.
    """
    if intensity == 0.0:
        return FaultPlan()
    test_start = config.train_days * SECONDS_PER_DAY
    blackout_start = test_start + 6 * 3600.0
    blackout_end = blackout_start + intensity * 8 * 3600.0
    return FaultPlan(
        loss_prob=intensity,
        outage_rate_per_day=8.0 * intensity,
        outage_duration_s=900.0,
        server_outages=((blackout_start, blackout_end),),
        latency_mean_s=30.0 * intensity,
        churn_prob=0.3 * intensity,
    )


@dataclass(frozen=True, slots=True)
class FaultRow:
    """One (intensity, system) cell of the E13 sweep."""

    intensity: float
    system: str
    #: SLA violation rate for prefetch systems; ad-miss rate (unfilled
    #: slots / total slots) for real time — each system's broken-promise
    #: metric under faults.
    failure_rate: float
    billed_revenue: float
    #: Revenue loss vs the same system's zero-fault run.
    revenue_loss: float
    ad_joules_per_user_day: float
    #: Ad-energy overhead vs the same system's zero-fault run.
    energy_overhead: float


@dataclass(frozen=True, slots=True)
class FaultTable:
    """E13: fault-intensity sweep across serving systems."""

    rows: list[FaultRow]

    def row_for(self, intensity: float, system: str) -> FaultRow:
        for row in self.rows:
            if row.intensity == intensity and row.system == system:
                return row
        raise KeyError((intensity, system))

    def render(self) -> str:
        table_rows = []
        for r in self.rows:
            table_rows.append((
                f"{r.intensity:.2f}", r.system,
                fmt_pct(r.failure_rate), fmt_si(r.billed_revenue),
                fmt_pct(r.revenue_loss), f"{r.ad_joules_per_user_day:.0f}",
                fmt_pct(r.energy_overhead, 1),
            ))
        return format_table(
            ["intensity", "system", "SLA viol/miss", "revenue",
             "rev loss vs clean", "ad J/user/day", "energy overhead"],
            table_rows,
            title="E13: fault injection — SLA, revenue and energy vs "
                  "fault intensity\n(loss/overhead relative to each "
                  "system's own zero-fault run)")


def _system_config(system: str, config: ExperimentConfig,
                   plan: FaultPlan) -> ExperimentConfig:
    if system == "realtime":
        return config.variant(faults=plan)
    if system == "prefetch":
        return config.variant(rescue_batch=0, faults=plan)
    if system == "prefetch+rescue":
        return config.variant(
            presumed_dark_after_s=2.0 * config.epoch_s, faults=plan)
    raise ValueError(f"unknown E13 system {system!r}")


def run_e13(config: ExperimentConfig | None = None, *,
            intensities: tuple[float, ...] = INTENSITIES,
            jobs: int = 1, backend: str = "event",
            source: "WorldSource | None" = None) -> FaultTable:
    """Sweep fault intensity for each serving system on one world."""
    from repro.runner import Runner, WorldSource

    config = config or ExperimentConfig()
    world = (source or WorldSource()).world_for(config)
    rows: list[FaultRow] = []
    for system in SYSTEMS:
        baseline_revenue = 0.0
        baseline_joules = 0.0
        for intensity in intensities:
            run_config = _system_config(system, config,
                                        plan_for(intensity, config))
            runner = Runner(run_config, parallelism=jobs, backend=backend,
                            world=world)
            if system == "realtime":
                outcome = runner.run("realtime").realtime
                failure_rate = (outcome.unfilled_slots / outcome.total_slots
                                if outcome.total_slots else 0.0)
                revenue = outcome.billed_revenue
            else:
                outcome = runner.run("prefetch").prefetch
                failure_rate = outcome.sla.violation_rate
                revenue = outcome.revenue.total_billed
            joules = outcome.energy.ad_joules_per_user_day()
            if intensity == 0.0:
                baseline_revenue, baseline_joules = revenue, joules
            rows.append(FaultRow(
                intensity=intensity,
                system=system,
                failure_rate=failure_rate,
                billed_revenue=revenue,
                revenue_loss=(1.0 - revenue / baseline_revenue
                              if baseline_revenue else 0.0),
                ad_joules_per_user_day=joules,
                energy_overhead=(joules / baseline_joules - 1.0
                                 if baseline_joules else 0.0),
            ))
    return FaultTable(rows=rows)
