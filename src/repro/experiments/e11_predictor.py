"""E11 — ablation: client-model choice, end to end.

E4 measures offline accuracy; this experiment measures what accuracy is
*worth* once the overbooking layer is in the loop. The paper's point is
the gap between simple models and the oracle should be small on the
metrics that matter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics.summary import fmt_pct, format_table

from typing import TYPE_CHECKING

from .config import ExperimentConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.runner import WorldSource

DEFAULT_PREDICTORS = ("last_value", "global_mean", "time_of_day", "ewma",
                      "hybrid", "oracle")


@dataclass(frozen=True, slots=True)
class PredictorRow:
    predictor: str
    energy_savings: float
    revenue_loss: float
    sla_violation_rate: float
    prefetch_served_rate: float


@dataclass(frozen=True, slots=True)
class PredictorAblation:
    rows: list[PredictorRow]

    def row_for(self, predictor: str) -> PredictorRow:
        for row in self.rows:
            if row.predictor == predictor:
                return row
        raise KeyError(predictor)

    def render(self) -> str:
        table = [
            (r.predictor, fmt_pct(r.energy_savings, 1),
             fmt_pct(r.revenue_loss), fmt_pct(r.sla_violation_rate),
             fmt_pct(r.prefetch_served_rate, 1))
            for r in self.rows
        ]
        return format_table(
            ["predictor", "energy savings", "revenue loss", "SLA violation",
             "prefetch-served"],
            table,
            title="E11: end-to-end sensitivity to the client model")


def run_e11(config: ExperimentConfig | None = None,
            predictors: tuple[str, ...] = DEFAULT_PREDICTORS, *,
            jobs: int = 1, backend: str = "event",
            source: "WorldSource | None" = None) -> PredictorAblation:
    """Swap the client model; keep everything else fixed."""
    from repro.runner import Runner, WorldSource

    config = config or ExperimentConfig()
    world = (source or WorldSource()).world_for(config)
    rows = []
    for predictor in predictors:
        variant = config.variant(predictor=predictor)
        comparison = Runner(variant, parallelism=jobs, backend=backend,
                            world=world).run("headline").comparison
        rows.append(PredictorRow(
            predictor=predictor,
            energy_savings=comparison.energy_savings,
            revenue_loss=comparison.revenue_loss,
            sla_violation_rate=comparison.sla_violation_rate,
            prefetch_served_rate=comparison.prefetch.prefetch_served_rate,
        ))
    return PredictorAblation(rows=rows)
