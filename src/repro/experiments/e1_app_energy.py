"""E1 — the measurement study (paper Table 1).

The paper instruments the top 15 free Windows Phone apps with a power
monitor and finds that in-app advertising accounts for ~65% of each
app's communication energy and ~23% of its total energy, on average.

We reproduce the methodology: each catalog app is exercised standalone
for a day of typical sessions under status-quo real-time ad serving on
the 3G radio model; communication energy is split ad/app by marginal
attribution, and total energy adds a display/CPU draw over foreground
time (the part of 'total' that is not the radio).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics.summary import fmt_pct, format_table
from repro.radio.profiles import RadioProfile, get_profile
from repro.radio.statemachine import RadioStateMachine
from repro.workloads.appstore import TOP15, AppProfile

#: Screen + CPU draw while an app is in foreground (W). Mid-2012-class
#: hardware at medium brightness with game-class CPU/GPU load.
DISPLAY_POWER_W = 0.65

#: Sessions measured per app (the paper exercised each app repeatedly).
SESSIONS_PER_DAY = 10

#: Gap between measured sessions — long enough for the radio to go idle.
SESSION_GAP_S = 1200.0


@dataclass(frozen=True, slots=True)
class AppEnergyRow:
    """One row of the Table-1 reproduction."""

    app_id: str
    category: str
    ad_joules: float
    app_joules: float
    display_joules: float

    @property
    def communication_joules(self) -> float:
        return self.ad_joules + self.app_joules

    @property
    def total_joules(self) -> float:
        return self.communication_joules + self.display_joules

    @property
    def ad_share_of_communication(self) -> float:
        comm = self.communication_joules
        return self.ad_joules / comm if comm > 0 else 0.0

    @property
    def ad_share_of_total(self) -> float:
        total = self.total_joules
        return self.ad_joules / total if total > 0 else 0.0


def measure_app(app: AppProfile, profile: RadioProfile,
                sessions: int = SESSIONS_PER_DAY) -> AppEnergyRow:
    """Replay ``sessions`` median-length sessions of one app."""
    machine = RadioStateMachine(profile)
    display_joules = 0.0
    clock = 0.0
    for _ in range(sessions):
        duration = app.session_median_s
        display_joules += duration * DISPLAY_POWER_W
        events: list[tuple[float, str, int, float | None]] = [
            (offset, "ad", app.ad_bytes, None)
            for offset in app.slot_times_offsets(duration)
        ]
        if app.app_request_interval_s is not None:
            if app.app_request_interval_s < profile.high_tail_time:
                events.append((0.0, "app", int(duration * profile.throughput),
                               duration))
            else:
                t = 0.0
                while t <= duration:
                    events.append((t, "app", app.app_request_bytes, None))
                    t += app.app_request_interval_s
        events.sort(key=lambda e: e[0])
        for offset, tag, nbytes, span in events:
            machine.transfer(clock + offset, nbytes, tag, duration=span)
        clock += duration + SESSION_GAP_S
    machine.finalize()
    by_tag = machine.energy_by_tag()
    return AppEnergyRow(
        app_id=app.app_id,
        category=app.category,
        ad_joules=by_tag.get("ad", 0.0),
        app_joules=by_tag.get("app", 0.0),
        display_joules=display_joules,
    )


@dataclass(frozen=True, slots=True)
class AppEnergyStudy:
    """The full Table-1 reproduction."""

    rows: list[AppEnergyRow]

    @property
    def mean_ad_share_of_communication(self) -> float:
        return sum(r.ad_share_of_communication for r in self.rows) / len(self.rows)

    @property
    def mean_ad_share_of_total(self) -> float:
        return sum(r.ad_share_of_total for r in self.rows) / len(self.rows)

    def render(self) -> str:
        table_rows = [
            (r.app_id, r.category, f"{r.ad_joules:.0f}",
             f"{r.communication_joules:.0f}", f"{r.total_joules:.0f}",
             fmt_pct(r.ad_share_of_communication, 1),
             fmt_pct(r.ad_share_of_total, 1))
            for r in self.rows
        ]
        table_rows.append((
            "MEAN", "", "", "", "",
            fmt_pct(self.mean_ad_share_of_communication, 1),
            fmt_pct(self.mean_ad_share_of_total, 1),
        ))
        return format_table(
            ["app", "category", "ad J", "comm J", "total J",
             "ad/comm", "ad/total"],
            table_rows,
            title="E1 (Table 1): ad energy in the top-15 free apps "
                  "(paper: ~65% of communication, ~23% of total)")


def run_e1(radio: str = "3g") -> AppEnergyStudy:
    """Run the measurement study over the whole catalog."""
    profile = get_profile(radio)
    return AppEnergyStudy(rows=[measure_app(a, profile) for a in TOP15])
