"""E4 — client-model prediction accuracy (paper's predictor figure).

Offline train/test evaluation of the whole predictor suite on the same
trace geometry the live system uses (hourly epochs). The paper's point:
simple habit-based models are good enough, because overbooking absorbs
their residual error.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics.summary import format_table
from repro.prediction.errors import ErrorSummary
from repro.prediction.evaluate import EvaluationConfig, compare_models

from typing import TYPE_CHECKING

from .config import ExperimentConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.runner import WorldSource

DEFAULT_MODELS = ("last_value", "global_mean", "time_of_day", "ewma",
                  "markov", "quantile", "hybrid", "oracle")


@dataclass(frozen=True, slots=True)
class PredictionFigure:
    """Error summaries per model, sorted by MAE."""

    summaries: list[ErrorSummary]

    def summary_for(self, model: str) -> ErrorSummary:
        for s in self.summaries:
            if s.model == model:
                return s
        raise KeyError(model)

    def render(self) -> str:
        rows = [
            (s.model, s.n, f"{s.mae:.2f}", f"{s.rmse:.2f}", f"{s.bias:+.2f}",
             f"{s.over_rate:.2f}", f"{s.under_rate:.2f}",
             f"{s.p90_abs_error:.1f}")
            for s in self.summaries
        ]
        return format_table(
            ["model", "n", "MAE", "RMSE", "bias", "over", "under", "p90|e|"],
            rows,
            title="E4: slot-prediction accuracy (hourly epochs, online)")


def run_e4(config: ExperimentConfig | None = None,
           models: tuple[str, ...] = DEFAULT_MODELS, *,
           source: "WorldSource | None" = None) -> PredictionFigure:
    """Evaluate the predictor suite on the configured world."""
    from repro.runner import WorldSource

    config = config or ExperimentConfig()
    world = (source or WorldSource()).world_for(config)
    eval_config = EvaluationConfig(epoch_s=config.epoch_s,
                                   train_days=config.train_days)
    summaries = compare_models(models, world.trace, world.refresh_of,
                               eval_config)
    return PredictionFigure(summaries=summaries)
