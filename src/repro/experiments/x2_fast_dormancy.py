"""X2 (extension) — prefetching vs fast dormancy.

Fast dormancy is the OS/radio-layer answer to tail energy: release the
connection ~3 s after the last byte instead of waiting out the
network's timers. It attacks the same waste the paper attacks at the
application layer, so the natural question is whether the advertising
system needs to change at all.

Four cells: {real-time, prefetch} × {standard 3G, 3G with fast
dormancy}, identical traces. The expected story: fast dormancy alone
recovers part of the overhead (each fetch still pays a full promotion),
prefetching alone recovers more, and the two compose.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import TYPE_CHECKING

from repro.metrics.summary import fmt_pct, format_table

from .config import ExperimentConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.runner import WorldSource


@dataclass(frozen=True, slots=True)
class FastDormancyCell:
    serving: str                 # "realtime" | "prefetch"
    radio: str                   # "3g" | "3g-fd"
    ad_j_per_user_day: float
    savings_vs_baseline: float   # vs realtime on standard 3G


@dataclass(frozen=True, slots=True)
class FastDormancyStudy:
    cells: list[FastDormancyCell]

    def cell(self, serving: str, radio: str) -> FastDormancyCell:
        for c in self.cells:
            if c.serving == serving and c.radio == radio:
                return c
        raise KeyError((serving, radio))

    def render(self) -> str:
        rows = [
            (c.serving, c.radio, f"{c.ad_j_per_user_day:.0f}",
             fmt_pct(c.savings_vs_baseline, 1))
            for c in self.cells
        ]
        return format_table(
            ["serving", "radio", "ad J/user/day", "savings vs realtime/3G"],
            rows,
            title="X2: prefetching vs fast dormancy (identical traces)")


def run_x2(config: ExperimentConfig | None = None, *,
           jobs: int = 1, backend: str = "event",
           source: "WorldSource | None" = None) -> FastDormancyStudy:
    """Fill the 2x2 grid."""
    from repro.runner import Runner, WorldSource

    config = config or ExperimentConfig()
    source = source or WorldSource()
    cells: list[FastDormancyCell] = []
    baseline = None
    for radio in ("3g", "3g-fd"):
        variant = config.variant(radio=radio)
        comparison = Runner(variant, parallelism=jobs, backend=backend,
                            source=source).run("headline").comparison
        realtime_j = comparison.realtime.energy.ad_joules_per_user_day()
        prefetch_j = comparison.prefetch.energy.ad_joules_per_user_day()
        if baseline is None:
            baseline = realtime_j
        cells.append(FastDormancyCell(
            "realtime", radio, realtime_j, 1.0 - realtime_j / baseline))
        cells.append(FastDormancyCell(
            "prefetch", radio, prefetch_j, 1.0 - prefetch_j / baseline))
    return FastDormancyStudy(cells=cells)
