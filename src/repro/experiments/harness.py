"""End-to-end run harness.

Builds the world (population + trace + compiled timelines), then runs it
under either serving discipline:

* :func:`run_prefetch` — the paper's system: sell-ahead + overbooked
  dispatch + local serving with real-time fallback.
* :func:`run_realtime` — the status-quo baseline on the identical trace
  window with an identically seeded (but independent) marketplace.

Worlds are cached per configuration key so parameter sweeps that only
touch the serving side re-use the same trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.baselines.realtime import run_realtime as _run_realtime_engine
from repro.client.device import Device
from repro.client.sdk import AdClient
from repro.client.timeline import ClientTimeline, compile_timeline
from repro.core.overbooking import make_policy
from repro.exchange.campaign import build_campaigns
from repro.exchange.marketplace import Exchange
from repro.metrics.energy import aggregate_devices
from repro.metrics.outcomes import (
    Comparison,
    PrefetchOutcome,
    RealtimeOutcome,
    compare,
)
from repro.prediction.base import epochs_per_day, make_predictor
from repro.prediction.models import OraclePredictor
from repro.radio.profiles import RadioProfile, get_profile
from repro.server.adserver import AdServer
from repro.sim.rng import RngRegistry
from repro.traces.generator import TraceConfig, TraceGenerator
from repro.traces.schema import Trace
from repro.traces.stats import epoch_slot_counts, refresh_map
from repro.workloads.appstore import TOP15, AppProfile
from repro.workloads.population import build_population

from .config import ExperimentConfig


@dataclass(slots=True)
class PrefetchArtifacts:
    """Instrumented view of a prefetch run (experiments E12, tests)."""

    outcome: PrefetchOutcome
    devices: dict[str, Device]
    clients: dict
    server: AdServer


@dataclass(slots=True)
class World:
    """A generated population, its trace, and compiled timelines."""

    config_key: tuple
    trace: Trace
    apps: tuple[AppProfile, ...]
    timelines: dict[str, ClientTimeline]
    refresh_of: dict[str, float]
    profile_of: dict[str, RadioProfile]


_WORLD_CACHE: dict[tuple, World] = {}


def get_world(config: ExperimentConfig,
              apps: Sequence[AppProfile] = TOP15) -> World:
    """Build (or fetch from cache) the world for ``config``."""
    key = config.world_key()
    cached = _WORLD_CACHE.get(key)
    if cached is not None:
        return cached
    registry = RngRegistry(config.seed)
    population = build_population(config.population_config(),
                                  registry.stream("population"), tuple(apps))
    generator = TraceGenerator(apps, TraceConfig(n_days=config.n_days),
                               registry.stream("trace"))
    trace = generator.generate(population)
    base_profile = get_profile(config.radio)
    wifi = get_profile("wifi")
    assign_rng = registry.stream("radio-assignment")
    profile_of: dict[str, RadioProfile] = {}
    timelines: dict[str, ClientTimeline] = {}
    for user in trace.sorted_users():
        profile = (wifi if assign_rng.random() < config.wifi_fraction
                   else base_profile)
        profile_of[user.user_id] = profile
        timelines[user.user_id] = compile_timeline(user, apps, profile)
    world = World(
        config_key=key,
        trace=trace,
        apps=tuple(apps),
        timelines=timelines,
        refresh_of=refresh_map(apps),
        profile_of=profile_of,
    )
    _WORLD_CACHE[key] = world
    return world


def clear_world_cache() -> None:
    """Drop cached worlds (tests that probe generation determinism)."""
    _WORLD_CACHE.clear()


def _build_exchange(config: ExperimentConfig, registry: RngRegistry,
                    stream: str) -> Exchange:
    campaigns = build_campaigns(config.campaign_config(),
                                registry.fresh("campaigns"))
    return Exchange(campaigns, config.auction_config(),
                    registry.fresh(stream))


def run_prefetch(config: ExperimentConfig,
                 world: World | None = None) -> PrefetchOutcome:
    """Run the full prefetch system over the test window."""
    return run_prefetch_instrumented(config, world).outcome


def run_prefetch_instrumented(config: ExperimentConfig,
                              world: World | None = None,
                              keep_radio_timeline: bool = False
                              ) -> PrefetchArtifacts:
    """Like :func:`run_prefetch`, but returns devices/clients/server too."""
    world = world or get_world(config)
    registry = RngRegistry(config.seed)
    counts = epoch_slot_counts(world.trace, world.refresh_of, config.epoch_s)
    per_day = epochs_per_day(config.epoch_s)
    first_test = config.train_days * per_day
    n_epochs = config.n_days * per_day

    predictors = {}
    for uid in counts:
        predictor = make_predictor(config.predictor, config.epoch_s,
                                   **config.predictor_kwargs)
        if isinstance(predictor, OraclePredictor):
            predictor.set_truth(counts[uid], start_epoch=0)
        predictors[uid] = predictor

    exchange = _build_exchange(config, registry, "exchange-prefetch")
    policy = make_policy(config.policy, **config.policy_kwargs_full())
    server = AdServer(config.server_config(), exchange, policy, predictors,
                      registry.fresh("dispatch"))
    server.warm_up({uid: counts[uid][:first_test] for uid in counts})

    devices = {uid: Device(uid, world.profile_of[uid],
                           keep_timeline=keep_radio_timeline)
               for uid in world.timelines}
    clients = {
        uid: AdClient(world.timelines[uid], devices[uid], world.apps,
                      report_delay_s=config.report_delay_s)
        for uid in world.timelines
    }

    horizon = world.trace.horizon
    for epoch in range(first_test, n_epochs):
        now = epoch * config.epoch_s
        window_end = min(now + config.epoch_s, horizon)
        server.plan_epoch(epoch, now)
        # Clients sync at their first slot; process in sync-time order so
        # cross-client report visibility is chronological.
        schedule: list[tuple[float, str]] = []
        for uid, timeline in world.timelines.items():
            times, _, _ = timeline.window(now, window_end)
            if times.size == 0:
                continue
            first_slot = timeline.first_slot_in(now, window_end)
            schedule.append((first_slot if first_slot is not None
                             else float("inf"), uid))
        schedule.sort()
        scheduled = set()
        for _, uid in schedule:
            clients[uid].run_epoch(now, window_end, server)
            scheduled.add(uid)
        # Clients idle this epoch may still owe an impression beacon
        # (background report timer).
        for uid, client in clients.items():
            if uid not in scheduled:
                client.flush_overdue(now, window_end, server)
        server.observe_epoch(epoch, {uid: int(counts[uid][epoch])
                                     for uid in counts})

    for device in devices.values():
        device.finish(horizon)
    _outcomes, sla, revenue = server.finalize()

    cached = sum(c.stats.cached_displays for c in clients.values())
    rescued = sum(c.stats.rescued_displays for c in clients.values())
    fallback = sum(c.stats.fallback_displays for c in clients.values())
    house = sum(c.stats.house_displays for c in clients.values())
    wasted = sum(c.queue.stats.wasted + len(c.queue) for c in clients.values())
    outcome = PrefetchOutcome(
        energy=aggregate_devices(devices.values(), float(config.test_days)),
        sla=sla,
        revenue=revenue,
        cached_displays=cached,
        rescued_displays=rescued,
        fallback_displays=fallback,
        house_displays=house,
        wasted_downloads=wasted,
        mean_replication=server.mean_replication_factor(),
        syncs=server.syncs,
    )
    return PrefetchArtifacts(outcome=outcome, devices=devices,
                             clients=clients, server=server)


def run_realtime(config: ExperimentConfig,
                 world: World | None = None) -> RealtimeOutcome:
    """Run the status-quo baseline over the same test window."""
    world = world or get_world(config)
    registry = RngRegistry(config.seed)
    exchange = _build_exchange(config, registry, "exchange-realtime")
    per_day = epochs_per_day(config.epoch_s)
    start = config.train_days * per_day * config.epoch_s
    return _run_realtime_engine(world.timelines, world.apps,
                                world.profile_of, exchange, start,
                                world.trace.horizon)


def run_headline(config: ExperimentConfig,
                 world: World | None = None) -> Comparison:
    """Prefetch vs real-time on the identical trace (experiment E9)."""
    world = world or get_world(config)
    return compare(run_prefetch(config, world), run_realtime(config, world))
