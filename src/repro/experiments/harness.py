"""End-to-end run harness (single-shard core).

Builds the world (population + trace + compiled timelines), then runs a
set of clients under either serving discipline. The core here operates
on **one user subset at a time**; :mod:`repro.runner` partitions a
population into deterministic shards and drives this core once per
shard (possibly in parallel worker processes), then merges the results
through :mod:`repro.metrics.accumulators`.

Public entry points:

* :class:`repro.runner.Runner` — the supported API for full runs.
* :class:`ShardJob` / :func:`execute_shard` — the single-shard core: a
  ``ShardJob`` names the user subset, the serving ``mode``, and the
  execution ``backend``; ``execute_shard`` dispatches it to the
  event-driven engine or the vectorized :mod:`repro.sim.batched`
  backend (whole population == one shard with an empty RNG tag).
* :meth:`ShardJob.for_world` — convenience constructor for
  whole-population jobs (experiments, tests, introspection).

When the configuration carries a non-empty :class:`repro.faults.plan.
FaultPlan`, both serving modes build a :class:`repro.faults.
FaultInjector` and thread per-user fault decisions through the clients
(and the baseline's per-slot fetches); scheduled server blackouts turn
planning epochs into :meth:`~repro.server.adserver.AdServer.
degraded_epoch` records.

Worlds are provided by an explicit :class:`repro.runner.WorldSource`
owned by the caller — shard execution itself holds no module-global
state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.baselines.realtime import run_realtime as _run_realtime_engine
from repro.client.device import Device
from repro.client.sdk import AdClient
from repro.client.timeline import ClientTimeline, compile_timeline
from repro.core.overbooking import make_policy
from repro.exchange.campaign import build_campaigns
from repro.exchange.marketplace import Exchange
from repro.faults.injector import make_injector
from repro.metrics.energy import aggregate_devices
from repro.metrics.outcomes import PrefetchOutcome, RealtimeOutcome
from repro.obs.live import shard_heartbeat
from repro.obs.runtime import current_obs
from repro.prediction.base import epochs_per_day, make_predictor
from repro.prediction.models import OraclePredictor
from repro.radio.profiles import RadioProfile, get_profile
from repro.server.adserver import AdServer
from repro.sim.batched import BatchedAdServer, BatchedExchange, LogDevice
from repro.sim.rng import RngRegistry
from repro.traces.generator import TraceConfig, TraceGenerator
from repro.traces.schema import Trace
from repro.traces.stats import epoch_slot_counts, refresh_map
from repro.workloads.appstore import TOP15, AppProfile
from repro.workloads.population import build_population

from .config import ExperimentConfig

#: Serving disciplines a :class:`ShardJob` can request.
MODES = ("prefetch", "realtime", "headline")

#: Execution engines a :class:`ShardJob` can request.
BACKENDS = ("event", "batched")


def shard_rng_tag(shard_index: int, n_shards: int) -> str:
    """RNG-stream namespace for one shard.

    Empty for a single shard (the historical stream names), so a
    whole-population job reproduces the pre-sharding serial results
    exactly.
    """
    if n_shards == 1:
        return ""
    return f"#shard{shard_index}/{n_shards}"


@dataclass(slots=True)
class PrefetchArtifacts:
    """Instrumented view of a prefetch run (experiments E12, tests)."""

    outcome: PrefetchOutcome
    devices: dict[str, Device]
    clients: dict
    server: AdServer


@dataclass(slots=True)
class World:
    """A generated population, its trace, and compiled timelines."""

    config_key: tuple
    trace: Trace
    apps: tuple[AppProfile, ...]
    timelines: dict[str, ClientTimeline]
    refresh_of: dict[str, float]
    profile_of: dict[str, RadioProfile]


def world_from_trace(config: ExperimentConfig, trace: Trace,
                     apps: Sequence[AppProfile] = TOP15) -> World:
    """Compile a :class:`World` from an already-generated trace.

    Radio-profile assignment draws from the seed-derived
    ``radio-assignment`` stream in sorted-user order, so the same trace
    always yields the same assignment — including when the trace was
    reloaded from a :class:`repro.runner.WorldCache` disk spill.
    """
    registry = RngRegistry(config.seed)
    base_profile = get_profile(config.radio)
    wifi = get_profile("wifi")
    assign_rng = registry.stream("radio-assignment")
    profile_of: dict[str, RadioProfile] = {}
    timelines: dict[str, ClientTimeline] = {}
    for user in trace.sorted_users():
        profile = (wifi if assign_rng.random() < config.wifi_fraction
                   else base_profile)
        profile_of[user.user_id] = profile
        timelines[user.user_id] = compile_timeline(user, apps, profile)
    return World(
        config_key=config.world_key(),
        trace=trace,
        apps=tuple(apps),
        timelines=timelines,
        refresh_of=refresh_map(apps),
        profile_of=profile_of,
    )


def build_world(config: ExperimentConfig,
                apps: Sequence[AppProfile] = TOP15) -> World:
    """Generate the population + trace for ``config`` and compile it."""
    registry = RngRegistry(config.seed)
    population = build_population(config.population_config(),
                                  registry.stream("population"), tuple(apps))
    generator = TraceGenerator(apps, TraceConfig(n_days=config.n_days),
                               registry.stream("trace"))
    trace = generator.generate(population)
    return world_from_trace(config, trace, apps)


# ----------------------------------------------------------------------
# The shard-execution API
# ----------------------------------------------------------------------


@dataclass(slots=True, kw_only=True)
class ShardJob:
    """One unit of shard execution: *what* to simulate and *how*.

    A job carries plain data (config, timeline arrays, per-user radio
    profiles and slot counts) so it can be shipped to worker processes;
    ``backend`` selects the execution engine without changing the job's
    meaning — the batched backend is equivalent to the event engine
    under the contract in :mod:`repro.sim.batched`.

    This class is a serialization root of the shard boundary: every
    type reachable from its fields must stay statically picklable
    (``repro-lint`` RPR007 walks the closure and rejects callables,
    loggers, locks, handles, and lambda defaults), and the
    ``kw_only``/``slots`` declaration below is part of the checked
    contract.
    """

    config: ExperimentConfig
    apps: tuple[AppProfile, ...]
    timelines: Mapping[str, ClientTimeline]
    profile_of: Mapping[str, RadioProfile]
    horizon: float
    mode: str = "headline"
    #: Per-user epoch slot counts; required for prefetch modes.
    counts: Mapping[str, np.ndarray] | None = None
    shard_index: int = 0
    n_shards: int = 1
    backend: str = "event"
    #: Record full radio state timelines (event backend only; E12).
    keep_radio_timeline: bool = False

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(
                f"unknown mode {self.mode!r}; expected one of {MODES}")
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; "
                f"expected one of {BACKENDS}")
        if self.keep_radio_timeline and self.backend != "event":
            raise ValueError(
                "keep_radio_timeline requires the event backend (the "
                "batched backend settles radio energy without a state "
                "timeline)")
        if self.mode in ("prefetch", "headline") and self.counts is None:
            raise ValueError(
                f"mode {self.mode!r} needs per-user slot counts; pass "
                "counts= or build the job with ShardJob.for_world()")

    @property
    def rng_tag(self) -> str:
        return shard_rng_tag(self.shard_index, self.n_shards)

    @classmethod
    def for_world(cls, config: ExperimentConfig, world: World, *,
                  mode: str = "headline", backend: str = "event",
                  keep_radio_timeline: bool = False) -> "ShardJob":
        """Whole-population job over ``world`` (single shard, empty tag)."""
        counts = None
        if mode in ("prefetch", "headline"):
            counts = epoch_slot_counts(world.trace, world.refresh_of,
                                       config.epoch_s)
        return cls(config=config, apps=world.apps,
                   timelines=world.timelines, profile_of=world.profile_of,
                   counts=counts, horizon=world.trace.horizon,
                   mode=mode, backend=backend,
                   keep_radio_timeline=keep_radio_timeline)


@dataclass(slots=True)
class ShardExecution:
    """What :func:`execute_shard` produced for one job."""

    job: ShardJob
    prefetch: PrefetchArtifacts | None = None
    realtime: RealtimeOutcome | None = None


def execute_shard(job: ShardJob) -> ShardExecution:
    """Run one shard job on its selected backend.

    Dispatches each requested serving mode to the event-driven engine
    or the vectorized batched engine. The cross-user protocol order
    (server dispatch, auctions, rescue) is event-driven on both
    backends; the batched backend replaces the per-user/per-campaign
    hot paths with array operations (see :mod:`repro.sim.batched`).

    Purity contract: this function and everything it reaches must be a
    pure function of ``job`` — no module-global writes, environment
    mutation, open handles, or process state — so a dropped worker's
    shard can be re-executed bit-identically. ``repro-lint`` RPR006
    enforces this over the whole reachability closure.
    """
    result = ShardExecution(job=job)
    if job.mode in ("prefetch", "headline"):
        result.prefetch = _execute_prefetch(job)
    if job.mode in ("realtime", "headline"):
        result.realtime = _execute_realtime(job)
    return result


def _build_exchange(config: ExperimentConfig, registry: RngRegistry,
                    stream: str, rng_tag: str = "",
                    component: str = "exchange",
                    exchange_cls: type[Exchange] = Exchange) -> Exchange:
    """Build a marketplace on tagged RNG streams.

    ``rng_tag`` namespaces the campaign and auction streams per shard so
    shard-local exchanges are mutually independent yet deterministic in
    the shard layout alone (never in worker count or scheduling).
    ``component`` namespaces the marketplace's observability instruments
    (headline runs hold a prefetch and a real-time exchange per shard).
    """
    campaigns = build_campaigns(config.campaign_config(),
                                registry.fresh("campaigns" + rng_tag))
    return exchange_cls(campaigns, config.auction_config(),
                        registry.fresh(stream + rng_tag),
                        component=component)


def _execute_prefetch(job: ShardJob) -> PrefetchArtifacts:
    """Run the prefetch system over one user subset (a shard).

    Identical epoch loop on both backends; the batched backend swaps in
    the vectorized exchange/server/device components.
    """
    config = job.config
    timelines = job.timelines
    counts = job.counts
    assert counts is not None  # enforced by ShardJob.__post_init__
    rng_tag = job.rng_tag
    batched = job.backend == "batched"
    exchange_cls = BatchedExchange if batched else Exchange
    server_cls = BatchedAdServer if batched else AdServer
    device_cls = LogDevice if batched else Device

    registry = RngRegistry(config.seed)
    per_day = epochs_per_day(config.epoch_s)
    first_test = config.train_days * per_day
    n_epochs = config.n_days * per_day

    predictors = {}
    for uid in counts:
        predictor = make_predictor(config.predictor, config.epoch_s,
                                   **config.predictor_kwargs)
        if isinstance(predictor, OraclePredictor):
            predictor.set_truth(counts[uid], start_epoch=0)
        predictors[uid] = predictor

    exchange = _build_exchange(config, registry, "exchange-prefetch",
                               rng_tag, exchange_cls=exchange_cls)
    policy = make_policy(config.policy, **config.policy_kwargs_full())
    server = server_cls(config.server_config(), exchange, policy, predictors,
                        registry.fresh("dispatch" + rng_tag))
    server.warm_up({uid: counts[uid][:first_test] for uid in counts})

    devices = {uid: device_cls(uid, job.profile_of[uid],
                               keep_timeline=job.keep_radio_timeline)
               for uid in timelines}
    injector = make_injector(config.faults, config.seed, job.horizon)
    clients = {
        uid: AdClient(timelines[uid], devices[uid], job.apps,
                      report_delay_s=config.report_delay_s,
                      faults=(injector.for_user(uid)
                              if injector is not None else None))
        for uid in timelines
    }

    obs = current_obs()
    obs_recorder = obs.recorder
    # Deterministic throughput totals, shared with the realtime engine
    # and identical on both backends (the epoch loop below is the
    # backend-independent part): users simulated and timeline events
    # replayed. repro.obs.resources divides them by wall clock for
    # users/sec / events/sec telemetry.
    obs.metrics.counter("throughput.users_total").inc(len(timelines))
    events_counter = obs.metrics.counter("throughput.events_total")
    events_done = 0
    for epoch in range(first_test, n_epochs):
        now = epoch * config.epoch_s
        window_end = min(now + config.epoch_s, job.horizon)
        if obs_recorder.enabled:
            obs_recorder.complete(now, window_end - now, "server", "epoch",
                                  args={"epoch": epoch})
        server_down = injector is not None and injector.server_down(now)
        if server_down:
            # Scheduled blackout at planning time: nothing is sold or
            # dispatched; clients keep serving from their caches and
            # their contact attempts fail at the injector.
            server.degraded_epoch(epoch, now)
        else:
            server.plan_epoch(epoch, now)
        # Clients sync at their first slot; process in sync-time order so
        # cross-client report visibility is chronological.
        schedule: list[tuple[float, str]] = []
        epoch_events = 0
        for uid, timeline in timelines.items():
            times, _, _ = timeline.window(now, window_end)
            if times.size == 0:
                continue
            epoch_events += int(times.size)
            first_slot = timeline.first_slot_in(now, window_end)
            schedule.append((first_slot if first_slot is not None
                             else float("inf"), uid))
        schedule.sort()
        scheduled = set()
        for _, uid in schedule:
            clients[uid].run_epoch(now, window_end, server)
            scheduled.add(uid)
        # Clients idle this epoch may still owe an impression beacon
        # (background report timer).
        for uid, client in clients.items():
            if uid not in scheduled:
                client.flush_overdue(now, window_end, server)
        if not server_down:
            # Actuals ride client sync payloads; during a blackout the
            # server learns nothing about the finished epoch.
            server.observe_epoch(epoch, {uid: int(counts[uid][epoch])
                                         for uid in counts})
        events_counter.inc(epoch_events)
        events_done += epoch_events
        # Per-shard heartbeat at the epoch boundary: the shared helper
        # emits the sim-time trace instant (the liveness/progress
        # signal a coordinator/worker runner can consume from the
        # trace stream — deterministic at any parallelism and on both
        # backends, since this loop *is* both backends) and, when the
        # live plane is active, the out-of-band ShardBeat.
        shard_heartbeat(obs, window_end, component="prefetch",
                        done=epoch - first_test + 1,
                        total=n_epochs - first_test,
                        users=len(timelines), events_done=events_done)

    wakeups_counter = obs.metrics.counter("radio.wakeups")
    for device in devices.values():
        device.finish(job.horizon)
        wakeups_counter.inc(device.wakeups)
    _outcomes, sla, revenue = server.finalize()

    cached = sum(c.stats.cached_displays for c in clients.values())
    rescued = sum(c.stats.rescued_displays for c in clients.values())
    fallback = sum(c.stats.fallback_displays for c in clients.values())
    house = sum(c.stats.house_displays for c in clients.values())
    wasted = sum(c.queue.stats.wasted + len(c.queue) for c in clients.values())
    outcome = PrefetchOutcome(
        energy=aggregate_devices(devices.values(), float(config.test_days)),
        sla=sla,
        revenue=revenue,
        cached_displays=cached,
        rescued_displays=rescued,
        fallback_displays=fallback,
        house_displays=house,
        wasted_downloads=wasted,
        mean_replication=server.mean_replication_factor(),
        syncs=server.syncs,
    )
    return PrefetchArtifacts(outcome=outcome, devices=devices,
                             clients=clients, server=server)


def _execute_realtime(job: ShardJob) -> RealtimeOutcome:
    """Run the status-quo baseline over one user subset (a shard)."""
    config = job.config
    batched = job.backend == "batched"
    registry = RngRegistry(config.seed)
    exchange = _build_exchange(
        config, registry, "exchange-realtime", job.rng_tag,
        component="realtime.exchange",
        exchange_cls=BatchedExchange if batched else Exchange)
    per_day = epochs_per_day(config.epoch_s)
    start = config.train_days * per_day * config.epoch_s
    injector = make_injector(config.faults, config.seed, job.horizon)
    return _run_realtime_engine(dict(job.timelines), job.apps,
                                dict(job.profile_of), exchange, start,
                                job.horizon, injector=injector,
                                device_cls=LogDevice if batched else Device)
