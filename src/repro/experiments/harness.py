"""End-to-end run harness (single-shard core).

Builds the world (population + trace + compiled timelines), then runs a
set of clients under either serving discipline. The functions here
operate on **one user subset at a time**; :mod:`repro.runner` partitions
a population into deterministic shards and drives this core once per
shard (possibly in parallel worker processes), then merges the results
through :mod:`repro.metrics.accumulators`.

Public entry points:

* :class:`repro.runner.Runner` — the supported API for full runs.
* :func:`run_prefetch_shard` / :func:`run_realtime_shard` — the
  single-shard cores (whole population == one shard with an empty
  ``rng_tag``).
* :func:`run_prefetch_instrumented` — whole-population prefetch run
  that also returns devices/clients/server for introspection
  (experiments E12, tests).

When the configuration carries a non-empty :class:`repro.faults.plan.
FaultPlan`, both cores build a :class:`repro.faults.FaultInjector` and
thread per-user fault decisions through the clients (and the baseline's
per-slot fetches); scheduled server blackouts turn planning epochs into
:meth:`~repro.server.adserver.AdServer.degraded_epoch` records.

Worlds are cached per configuration key (see
:class:`repro.runner.WorldCache`) so parameter sweeps that only touch
the serving side re-use the same trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.baselines.realtime import run_realtime as _run_realtime_engine
from repro.client.device import Device
from repro.client.sdk import AdClient
from repro.client.timeline import ClientTimeline, compile_timeline
from repro.core.overbooking import make_policy
from repro.exchange.campaign import build_campaigns
from repro.exchange.marketplace import Exchange
from repro.faults.injector import make_injector
from repro.metrics.energy import aggregate_devices
from repro.metrics.outcomes import (
    Comparison,
    PrefetchOutcome,
    RealtimeOutcome,
    compare,
)
from repro.obs.runtime import current_obs
from repro.prediction.base import epochs_per_day, make_predictor
from repro.prediction.models import OraclePredictor
from repro.radio.profiles import RadioProfile, get_profile
from repro.server.adserver import AdServer
from repro.sim.rng import RngRegistry
from repro.traces.generator import TraceConfig, TraceGenerator
from repro.traces.schema import Trace
from repro.traces.stats import epoch_slot_counts, refresh_map
from repro.workloads.appstore import TOP15, AppProfile
from repro.workloads.population import build_population

from .config import ExperimentConfig


@dataclass(slots=True)
class PrefetchArtifacts:
    """Instrumented view of a prefetch run (experiments E12, tests)."""

    outcome: PrefetchOutcome
    devices: dict[str, Device]
    clients: dict
    server: AdServer


@dataclass(slots=True)
class World:
    """A generated population, its trace, and compiled timelines."""

    config_key: tuple
    trace: Trace
    apps: tuple[AppProfile, ...]
    timelines: dict[str, ClientTimeline]
    refresh_of: dict[str, float]
    profile_of: dict[str, RadioProfile]


def world_from_trace(config: ExperimentConfig, trace: Trace,
                     apps: Sequence[AppProfile] = TOP15) -> World:
    """Compile a :class:`World` from an already-generated trace.

    Radio-profile assignment draws from the seed-derived
    ``radio-assignment`` stream in sorted-user order, so the same trace
    always yields the same assignment — including when the trace was
    reloaded from a :class:`repro.runner.WorldCache` disk spill.
    """
    registry = RngRegistry(config.seed)
    base_profile = get_profile(config.radio)
    wifi = get_profile("wifi")
    assign_rng = registry.stream("radio-assignment")
    profile_of: dict[str, RadioProfile] = {}
    timelines: dict[str, ClientTimeline] = {}
    for user in trace.sorted_users():
        profile = (wifi if assign_rng.random() < config.wifi_fraction
                   else base_profile)
        profile_of[user.user_id] = profile
        timelines[user.user_id] = compile_timeline(user, apps, profile)
    return World(
        config_key=config.world_key(),
        trace=trace,
        apps=tuple(apps),
        timelines=timelines,
        refresh_of=refresh_map(apps),
        profile_of=profile_of,
    )


def build_world(config: ExperimentConfig,
                apps: Sequence[AppProfile] = TOP15) -> World:
    """Generate the population + trace for ``config`` and compile it."""
    registry = RngRegistry(config.seed)
    population = build_population(config.population_config(),
                                  registry.stream("population"), tuple(apps))
    generator = TraceGenerator(apps, TraceConfig(n_days=config.n_days),
                               registry.stream("trace"))
    trace = generator.generate(population)
    return world_from_trace(config, trace, apps)


def get_world(config: ExperimentConfig,
              apps: Sequence[AppProfile] = TOP15) -> World:
    """Build (or fetch from the default cache) the world for ``config``.

    Delegates to the process-wide default
    :class:`repro.runner.WorldCache`.
    """
    from repro.runner import default_world_cache
    return default_world_cache().get(config, apps)


def clear_world_cache() -> None:
    """Drop cached worlds from the default :class:`~repro.runner.WorldCache`.

    Legacy alias for ``default_world_cache().clear()`` (tests that probe
    generation determinism).
    """
    from repro.runner import default_world_cache
    default_world_cache().clear()


def _build_exchange(config: ExperimentConfig, registry: RngRegistry,
                    stream: str, rng_tag: str = "",
                    component: str = "exchange") -> Exchange:
    """Build a marketplace on tagged RNG streams.

    ``rng_tag`` namespaces the campaign and auction streams per shard so
    shard-local exchanges are mutually independent yet deterministic in
    the shard layout alone (never in worker count or scheduling).
    ``component`` namespaces the marketplace's observability instruments
    (headline runs hold a prefetch and a real-time exchange per shard).
    """
    campaigns = build_campaigns(config.campaign_config(),
                                registry.fresh("campaigns" + rng_tag))
    return Exchange(campaigns, config.auction_config(),
                    registry.fresh(stream + rng_tag), component=component)


def run_prefetch_shard(config: ExperimentConfig,
                       apps: Sequence[AppProfile],
                       timelines: Mapping[str, ClientTimeline],
                       profile_of: Mapping[str, RadioProfile],
                       counts: Mapping[str, np.ndarray],
                       horizon: float,
                       rng_tag: str = "",
                       keep_radio_timeline: bool = False
                       ) -> PrefetchArtifacts:
    """Run the prefetch system over one user subset (a shard).

    ``counts`` must hold the per-user epoch slot counts for exactly the
    users in ``timelines``; ``rng_tag`` namespaces the shard's RNG
    streams (empty for the legacy whole-population run).
    """
    registry = RngRegistry(config.seed)
    per_day = epochs_per_day(config.epoch_s)
    first_test = config.train_days * per_day
    n_epochs = config.n_days * per_day

    predictors = {}
    for uid in counts:
        predictor = make_predictor(config.predictor, config.epoch_s,
                                   **config.predictor_kwargs)
        if isinstance(predictor, OraclePredictor):
            predictor.set_truth(counts[uid], start_epoch=0)
        predictors[uid] = predictor

    exchange = _build_exchange(config, registry, "exchange-prefetch",
                               rng_tag)
    policy = make_policy(config.policy, **config.policy_kwargs_full())
    server = AdServer(config.server_config(), exchange, policy, predictors,
                      registry.fresh("dispatch" + rng_tag))
    server.warm_up({uid: counts[uid][:first_test] for uid in counts})

    devices = {uid: Device(uid, profile_of[uid],
                           keep_timeline=keep_radio_timeline)
               for uid in timelines}
    injector = make_injector(config.faults, config.seed, horizon)
    clients = {
        uid: AdClient(timelines[uid], devices[uid], apps,
                      report_delay_s=config.report_delay_s,
                      faults=(injector.for_user(uid)
                              if injector is not None else None))
        for uid in timelines
    }

    obs = current_obs()
    obs_recorder = obs.recorder
    for epoch in range(first_test, n_epochs):
        now = epoch * config.epoch_s
        window_end = min(now + config.epoch_s, horizon)
        if obs_recorder.enabled:
            obs_recorder.complete(now, window_end - now, "server", "epoch",
                                  args={"epoch": epoch})
        server_down = injector is not None and injector.server_down(now)
        if server_down:
            # Scheduled blackout at planning time: nothing is sold or
            # dispatched; clients keep serving from their caches and
            # their contact attempts fail at the injector.
            server.degraded_epoch(epoch, now)
        else:
            server.plan_epoch(epoch, now)
        # Clients sync at their first slot; process in sync-time order so
        # cross-client report visibility is chronological.
        schedule: list[tuple[float, str]] = []
        for uid, timeline in timelines.items():
            times, _, _ = timeline.window(now, window_end)
            if times.size == 0:
                continue
            first_slot = timeline.first_slot_in(now, window_end)
            schedule.append((first_slot if first_slot is not None
                             else float("inf"), uid))
        schedule.sort()
        scheduled = set()
        for _, uid in schedule:
            clients[uid].run_epoch(now, window_end, server)
            scheduled.add(uid)
        # Clients idle this epoch may still owe an impression beacon
        # (background report timer).
        for uid, client in clients.items():
            if uid not in scheduled:
                client.flush_overdue(now, window_end, server)
        if not server_down:
            # Actuals ride client sync payloads; during a blackout the
            # server learns nothing about the finished epoch.
            server.observe_epoch(epoch, {uid: int(counts[uid][epoch])
                                         for uid in counts})

    wakeups_counter = obs.metrics.counter("radio.wakeups")
    for device in devices.values():
        device.finish(horizon)
        wakeups_counter.inc(device.wakeups)
    _outcomes, sla, revenue = server.finalize()

    cached = sum(c.stats.cached_displays for c in clients.values())
    rescued = sum(c.stats.rescued_displays for c in clients.values())
    fallback = sum(c.stats.fallback_displays for c in clients.values())
    house = sum(c.stats.house_displays for c in clients.values())
    wasted = sum(c.queue.stats.wasted + len(c.queue) for c in clients.values())
    outcome = PrefetchOutcome(
        energy=aggregate_devices(devices.values(), float(config.test_days)),
        sla=sla,
        revenue=revenue,
        cached_displays=cached,
        rescued_displays=rescued,
        fallback_displays=fallback,
        house_displays=house,
        wasted_downloads=wasted,
        mean_replication=server.mean_replication_factor(),
        syncs=server.syncs,
    )
    return PrefetchArtifacts(outcome=outcome, devices=devices,
                             clients=clients, server=server)


def run_realtime_shard(config: ExperimentConfig,
                       apps: Sequence[AppProfile],
                       timelines: Mapping[str, ClientTimeline],
                       profile_of: Mapping[str, RadioProfile],
                       horizon: float,
                       rng_tag: str = "") -> RealtimeOutcome:
    """Run the status-quo baseline over one user subset (a shard)."""
    registry = RngRegistry(config.seed)
    exchange = _build_exchange(config, registry, "exchange-realtime",
                               rng_tag, component="realtime.exchange")
    per_day = epochs_per_day(config.epoch_s)
    start = config.train_days * per_day * config.epoch_s
    injector = make_injector(config.faults, config.seed, horizon)
    return _run_realtime_engine(dict(timelines), apps, dict(profile_of),
                                exchange, start, horizon,
                                injector=injector)


def run_prefetch_instrumented(config: ExperimentConfig,
                              world: World | None = None,
                              keep_radio_timeline: bool = False
                              ) -> PrefetchArtifacts:
    """Whole-population prefetch run returning devices/clients/server too."""
    world = world or get_world(config)
    counts = epoch_slot_counts(world.trace, world.refresh_of, config.epoch_s)
    return run_prefetch_shard(config, world.apps, world.timelines,
                              world.profile_of, counts, world.trace.horizon,
                              keep_radio_timeline=keep_radio_timeline)


def _headline(config: ExperimentConfig,
              world: World | None = None) -> Comparison:
    """Internal whole-population headline comparison (single shard)."""
    world = world or get_world(config)
    prefetch = run_prefetch_instrumented(config, world).outcome
    realtime = run_realtime_shard(config, world.apps, world.timelines,
                                  world.profile_of, world.trace.horizon)
    return compare(prefetch, realtime)
