"""Experiment registry: one entry per table/figure (see DESIGN.md §4)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from .config import ExperimentConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.runner import WorldSource
from .e1_app_energy import run_e1
from .e2_tail_energy import run_e2
from .e3_traces import run_e3
from .e4_prediction import run_e4
from .e5_e6_overbooking import run_e5_e6
from .e7_deadline import run_e7
from .e8_energy_vs_epoch import run_e8
from .e9_headline import run_e9
from .e10_dispatch import run_e10
from .e11_predictor import run_e11
from .e12_radio_activity import run_e12
from .e13_faults import run_e13
from .x1_radio_mix import run_x1
from .x2_fast_dormancy import run_x2


@dataclass(frozen=True, slots=True)
class Experiment:
    """One reproducible paper artifact."""

    id: str
    paper_artifact: str
    title: str
    runner: Callable[..., object]
    #: Whether ``runner`` consumes a generated world (and therefore
    #: accepts a ``source=`` :class:`repro.runner.WorldSource` kwarg).
    needs_world: bool = True
    #: Whether ``runner`` accepts ``jobs=`` / ``backend=`` kwargs
    #: (sharded execution via :class:`repro.runner.Runner`).
    accepts_jobs: bool = False


def _run_e1(_config: ExperimentConfig):
    return run_e1()


def _run_e2(_config: ExperimentConfig):
    return run_e2()


EXPERIMENTS: dict[str, Experiment] = {
    "e1": Experiment("e1", "Table 1", "ad energy in top-15 apps",
                     _run_e1, needs_world=False),
    "e2": Experiment("e2", "Fig (motivation)", "tail-energy amortisation",
                     _run_e2, needs_world=False),
    "e3": Experiment("e3", "Fig (dataset)", "trace characterization", run_e3),
    "e4": Experiment("e4", "Fig (models)", "prediction accuracy", run_e4),
    "e5": Experiment("e5", "Fig (SLA vs k)", "overbooking: SLA side",
                     run_e5_e6, accepts_jobs=True),
    "e6": Experiment("e6", "Fig (revenue vs k)", "overbooking: revenue side",
                     run_e5_e6, accepts_jobs=True),
    "e7": Experiment("e7", "Fig (deadline)", "deadline sweep", run_e7,
                     accepts_jobs=True),
    "e8": Experiment("e8", "Fig (period)", "prefetch-period sweep", run_e8,
                     accepts_jobs=True),
    "e9": Experiment("e9", "Table 2", "headline end-to-end comparison",
                     run_e9, accepts_jobs=True),
    "e10": Experiment("e10", "Ablation", "dispatch-policy ablation", run_e10,
                      accepts_jobs=True),
    "e11": Experiment("e11", "Ablation", "client-model ablation", run_e11,
                      accepts_jobs=True),
    "e12": Experiment("e12", "Fig (radio)", "radio wakeups & residency",
                      run_e12),
    "e13": Experiment("e13", "Extension", "fault injection & resilience",
                      run_e13, accepts_jobs=True),
    "x1": Experiment("x1", "Extension", "radio-technology sensitivity",
                     run_x1, accepts_jobs=True),
    "x2": Experiment("x2", "Extension", "prefetching vs fast dormancy",
                     run_x2, accepts_jobs=True),
}


def experiment_ids() -> list[str]:
    """All experiment ids, paper artifacts first (e1..e12, then x*)."""
    return sorted(EXPERIMENTS,
                  key=lambda k: (k[0] != "e", int(k[1:])))


def run_experiment(experiment_id: str,
                   config: ExperimentConfig | None = None,
                   jobs: int = 1, backend: str = "event",
                   source: "WorldSource | None" = None):
    """Run one experiment by id; returns its figure/table object.

    ``jobs`` and ``backend`` are forwarded to experiments that support
    sharded execution (``accepts_jobs``); others run serially on the
    event engine regardless. ``source`` shares one world provider
    across experiments that consume a generated world (``needs_world``)
    — e.g. one ``WorldSource`` for a whole ``adprefetch run all``.
    """
    try:
        experiment = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {experiment_ids()}") from None
    kwargs: dict[str, object] = {}
    if experiment.needs_world:
        kwargs["source"] = source
    if experiment.accepts_jobs:
        kwargs["jobs"] = jobs
        kwargs["backend"] = backend
    return experiment.runner(config, **kwargs)
