"""E5 + E6 — the overbooking trade-off (paper's twin figures).

Sweeping the replication factor ``k`` (fixed-k random replication, no
rescue safety net, so the effect of k alone is visible):

* E5: SLA violation rate falls roughly geometrically with k;
* E6: revenue loss (duplicates + voids) rises with k.

The final row runs the paper's full model (staggered + rescue), which
should sit below the sweep on *both* axes — that dominance is the
paper's thesis.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics.outcomes import Comparison
from repro.metrics.summary import fmt_pct, format_table

from typing import TYPE_CHECKING

from .config import ExperimentConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.runner import WorldSource

DEFAULT_KS = (1, 2, 3, 4, 6)

_SWEEP_CACHE: dict[tuple, "OverbookingSweep"] = {}


@dataclass(frozen=True, slots=True)
class KPoint:
    """Outcome of one replication level."""

    label: str
    k: float                     # realized mean replication
    sla_violation_rate: float
    revenue_loss: float
    duplicates_per_sale: float
    energy_savings: float


@dataclass(frozen=True, slots=True)
class OverbookingSweep:
    """The joint E5/E6 figure data."""

    points: list[KPoint]         # fixed-k sweep, ascending k
    full_model: KPoint           # staggered + rescue

    def render(self) -> str:
        rows = [
            (p.label, f"{p.k:.2f}", fmt_pct(p.sla_violation_rate),
             fmt_pct(p.revenue_loss), f"{p.duplicates_per_sale:.3f}",
             fmt_pct(p.energy_savings))
            for p in self.points + [self.full_model]
        ]
        return format_table(
            ["policy", "mean k", "SLA violation", "revenue loss",
             "dups/sale", "energy savings"],
            rows,
            title="E5/E6: replication factor vs SLA violation and "
                  "revenue loss")


def _point(label: str, comparison: Comparison) -> KPoint:
    p = comparison.prefetch
    dups = (p.revenue.duplicate_impressions / p.sla.n_sales
            if p.sla.n_sales else 0.0)
    return KPoint(
        label=label,
        k=p.mean_replication if p.mean_replication else 1.0,
        sla_violation_rate=comparison.sla_violation_rate,
        revenue_loss=comparison.revenue_loss,
        duplicates_per_sale=dups,
        energy_savings=comparison.energy_savings,
    )


def run_e5_e6(config: ExperimentConfig | None = None,
              ks: tuple[int, ...] = DEFAULT_KS, *,
              jobs: int = 1, backend: str = "event",
              source: "WorldSource | None" = None) -> OverbookingSweep:
    """Run the k sweep plus the full model (cached per config+ks).

    ``jobs`` parallelises shard execution; results are jobs- and
    backend-invariant, so the cache key deliberately ignores them.
    """
    from repro.runner import Runner, WorldSource

    config = config or ExperimentConfig()
    cache_key = (config.world_key(), config.epoch_s, config.deadline_s,
                 config.sell_factor, config.epsilon, config.max_replicas,
                 config.rescue_batch, tuple(ks))
    cached = _SWEEP_CACHE.get(cache_key)
    if cached is not None:
        return cached
    world = (source or WorldSource()).world_for(config)

    def headline(variant):
        return Runner(variant, parallelism=jobs, backend=backend,
                      world=world).run("headline").comparison

    points = []
    for k in ks:
        variant = config.variant(
            policy="random-k",
            policy_kwargs={"k": k},
            max_replicas=max(k, 1),
            rescue_batch=0,           # isolate static replication
        )
        points.append(_point(f"random-{k}", headline(variant)))
    full = headline(config.variant(policy="staggered"))
    sweep = OverbookingSweep(points=points,
                             full_model=_point("staggered+rescue", full))
    _SWEEP_CACHE[cache_key] = sweep
    return sweep
