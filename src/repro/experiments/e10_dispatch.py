"""E10 — ablation: dispatch-policy choice.

Same world, same predictions; only the replica-placement strategy
changes. Shows what each piece of the staggered model buys over random
replication and duplicate-blind backfilling.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics.summary import fmt_pct, format_table

from typing import TYPE_CHECKING

from .config import ExperimentConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.runner import WorldSource

POLICY_VARIANTS: tuple[tuple[str, dict], ...] = (
    ("no-replication", {}),
    ("random-k", {}),
    ("greedy-backfill", {}),
    ("staggered", {}),
)


@dataclass(frozen=True, slots=True)
class DispatchRow:
    policy: str
    sla_violation_rate: float
    revenue_loss: float
    energy_savings: float
    duplicates_per_sale: float
    mean_replication: float


@dataclass(frozen=True, slots=True)
class DispatchAblation:
    rows: list[DispatchRow]
    max_replicas: int

    def row_for(self, policy: str) -> DispatchRow:
        for row in self.rows:
            if row.policy == policy:
                return row
        raise KeyError(policy)

    def render(self) -> str:
        table = [
            (r.policy, fmt_pct(r.sla_violation_rate), fmt_pct(r.revenue_loss),
             fmt_pct(r.energy_savings), f"{r.duplicates_per_sale:.3f}",
             f"{r.mean_replication:.2f}")
            for r in self.rows
        ]
        return format_table(
            ["policy", "SLA violation", "revenue loss", "energy savings",
             "dups/sale", "mean k"],
            table,
            title=f"E10: dispatch-policy ablation (max_replicas="
                  f"{self.max_replicas}; rescue off except final row)")


def _row(policy_name: str, comparison) -> DispatchRow:
    p = comparison.prefetch
    dups = (p.revenue.duplicate_impressions / p.sla.n_sales
            if p.sla.n_sales else 0.0)
    return DispatchRow(
        policy=policy_name,
        sla_violation_rate=comparison.sla_violation_rate,
        revenue_loss=comparison.revenue_loss,
        energy_savings=comparison.energy_savings,
        duplicates_per_sale=dups,
        mean_replication=p.mean_replication,
    )


def run_e10(config: ExperimentConfig | None = None,
            max_replicas: int = 4, *,
            jobs: int = 1, backend: str = "event",
            source: "WorldSource | None" = None) -> DispatchAblation:
    """Compare dispatch policies with the rest of the system fixed."""
    from repro.runner import Runner, WorldSource

    base = (config or ExperimentConfig()).variant(
        max_replicas=max_replicas, rescue_batch=0)
    world = (source or WorldSource()).world_for(base)

    def headline(variant):
        return Runner(variant, parallelism=jobs, backend=backend,
                      world=world).run("headline").comparison

    rows = []
    for policy, kwargs in POLICY_VARIANTS:
        pk = dict(kwargs)
        if policy == "random-k":
            pk["k"] = max_replicas
        variant = base.variant(policy=policy, policy_kwargs=pk)
        rows.append(_row(policy, headline(variant)))
    original = config or ExperimentConfig()
    full = base.variant(policy="staggered",
                        max_replicas=original.max_replicas,
                        rescue_batch=original.rescue_batch)
    rows.append(_row("staggered+rescue", headline(full)))
    return DispatchAblation(rows=rows, max_replicas=max_replicas)
