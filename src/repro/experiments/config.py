"""Experiment configuration.

One frozen dataclass carries every knob an experiment can sweep; the
experiment registry (``registry.py``) builds variations of a shared
default so that sweeps differ in exactly the swept parameter.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.exchange.auction import AuctionConfig
from repro.exchange.campaign import CampaignPoolConfig
from repro.faults.plan import FaultPlan
from repro.prediction.base import epochs_per_day
from repro.server.adserver import ServerConfig
from repro.workloads.population import PopulationConfig


@dataclass(frozen=True, slots=True, kw_only=True)
class ExperimentConfig:
    """Full parameterisation of one end-to-end run.

    All fields are keyword-only: with this many knobs, positional
    construction silently transposes parameters.
    """

    # World.
    seed: int = 7
    n_users: int = 400
    n_days: int = 10
    train_days: int = 6
    radio: str = "3g"
    wifi_fraction: float = 0.0      # share of users on WiFi instead
    median_sessions_per_day: float = 9.0
    # Client model.
    predictor: str = "ewma"
    predictor_kwargs: dict = field(default_factory=dict, hash=False)
    # Overbooking.
    policy: str = "staggered"
    policy_kwargs: dict = field(default_factory=dict, hash=False)
    epsilon: float = 0.05
    max_replicas: int = 1
    # Server / epochs.
    epoch_s: float = 3600.0
    deadline_s: float = 14400.0
    sell_factor: float = 0.75
    rescue_batch: int = 4
    rescue_horizon_s: float | None = None
    standby_lag_s: float | None = None
    report_delay_s: float = 900.0
    fallback: str = "realtime"
    capacity_factor: float = 3.0
    capacity_slack: int = 8
    presumed_dark_after_s: float | None = None
    # Marketplace.
    n_campaigns: int = 300
    # Fault injection (repro.faults): empty plan == no faults, and the
    # run is bit-identical to one without the subsystem. Never part of
    # world_key(): faults perturb serving, not the generated trace.
    faults: FaultPlan = field(default_factory=FaultPlan)

    def __post_init__(self) -> None:
        if self.train_days <= 0 or self.train_days >= self.n_days:
            raise ValueError("need 1 <= train_days < n_days")
        if not 0.0 <= self.wifi_fraction <= 1.0:
            raise ValueError("wifi_fraction must be in [0, 1]")
        epochs_per_day(self.epoch_s)  # validates divisibility

    @property
    def test_days(self) -> int:
        return self.n_days - self.train_days

    def server_config(self) -> ServerConfig:
        return ServerConfig(
            epoch_s=self.epoch_s,
            deadline_s=self.deadline_s,
            epsilon=self.epsilon,
            sell_factor=self.sell_factor,
            rescue_batch=self.rescue_batch,
            rescue_horizon_s=self.rescue_horizon_s,
            standby_lag_s=self.standby_lag_s,
            report_delay_s=self.report_delay_s,
            capacity_factor=self.capacity_factor,
            capacity_slack=self.capacity_slack,
            presumed_dark_after_s=self.presumed_dark_after_s,
            fallback=self.fallback,
        )

    def population_config(self) -> PopulationConfig:
        return PopulationConfig(
            n_users=self.n_users,
            median_sessions_per_day=self.median_sessions_per_day,
        )

    def campaign_config(self) -> CampaignPoolConfig:
        return CampaignPoolConfig(n_campaigns=self.n_campaigns)

    def auction_config(self) -> AuctionConfig:
        return AuctionConfig()

    def policy_kwargs_full(self) -> dict:
        kwargs = dict(self.policy_kwargs)
        kwargs.setdefault("epsilon", self.epsilon)
        kwargs.setdefault("max_replicas", self.max_replicas)
        return kwargs

    def world_key(self) -> tuple:
        """Key identifying the generated world (population + trace)."""
        return (self.seed, self.n_users, self.n_days, self.radio,
                self.wifi_fraction, self.median_sessions_per_day)

    def variant(self, **overrides) -> "ExperimentConfig":
        """A copy with some fields replaced (sweep helper)."""
        return replace(self, **overrides)


#: Paper-scale configuration: the full >1,700-user cohort.
PAPER_SCALE = ExperimentConfig(n_users=1750, n_days=14, train_days=7)

#: Bench-scale default: same shape, minutes not hours of wall clock.
BENCH_SCALE = ExperimentConfig(n_users=400, n_days=10, train_days=6)

#: Test-scale: seconds, for the integration test suite.
TEST_SCALE = ExperimentConfig(n_users=40, n_days=6, train_days=3)
