"""E9 — the headline end-to-end comparison (paper Table 2).

Real-time vs naive prefetch vs the paper's system vs the oracle bound,
on the identical trace window. The abstract's claim to reproduce:
**over 50% ad-energy reduction with negligible revenue loss and SLA
violation rate**.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.presets import apply_preset
from repro.metrics.outcomes import Comparison
from repro.metrics.summary import fmt_pct, fmt_si, format_table

from typing import TYPE_CHECKING

from .config import ExperimentConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.runner import WorldSource

SYSTEMS = ("naive-prefetch", "overbooking", "oracle")


@dataclass(frozen=True, slots=True)
class HeadlineRow:
    system: str
    energy_savings: float
    revenue_loss: float
    sla_violation_rate: float
    wakeup_reduction: float
    prefetch_served_rate: float
    ad_joules_per_user_day: float


@dataclass(frozen=True, slots=True)
class HeadlineTable:
    """Table 2: one row per system plus the real-time reference."""

    realtime_ad_joules_per_user_day: float
    realtime_billed: float
    rows: list[HeadlineRow]

    def row_for(self, system: str) -> HeadlineRow:
        for row in self.rows:
            if row.system == system:
                return row
        raise KeyError(system)

    def render(self) -> str:
        table_rows = [("realtime", "-", "-", "-", "-", "-",
                       f"{self.realtime_ad_joules_per_user_day:.0f}")]
        for r in self.rows:
            table_rows.append((
                r.system, fmt_pct(r.energy_savings, 1),
                fmt_pct(r.revenue_loss), fmt_pct(r.sla_violation_rate),
                fmt_pct(r.wakeup_reduction, 1),
                fmt_pct(r.prefetch_served_rate, 1),
                f"{r.ad_joules_per_user_day:.0f}",
            ))
        return format_table(
            ["system", "energy savings", "revenue loss", "SLA violation",
             "wakeup cut", "prefetch-served", "ad J/user/day"],
            table_rows,
            title="E9 (Table 2): end-to-end comparison — paper claims "
                  ">50% energy savings, negligible loss & violations\n"
                  f"(realtime billed revenue: {fmt_si(self.realtime_billed)})")


def _row(system: str, comparison: Comparison) -> HeadlineRow:
    p = comparison.prefetch
    return HeadlineRow(
        system=system,
        energy_savings=comparison.energy_savings,
        revenue_loss=comparison.revenue_loss,
        sla_violation_rate=comparison.sla_violation_rate,
        wakeup_reduction=comparison.wakeup_reduction,
        prefetch_served_rate=p.prefetch_served_rate,
        ad_joules_per_user_day=p.energy.ad_joules_per_user_day(),
    )


def run_e9(config: ExperimentConfig | None = None,
           systems: tuple[str, ...] = SYSTEMS, *,
           jobs: int = 1, backend: str = "event",
           source: "WorldSource | None" = None) -> HeadlineTable:
    """Run every system preset on the same world."""
    from repro.runner import Runner, WorldSource

    config = config or ExperimentConfig()
    world = (source or WorldSource()).world_for(config)
    realtime = Runner(config, parallelism=jobs, backend=backend,
                      world=world).run("realtime").realtime
    rows = [
        _row(system,
             Runner(apply_preset(system, config), parallelism=jobs,
                    backend=backend, world=world).run("headline").comparison)
        for system in systems
    ]
    return HeadlineTable(
        realtime_ad_joules_per_user_day=realtime.energy.ad_joules_per_user_day(),
        realtime_billed=realtime.billed_revenue,
        rows=rows,
    )
