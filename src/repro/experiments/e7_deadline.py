"""E7 — deadline sweep (paper's SLA-vs-deadline figure).

Two systems across show-by deadlines:

* **static overbooking only** (replication at dispatch time, no rescue):
  tight deadlines leave it no time for the right client to appear, so
  violations fall steeply as the deadline relaxes — the paper's shape;
* **full system** (static + demand-driven rescue): rescue re-replicates
  at-risk ads onto actively-consuming clients, flattening the deadline
  sensitivity into the negligible regime everywhere.

Deadlines shorter than the base epoch shrink the epoch too (inventory
must be sold at least as often as it expires).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics.summary import fmt_pct, format_table
from repro.traces.schema import SECONDS_PER_HOUR

from typing import TYPE_CHECKING

from .config import ExperimentConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.runner import WorldSource

DEFAULT_DEADLINES_H = (1.0, 2.0, 4.0, 8.0)


@dataclass(frozen=True, slots=True)
class DeadlinePoint:
    deadline_h: float
    epoch_h: float
    system: str                  # "static" | "full"
    sla_violation_rate: float
    revenue_loss: float
    energy_savings: float


@dataclass(frozen=True, slots=True)
class DeadlineSweep:
    points: list[DeadlinePoint]

    def series(self, system: str) -> list[DeadlinePoint]:
        return [p for p in self.points if p.system == system]

    def render(self) -> str:
        rows = [
            (p.system, f"{p.deadline_h:g}h", f"{p.epoch_h:g}h",
             fmt_pct(p.sla_violation_rate), fmt_pct(p.revenue_loss),
             fmt_pct(p.energy_savings))
            for p in self.points
        ]
        return format_table(
            ["system", "deadline D", "epoch T", "SLA violation",
             "revenue loss", "energy savings"],
            rows,
            title="E7: deadline sweep — static overbooking needs deadline "
                  "slack; rescue removes the sensitivity")


def run_e7(config: ExperimentConfig | None = None,
           deadlines_h: tuple[float, ...] = DEFAULT_DEADLINES_H, *,
           jobs: int = 1, backend: str = "event",
           source: "WorldSource | None" = None) -> DeadlineSweep:
    """Sweep the show-by deadline for both system variants."""
    from repro.runner import Runner, WorldSource

    config = config or ExperimentConfig()
    world = (source or WorldSource()).world_for(config)
    points = []
    for d_h in deadlines_h:
        deadline_s = d_h * SECONDS_PER_HOUR
        epoch_s = min(config.epoch_s, deadline_s)
        static = config.variant(
            deadline_s=deadline_s, epoch_s=epoch_s, rescue_horizon_s=None,
            rescue_batch=0, max_replicas=4)
        full = config.variant(
            deadline_s=deadline_s, epoch_s=epoch_s, rescue_horizon_s=None)
        for system, variant in (("static", static), ("full", full)):
            comparison = Runner(variant, parallelism=jobs, backend=backend,
                                world=world).run("headline").comparison
            points.append(DeadlinePoint(
                deadline_h=d_h,
                epoch_h=epoch_s / SECONDS_PER_HOUR,
                system=system,
                sla_violation_rate=comparison.sla_violation_rate,
                revenue_loss=comparison.revenue_loss,
                energy_savings=comparison.energy_savings,
            ))
    return DeadlineSweep(points=points)
