"""E2 — tail-energy amortisation (the paper's motivating figure).

Energy per ad versus batch size: an isolated fetch pays promotion +
transfer + the full two-stage tail; batching pays the fixed parts once.
This figure is the entire case for prefetching.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.metrics.summary import format_table
from repro.radio.energy import amortization_series
from repro.radio.profiles import get_profile

DEFAULT_BATCHES = (1, 2, 5, 10, 20, 40)
DEFAULT_AD_BYTES = 4000


@dataclass(frozen=True, slots=True)
class TailEnergyFigure:
    """Per-ad energy series for each radio technology."""

    ad_bytes: int
    batches: tuple[int, ...]
    series: dict[str, list[tuple[int, float]]]   # radio -> [(batch, J/ad)]

    def amortization_ratio(self, radio: str) -> float:
        """Isolated-fetch energy over largest-batch per-ad energy."""
        points = self.series[radio]
        return points[0][1] / points[-1][1]

    def render(self) -> str:
        radios = sorted(self.series)
        rows = []
        for i, batch in enumerate(self.batches):
            row = [str(batch)]
            row.extend(f"{self.series[r][i][1]:.2f}" for r in radios)
            rows.append(row)
        return format_table(
            ["batch"] + [f"{r} J/ad" for r in radios], rows,
            title=f"E2: per-ad energy vs batch size ({self.ad_bytes} B "
                  "creatives); isolated fetches are tail-dominated")


def run_e2(ad_bytes: int = DEFAULT_AD_BYTES,
           batches: tuple[int, ...] = DEFAULT_BATCHES,
           radios: tuple[str, ...] = ("3g", "lte", "wifi")) -> TailEnergyFigure:
    """Compute the amortisation curves."""
    series = {
        radio: amortization_series(get_profile(radio), ad_bytes, batches)
        for radio in radios
    }
    return TailEnergyFigure(ad_bytes=ad_bytes, batches=tuple(batches),
                            series=series)
