"""Fault plans: the declarative "what breaks" half of :mod:`repro.faults`.

A :class:`FaultPlan` composes the failure modes the mobile-ad stack must
survive — per-transfer loss, per-user connectivity outages, scheduled
server blackouts, sync latency inflation, and device churn — together
with the knobs of the client's retry/backoff response. The plan is a
frozen keyword-only dataclass so it can ride inside
:class:`repro.experiments.config.ExperimentConfig`, round-trip through
JSON (``adprefetch run e13 --faults plan.json``), and hash into the run
manifest: two runs with the same ``(config, seed, plan)`` triple are
bit-identical at any ``--jobs``.

The *empty* plan (all intensities zero) is inert by construction: no
injector is built, no RNG stream is touched, and every experiment
reproduces its pre-fault results bit for bit.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields, replace
from pathlib import Path


@dataclass(frozen=True, slots=True, kw_only=True)
class FaultPlan:
    """Composable fault-injection configuration (all knobs keyword-only).

    A plan travels inside :class:`~repro.experiments.harness.ShardJob`
    to worker processes, so it is a serialization root checked by
    ``repro-lint`` RPR007: every field must stay statically picklable
    plain data (no callables, handles, or lambda defaults).

    Injector intensities
    --------------------
    loss_prob:
        Probability that any single ad-system transfer attempt (sync,
        beacon, rescue or fallback fetch) is lost in flight.
    outage_rate_per_day:
        Mean connectivity outages per user per day (a per-user renewal
        process of no-coverage windows; zero disables).
    outage_duration_s:
        Mean duration of one connectivity outage window.
    server_outages:
        Scheduled ``(start_s, end_s)`` blackout windows (absolute sim
        time, seconds) during which the ad server/exchange is down:
        epoch planning is skipped and every server contact fails.
    latency_mean_s:
        Mean extra latency added to each successful sync download (the
        radio stays active for the extra time, charging honest energy).
    churn_prob:
        Probability that a user's device goes permanently dark at a
        uniform time during the trace (uninstalls, dead batteries).

    Resilience-policy knobs (how the client responds)
    -------------------------------------------------
    max_retries:
        Sync retry budget per epoch after the first failed attempt.
    backoff_base_s:
        First retry delay; doubles per failure (exponential backoff).
    backoff_cap_s:
        Upper bound on any single backoff wait.
    backoff_jitter:
        Jitter fraction: the wait is scaled by ``1 + jitter * u`` with
        ``u ~ U[0, 1)`` from the user's backoff stream.
    failed_attempt_bytes:
        Radio payload charged for a request that dies in flight (the
        attempt wakes the radio even when nothing useful arrives).
    """

    loss_prob: float = 0.0
    outage_rate_per_day: float = 0.0
    outage_duration_s: float = 600.0
    server_outages: tuple[tuple[float, float], ...] = ()
    latency_mean_s: float = 0.0
    churn_prob: float = 0.0
    max_retries: int = 4
    backoff_base_s: float = 2.0
    backoff_cap_s: float = 300.0
    backoff_jitter: float = 0.5
    failed_attempt_bytes: int = 200

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_prob < 1.0:
            raise ValueError("loss_prob must be in [0, 1)")
        if self.outage_rate_per_day < 0:
            raise ValueError("outage_rate_per_day must be non-negative")
        if self.outage_duration_s <= 0:
            raise ValueError("outage_duration_s must be positive")
        if not 0.0 <= self.churn_prob <= 1.0:
            raise ValueError("churn_prob must be in [0, 1]")
        if self.latency_mean_s < 0:
            raise ValueError("latency_mean_s must be non-negative")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_base_s <= 0 or self.backoff_cap_s <= 0:
            raise ValueError("backoff_base_s/backoff_cap_s must be positive")
        if self.backoff_jitter < 0:
            raise ValueError("backoff_jitter must be non-negative")
        if self.failed_attempt_bytes < 0:
            raise ValueError("failed_attempt_bytes must be non-negative")
        windows = tuple(tuple(float(edge) for edge in window)
                        for window in self.server_outages)
        previous_end = float("-inf")
        for window in windows:
            if len(window) != 2 or window[0] >= window[1]:
                raise ValueError(
                    f"server outage window {window!r} is not (start, end) "
                    "with start < end")
            if window[0] < previous_end:
                raise ValueError(
                    "server_outages must be sorted and non-overlapping")
            previous_end = window[1]
        object.__setattr__(self, "server_outages", windows)

    @property
    def is_empty(self) -> bool:
        """True when no injector can ever fire (the inert default plan)."""
        return (self.loss_prob == 0.0
                and self.outage_rate_per_day == 0.0
                and not self.server_outages
                and self.latency_mean_s == 0.0
                and self.churn_prob == 0.0)

    def variant(self, **overrides: object) -> "FaultPlan":
        """A copy with some fields replaced (sweep helper)."""
        return replace(self, **overrides)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # JSON round-trip and hashing
    # ------------------------------------------------------------------

    def to_jsonable(self) -> dict[str, object]:
        """Plain-JSON dict (stable field order; tuples become lists)."""
        payload: dict[str, object] = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if spec.name == "server_outages":
                value = [list(window) for window in value]
            payload[spec.name] = value
        return payload

    @classmethod
    def from_jsonable(cls, payload: dict[str, object]) -> "FaultPlan":
        """Inverse of :meth:`to_jsonable`; rejects unknown keys."""
        known = {spec.name for spec in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown FaultPlan field(s): {unknown}")
        kwargs = dict(payload)
        raw_windows = kwargs.get("server_outages")
        if raw_windows is not None:
            kwargs["server_outages"] = tuple(
                tuple(window) for window in raw_windows)  # type: ignore[union-attr]
        return cls(**kwargs)  # type: ignore[arg-type]

    @classmethod
    def from_json_file(cls, path: str | Path) -> "FaultPlan":
        """Load a plan from a JSON file (the CLI ``--faults`` format)."""
        loaded = json.loads(Path(path).read_text(encoding="utf-8"))
        if not isinstance(loaded, dict):
            raise ValueError(f"{path}: fault plan must be a JSON object")
        return cls.from_jsonable(loaded)

    def digest(self) -> str:
        """Content hash of the plan (sha256 over sorted JSON).

        Recorded in the run manifest so two runs are comparable exactly
        when their ``(config, seed, plan)`` hashes agree.
        """
        payload = json.dumps(self.to_jsonable(), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()
