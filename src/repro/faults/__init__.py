"""repro.faults — deterministic fault injection for the ad stack.

The paper's overbooking scheme exists because mobile connectivity is
unreliable; this package supplies the unreliability. A
:class:`FaultPlan` declares *what breaks* (transfer loss, connectivity
outages, server blackouts, sync latency inflation, device churn) and a
:class:`FaultInjector` decides *when*, drawing every decision from
per-user named RNG streams so fault runs stay bit-identical across
``--jobs`` and shard counts.

The empty plan is inert: :func:`make_injector` returns ``None`` and the
stack behaves exactly as if this package did not exist.

See DESIGN.md §9 for the fault model & resilience contract.
"""

from .chaos import ChaosDecision, CoordinatorChaos, chaos_decision
from .injector import FaultInjector, UserFaults, make_injector
from .plan import FaultPlan

__all__ = [
    "ChaosDecision",
    "CoordinatorChaos",
    "FaultInjector",
    "FaultPlan",
    "UserFaults",
    "chaos_decision",
    "make_injector",
]
