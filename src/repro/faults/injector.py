"""Deterministic fault injectors: the "when does it break" half.

A :class:`FaultInjector` turns a :class:`~repro.faults.plan.FaultPlan`
into concrete failure decisions. Determinism is structural, not
incidental:

* Every stochastic decision draws from a **per-user** named stream
  (``faults.loss:{uid}``, ``faults.outage:{uid}``, …) created through
  :class:`repro.sim.rng.RngRegistry`. A user's fault history therefore
  depends only on ``(plan, master seed, user id)`` — never on shard
  layout, worker count, or the presence of other users — which is what
  makes fault runs bit-identical at any ``--jobs`` *and* any shard
  count.
* Outage windows and the churn dark-time are **precomputed** from their
  streams at :meth:`FaultInjector.for_user` time; only per-transfer loss
  and per-sync latency/backoff draw lazily, in the user's own event
  order.
* Scheduled server blackouts come straight from the plan (no RNG).

:func:`make_injector` returns ``None`` for an empty plan so the fault
path stays structurally absent — zero extra draws, zero extra
instruments — and fault-free runs reproduce pre-fault results bit for
bit.
"""

from __future__ import annotations

from bisect import bisect_right

import numpy as np

from repro.obs.runtime import current_obs
from repro.sim.rng import RngRegistry
from repro.traces.schema import SECONDS_PER_DAY

from .plan import FaultPlan

# RNG stream-name prefixes (RPR002: resolved into analysis/streams.json;
# each is completed with ":{uid}" so every user owns independent
# streams).
STREAM_LOSS = "faults.loss"
STREAM_OUTAGE = "faults.outage"
STREAM_CHURN = "faults.churn"
STREAM_LATENCY = "faults.latency"
STREAM_BACKOFF = "faults.backoff"


class UserFaults:
    """Fault decisions for one user, in that user's event order.

    Built by :meth:`FaultInjector.for_user`; owned by that user's SDK
    (or baseline loop) for the whole run.
    """

    __slots__ = ("_plan", "_loss_rng", "_latency_rng", "_backoff_rng",
                 "_outage_starts", "_outage_ends", "dark_from", "_injector")

    def __init__(self, plan: FaultPlan, injector: "FaultInjector",
                 loss_rng: np.random.Generator,
                 latency_rng: np.random.Generator,
                 backoff_rng: np.random.Generator,
                 outage_windows: list[tuple[float, float]],
                 dark_from: float) -> None:
        self._plan = plan
        self._injector = injector
        self._loss_rng = loss_rng
        self._latency_rng = latency_rng
        self._backoff_rng = backoff_rng
        self._outage_starts = [w[0] for w in outage_windows]
        self._outage_ends = [w[1] for w in outage_windows]
        #: Sim time at which this device goes permanently dark
        #: (``inf`` when the user never churns).
        self.dark_from = dark_from

    @property
    def plan(self) -> FaultPlan:
        """The fault plan these decisions are drawn from."""
        return self._plan

    def dark(self, now: float) -> bool:
        """True once the device has churned away (permanently dark)."""
        return now >= self.dark_from

    def in_outage(self, now: float) -> bool:
        """True while ``now`` falls inside a connectivity outage window."""
        index = bisect_right(self._outage_starts, now) - 1
        return index >= 0 and now < self._outage_ends[index]

    def attempt(self, now: float) -> bool:
        """Decide one transfer attempt at ``now``; True means it succeeds.

        Checks the deterministic blockers first (churn, outage window,
        scheduled server blackout) and only then spends a loss draw, so
        the per-user loss stream advances exactly once per *attempted*
        transfer regardless of how the surrounding code is sharded.
        """
        if self.dark(now):
            self._injector.count("churn")
            return False
        if self.in_outage(now):
            self._injector.count("outage")
            return False
        if self._injector.server_down(now):
            self._injector.count("server_down")
            return False
        if self._plan.loss_prob > 0.0:
            if self._loss_rng.random() < self._plan.loss_prob:
                self._injector.count("loss")
                return False
        return True

    def sync_delay(self) -> float:
        """Extra latency (s) inflicted on one successful sync download."""
        if self._plan.latency_mean_s <= 0.0:
            return 0.0
        delay = float(self._latency_rng.exponential(self._plan.latency_mean_s))
        self._injector.observe_sync_delay(delay)
        return delay

    def backoff_wait(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based): capped exponential
        growth with multiplicative jitter from the user's backoff stream.
        """
        base = self._plan.backoff_base_s * (2.0 ** (attempt - 1))
        jitter = 1.0 + self._plan.backoff_jitter * float(
            self._backoff_rng.random())
        return min(base * jitter, self._plan.backoff_cap_s)


class FaultInjector:
    """Factory for per-user fault decisions plus plan-level blackouts."""

    def __init__(self, plan: FaultPlan, seed: int, horizon: float) -> None:
        if plan.is_empty:
            raise ValueError(
                "FaultInjector requires a non-empty plan; use "
                "make_injector() which returns None for empty plans")
        self.plan = plan
        self.horizon = float(horizon)
        self._registry = RngRegistry(seed)
        obs = current_obs()
        self._recorder = obs.recorder
        self._injected = obs.metrics.counter("faults.injected")
        self._by_kind = {
            kind: obs.metrics.counter(f"faults.{kind}")
            for kind in ("loss", "outage", "server_down", "churn")}
        self._delay_hist = obs.metrics.histogram("faults.sync_delay_s")

    def for_user(self, user_id: str) -> UserFaults:
        """Build the fault decisions for one user (streams + precompute)."""
        plan = self.plan
        registry = self._registry
        outage_windows: list[tuple[float, float]] = []
        if plan.outage_rate_per_day > 0.0:
            outage_rng = registry.fresh(f"{STREAM_OUTAGE}:{user_id}")
            duration_mean = plan.outage_duration_s
            gap_mean = max(
                SECONDS_PER_DAY / plan.outage_rate_per_day - duration_mean,
                duration_mean)
            cursor = 0.0
            while True:
                cursor += float(outage_rng.exponential(gap_mean))
                if cursor >= self.horizon:
                    break
                duration = float(outage_rng.exponential(duration_mean))
                outage_windows.append((cursor, cursor + duration))
                cursor += duration
        dark_from = float("inf")
        if plan.churn_prob > 0.0:
            churn_rng = registry.fresh(f"{STREAM_CHURN}:{user_id}")
            churned = float(churn_rng.random()) < plan.churn_prob
            dark_at = float(churn_rng.uniform(0.0, self.horizon))
            if churned:
                dark_from = dark_at
        return UserFaults(
            plan, self,
            loss_rng=registry.fresh(f"{STREAM_LOSS}:{user_id}"),
            latency_rng=registry.fresh(f"{STREAM_LATENCY}:{user_id}"),
            backoff_rng=registry.fresh(f"{STREAM_BACKOFF}:{user_id}"),
            outage_windows=outage_windows,
            dark_from=dark_from,
        )

    def server_down(self, now: float) -> bool:
        """True while ``now`` falls inside a scheduled server blackout."""
        for start, end in self.plan.server_outages:
            if start <= now < end:
                return True
            if now < start:
                break
        return False

    # ------------------------------------------------------------------
    # Observability (shard-local; merged by the Runner)
    # ------------------------------------------------------------------

    def count(self, kind: str) -> None:
        """Record one injected fault of ``kind``."""
        self._injected.inc()
        self._by_kind[kind].inc()

    def observe_sync_delay(self, delay_s: float) -> None:
        self._delay_hist.observe(delay_s)

    def instant(self, now: float, name: str, **args: object) -> None:
        """Emit a trace instant on the ``faults`` track (if tracing)."""
        if self._recorder.enabled:
            self._recorder.instant(now, "faults", name, args=dict(args))


def make_injector(plan: FaultPlan | None, seed: int,
                  horizon: float) -> FaultInjector | None:
    """Build an injector, or ``None`` when the plan cannot ever fire.

    Returning ``None`` (rather than a no-op injector) keeps fault-free
    runs structurally identical to pre-fault builds: no streams are
    created and no ``faults.*`` instruments appear in the metrics
    snapshot.
    """
    if plan is None or plan.is_empty:
        return None
    return FaultInjector(plan, seed, horizon)
