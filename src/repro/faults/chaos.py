"""Coordinator chaos plans: fault injection for the *execution plane*.

:mod:`repro.faults` injects failures into the simulated ad stack; this
module injects them into the machinery that **runs** the simulation —
the :mod:`repro.dist` coordinator/worker runner. A
:class:`CoordinatorChaos` plan declares seeded worker kills, delayed
results, and duplicated result envelopes, and every decision is a pure
function of ``(plan, job_id, attempt)`` drawn from a named RNG stream —
so a chaos run is exactly reproducible, and the acceptance contract
("any chaos run is bit-identical to the fault-free pool run") is
testable rather than probabilistic.

Kills fire only on a job's **first** attempt by default
(``first_attempt_only``), which guarantees termination: a re-dispatched
job always completes, so the coordinator converges after at most one
extra execution per shard. The empty plan is inert, mirroring
:class:`~repro.faults.plan.FaultPlan`: no stream is touched and the
dist runner behaves as if this module did not exist.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields, replace
from pathlib import Path

from repro.sim.rng import RngRegistry


@dataclass(frozen=True, slots=True, kw_only=True)
class CoordinatorChaos:
    """Declarative chaos for the coordinator/worker runner (kw-only).

    The plan rides to worker processes beside each claimed job, so it
    is plain data under the same serialization discipline as
    :class:`~repro.faults.plan.FaultPlan` (repro-lint RPR007: no
    callables, handles, or lambda defaults).

    Knobs
    -----
    seed:
        Master seed for the per-decision RNG streams
        (``dist.chaos:<job_id>#a<attempt>``).
    kill_prob:
        Probability that the worker executing a job exits hard
        (``os._exit``) after computing the result but *before* sending
        it — the worst-case loss: work done, nothing delivered.
    duplicate_prob:
        Probability that a successful result envelope is sent twice
        (the coordinator must discard the second copy by shard index).
    delay_mean_s:
        Mean extra wall-clock delay (exponential) inserted before a
        result is sent, exercising lease/steal timing windows.
    first_attempt_only:
        Restrict kills to ``attempt == 0`` so every re-dispatched job
        completes (termination guarantee). Disable only in tests that
        bound attempts themselves.
    """

    seed: int = 0
    kill_prob: float = 0.0
    duplicate_prob: float = 0.0
    delay_mean_s: float = 0.0
    first_attempt_only: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.kill_prob <= 1.0:
            raise ValueError("kill_prob must be in [0, 1]")
        if not 0.0 <= self.duplicate_prob <= 1.0:
            raise ValueError("duplicate_prob must be in [0, 1]")
        if self.delay_mean_s < 0:
            raise ValueError("delay_mean_s must be non-negative")

    @property
    def is_empty(self) -> bool:
        """True when no decision can ever fire (the inert default)."""
        return (self.kill_prob == 0.0
                and self.duplicate_prob == 0.0
                and self.delay_mean_s == 0.0)

    def variant(self, **overrides: object) -> "CoordinatorChaos":
        """A copy with some fields replaced (sweep helper)."""
        return replace(self, **overrides)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # JSON round-trip and hashing (the CLI --chaos format)
    # ------------------------------------------------------------------

    def to_jsonable(self) -> dict[str, object]:
        """Plain-JSON dict (stable field order)."""
        return {spec.name: getattr(self, spec.name)
                for spec in fields(self)}

    @classmethod
    def from_jsonable(cls, payload: dict[str, object]) -> "CoordinatorChaos":
        """Inverse of :meth:`to_jsonable`; rejects unknown keys."""
        known = {spec.name for spec in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown CoordinatorChaos field(s): {unknown}")
        return cls(**payload)  # type: ignore[arg-type]

    @classmethod
    def from_json_file(cls, path: str | Path) -> "CoordinatorChaos":
        """Load a plan from a JSON file (``adprefetch --chaos plan.json``)."""
        loaded = json.loads(Path(path).read_text(encoding="utf-8"))
        if not isinstance(loaded, dict):
            raise ValueError(f"{path}: chaos plan must be a JSON object")
        return cls.from_jsonable(loaded)

    def digest(self) -> str:
        """Content hash of the plan (sha256 over sorted JSON)."""
        payload = json.dumps(self.to_jsonable(), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True, slots=True, kw_only=True)
class ChaosDecision:
    """What chaos does to one ``(job, attempt)`` execution."""

    kill: bool = False
    duplicate: bool = False
    delay_s: float = 0.0


def chaos_decision(plan: CoordinatorChaos | None, job_id: str,
                   attempt: int) -> ChaosDecision:
    """The seeded chaos decision for one job attempt.

    A pure function of ``(plan, job_id, attempt)``: the decision stream
    is named after both, so neither worker scheduling nor retry
    interleaving changes what chaos does — rerunning the same chaos
    plan kills the same attempts and duplicates the same results.
    """
    if plan is None or plan.is_empty:
        return ChaosDecision()
    registry = RngRegistry(plan.seed)
    rng = registry.stream(f"dist.chaos:{job_id}#a{attempt}")
    kill = bool(rng.random() < plan.kill_prob)
    if plan.first_attempt_only and attempt > 0:
        kill = False
    duplicate = bool(rng.random() < plan.duplicate_prob)
    delay_s = (float(rng.exponential(plan.delay_mean_s))
               if plan.delay_mean_s > 0 else 0.0)
    return ChaosDecision(kill=kill, duplicate=duplicate, delay_s=delay_s)
