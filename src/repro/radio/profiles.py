"""Radio power/timing profiles.

The constants follow the measurement literature the paper builds on
(TailEnder, ARO, Huang et al.'s 4G LTE measurements): a cellular radio
has a high-power transfer state, one or two *tail* states it lingers in
after the last byte (so the next transfer can skip the expensive
promotion), and an idle floor. The tail is what makes an isolated ad
fetch cost ~10 J while a batched one costs a fraction of that.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class RadioProfile:
    """Power and timing constants for one radio technology.

    All powers are watts, times are seconds, throughput is bytes/second.

    Attributes
    ----------
    name:
        Technology label, e.g. ``"3g"``.
    idle_power:
        Baseline draw when the radio interface is fully idle.
    promo_power / promo_time:
        Power draw and duration of the idle->high promotion (signalling).
    promo_low_time:
        Duration of the cheaper low->high promotion (e.g. FACH->DCH);
        drawn at ``promo_power``.
    active_power:
        Draw while bytes are actually moving.
    high_tail_power / high_tail_time:
        First tail stage (e.g. DCH tail) entered after the last byte.
    low_tail_power / low_tail_time:
        Second tail stage (e.g. FACH tail). Zero-length for single-tail
        technologies such as WiFi PSM.
    throughput:
        Sustained goodput in the active state.
    rtt:
        Per-request latency added to every transfer (request/response).
    """

    name: str
    idle_power: float
    promo_power: float
    promo_time: float
    promo_low_time: float
    active_power: float
    high_tail_power: float
    high_tail_time: float
    low_tail_power: float
    low_tail_time: float
    throughput: float
    rtt: float

    def __post_init__(self) -> None:
        if self.throughput <= 0:
            raise ValueError("throughput must be positive")
        for field_name in ("promo_time", "promo_low_time", "high_tail_time",
                           "low_tail_time", "rtt"):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be non-negative")

    @property
    def tail_time(self) -> float:
        """Total tail duration after the last byte."""
        return self.high_tail_time + self.low_tail_time

    @property
    def tail_energy(self) -> float:
        """Energy burned by one complete (untruncated) tail, in joules."""
        return (self.high_tail_power * self.high_tail_time
                + self.low_tail_power * self.low_tail_time)

    @property
    def promo_energy(self) -> float:
        """Energy of a full idle->high promotion, in joules."""
        return self.promo_power * self.promo_time

    def transfer_time(self, nbytes: int) -> float:
        """Active-state duration of a transfer of ``nbytes``."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.rtt + nbytes / self.throughput

    def isolated_transfer_energy(self, nbytes: int) -> float:
        """Energy of a single transfer with a cold radio and a full tail.

        This is the status-quo cost of fetching one ad: promotion +
        active transfer + the complete two-stage tail.
        """
        return (self.promo_energy
                + self.active_power * self.transfer_time(nbytes)
                + self.tail_energy)


#: UMTS 3G profile (TailEnder-style constants: 2 s promotion, 5 s DCH
#: tail at ~0.8 W, 12 s FACH tail at ~0.46 W).
THREE_G = RadioProfile(
    name="3g",
    idle_power=0.01,
    promo_power=0.55,
    promo_time=2.0,
    promo_low_time=1.5,
    active_power=0.80,
    high_tail_power=0.80,
    high_tail_time=5.0,
    low_tail_power=0.46,
    low_tail_time=12.0,
    throughput=1_000_000 / 8,  # ~1 Mbps
    rtt=0.35,
)

#: LTE profile (Huang et al.: ~1.2 W connected, ~11.5 s RRC tail with DRX).
LTE = RadioProfile(
    name="lte",
    idle_power=0.011,
    promo_power=1.21,
    promo_time=0.26,
    promo_low_time=0.1,
    active_power=1.28,
    high_tail_power=1.06,
    high_tail_time=11.5,
    low_tail_power=0.0,
    low_tail_time=0.0,
    throughput=10_000_000 / 8,  # ~10 Mbps
    rtt=0.07,
)

#: UMTS 3G with *fast dormancy*: the OS-level alternative to
#: prefetching — the handset releases the radio connection ~3 s after
#: the last byte instead of waiting out the network's tail timers. The
#: tail shrinks 5x, but every isolated fetch still pays the full
#: promotion, and the extra signalling churn is why operators disliked
#: the feature. Used by the X2 extension experiment.
THREE_G_FAST_DORMANCY = RadioProfile(
    name="3g-fd",
    idle_power=0.01,
    promo_power=0.55,
    promo_time=2.0,
    promo_low_time=1.5,
    active_power=0.80,
    high_tail_power=0.80,
    high_tail_time=3.0,
    low_tail_power=0.46,
    low_tail_time=0.5,
    throughput=1_000_000 / 8,  # ~1 Mbps
    rtt=0.35,
)

#: WiFi profile: cheap association, short PSM tail.
WIFI = RadioProfile(
    name="wifi",
    idle_power=0.02,
    promo_power=0.40,
    promo_time=0.1,
    promo_low_time=0.05,
    active_power=0.70,
    high_tail_power=0.25,
    high_tail_time=0.24,
    low_tail_power=0.0,
    low_tail_time=0.0,
    throughput=20_000_000 / 8,  # ~20 Mbps
    rtt=0.02,
)

PROFILES: dict[str, RadioProfile] = {
    p.name: p for p in (THREE_G, THREE_G_FAST_DORMANCY, LTE, WIFI)
}


def get_profile(name: str) -> RadioProfile:
    """Look up a built-in profile by name
    (``"3g"``, ``"3g-fd"``, ``"lte"``, ``"wifi"``)."""
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown radio profile {name!r}; available: {sorted(PROFILES)}"
        ) from None
