"""RRC radio state machine with marginal energy attribution.

The machine replays a chronological sequence of transfers and charges
each one its *marginal* cost:

* the promotion it triggered (full promotion from idle, the cheaper
  low->high promotion from the second tail stage, or nothing if the
  radio was still hot),
* its active-state energy, and
* the tail it *owns* — the tail following a transfer belongs to that
  transfer, but is truncated the moment a later transfer re-activates
  the radio, at which point the remaining tail liability moves to the
  newcomer.

This attribution is additive: summing per-transfer charges plus the idle
floor reproduces the exact energy of the power timeline, which lets us
cleanly split "ad energy" from "app energy" when ad fetches piggyback on
app traffic — the effect behind the paper's 65%-of-communication-energy
measurement.
"""

from __future__ import annotations

from dataclasses import dataclass

from .profiles import RadioProfile

#: Radio states, exported for timeline consumers (experiment E12).
STATE_IDLE = "idle"
STATE_PROMO = "promo"
STATE_ACTIVE = "active"
STATE_HIGH_TAIL = "high_tail"
STATE_LOW_TAIL = "low_tail"


@dataclass(slots=True)
class TransferRecord:
    """Outcome of one transfer through the state machine."""

    tag: str
    request_time: float
    start_time: float      # when bytes started moving (after promo/queueing)
    end_time: float        # when the last byte arrived
    nbytes: int
    promo_energy: float
    active_energy: float
    tail_energy: float = 0.0   # settled lazily when the tail is truncated/expires
    caused_wakeup: bool = False

    @property
    def energy(self) -> float:
        """Total marginal energy charged to this transfer, in joules."""
        return self.promo_energy + self.active_energy + self.tail_energy


@dataclass(slots=True)
class StateInterval:
    """One contiguous interval the radio spent in a single state."""

    state: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class RadioStateMachine:
    """Event-driven radio energy accountant.

    Transfers must be submitted in non-decreasing ``request_time`` order;
    a transfer requested while the radio is busy queues behind the
    in-flight one (single radio, serialized use).

    **Settlement contract.** :meth:`finalize` is the *only* settlement
    path: it charges the last transfer's pending tail (truncated at
    ``end_time`` when the run ends mid-tail) and freezes the machine.
    Everything after it — :meth:`energy_by_tag`,
    :meth:`communication_energy`, :meth:`total_energy` — is a pure
    accessor over already-settled charges; none of them settles anything
    implicitly. Pass the same horizon to ``finalize(end_time=h)`` and
    ``total_energy(horizon=h)``: the former decides how much tail falls
    inside the run, the latter adds the idle floor for the remainder.

    Parameters
    ----------
    profile:
        Power/timing constants of the radio technology.
    keep_timeline:
        Record the full state timeline (needed only by the radio-activity
        experiment; costs memory on long runs).
    """

    def __init__(self, profile: RadioProfile, keep_timeline: bool = False,
                 keep_records: bool = True) -> None:
        self.profile = profile
        self.records: list[TransferRecord] = []
        self._keep_records = keep_records
        self._energy_by_tag: dict[str, float] = {}
        self._transfer_count = 0
        self._last: TransferRecord | None = None   # owner of the pending tail
        self._busy_until = 0.0                     # end of in-flight transfer
        self._wakeups = 0
        self._finalized = False
        self._active_time = 0.0                    # seconds in any non-idle state
        self._keep_timeline = keep_timeline
        self._timeline: list[StateInterval] = []
        self._timeline_cursor = 0.0

    # ------------------------------------------------------------------
    # Core accounting
    # ------------------------------------------------------------------

    def transfer(self, request_time: float, nbytes: int, tag: str,
                 duration: float | None = None) -> TransferRecord:
        """Submit a transfer and return its (partially settled) record.

        The returned record's ``tail_energy`` is finalized later — when a
        subsequent transfer truncates the tail or :meth:`finalize` runs.

        ``duration`` overrides the active-state time computed from
        ``nbytes`` — used to model streaming sessions that keep the radio
        continuously active (request gaps shorter than the first tail
        stage) as one long transfer with identical energy.

        Returns
        -------
        TransferRecord
            ``end_time`` tells the caller when the payload is available.
        """
        if self._finalized:
            raise RuntimeError("state machine already finalized")
        if self._last is not None and request_time < self._last.request_time:
            raise ValueError(
                f"transfers must be chronological: {request_time} < "
                f"{self._last.request_time}")

        profile = self.profile
        effective_request = max(request_time, self._busy_until)
        promo_energy = 0.0
        caused_wakeup = False

        if self._last is None:
            # Cold start: full promotion.
            promo_delay = profile.promo_time
            promo_energy = profile.promo_energy
            caused_wakeup = True
            start = effective_request + promo_delay
            self._note_state(effective_request, start, STATE_PROMO)
        else:
            gap = effective_request - self._last.end_time
            if gap <= 0:
                # Radio still active (queued behind in-flight transfer).
                start = effective_request
            elif gap < profile.high_tail_time:
                # Arrived during the first tail stage: radio hot, no promo.
                self._settle_tail(truncated_at=effective_request)
                start = effective_request
            elif gap < profile.tail_time:
                # Second tail stage: cheap low->high promotion.
                self._settle_tail(truncated_at=effective_request)
                promo_delay = profile.promo_low_time
                promo_energy = profile.promo_power * promo_delay
                start = effective_request + promo_delay
                self._note_state(effective_request, start, STATE_PROMO)
            else:
                # Radio went fully idle: full promotion again.
                self._settle_tail(truncated_at=None)
                promo_delay = profile.promo_time
                promo_energy = profile.promo_energy
                caused_wakeup = True
                start = effective_request + promo_delay
                self._note_state(effective_request, start, STATE_PROMO)

        if duration is None:
            duration = profile.transfer_time(nbytes)
        elif duration < 0:
            raise ValueError("duration must be non-negative")
        end = start + duration
        record = TransferRecord(
            tag=tag,
            request_time=request_time,
            start_time=start,
            end_time=end,
            nbytes=nbytes,
            promo_energy=promo_energy,
            active_energy=profile.active_power * duration,
            caused_wakeup=caused_wakeup,
        )
        if caused_wakeup:
            self._wakeups += 1
        self._note_state(start, end, STATE_ACTIVE)
        if self._keep_records:
            self.records.append(record)
        self._energy_by_tag[tag] = (self._energy_by_tag.get(tag, 0.0)
                                    + record.promo_energy + record.active_energy)
        self._transfer_count += 1
        self._last = record
        self._busy_until = end
        return record

    def _settle_tail(self, truncated_at: float | None) -> None:
        """Charge the pending tail to its owner.

        ``truncated_at`` is the moment a new transfer re-activated the
        radio; ``None`` means the tail ran to completion.
        """
        owner = self._last
        if owner is None:
            return
        profile = self.profile
        t_end = owner.end_time
        if truncated_at is None:
            owner.tail_energy = profile.tail_energy
            self._energy_by_tag[owner.tag] = (
                self._energy_by_tag.get(owner.tag, 0.0) + owner.tail_energy)
            self._note_state(t_end, t_end + profile.high_tail_time, STATE_HIGH_TAIL)
            if profile.low_tail_time > 0:
                self._note_state(t_end + profile.high_tail_time,
                                 t_end + profile.tail_time, STATE_LOW_TAIL)
            return
        elapsed = truncated_at - t_end
        high = min(elapsed, profile.high_tail_time)
        low = min(max(elapsed - profile.high_tail_time, 0.0), profile.low_tail_time)
        owner.tail_energy = (profile.high_tail_power * high
                             + profile.low_tail_power * low)
        self._energy_by_tag[owner.tag] = (
            self._energy_by_tag.get(owner.tag, 0.0) + owner.tail_energy)
        if high > 0:
            self._note_state(t_end, t_end + high, STATE_HIGH_TAIL)
        if low > 0:
            self._note_state(t_end + high, t_end + high + low, STATE_LOW_TAIL)

    def finalize(self, end_time: float | None = None) -> None:
        """Settle the trailing tail; no further transfers are accepted.

        This is the single settlement path (see the class docstring):
        after it returns, every charge — including the last tail — is
        final, and the reporting accessors are pure reads.

        ``end_time`` (if given) caps the trailing tail — a run that ends
        mid-tail only charges the portion inside the simulated horizon —
        and extends the recorded idle timeline up to the horizon.
        Idempotent: repeated calls are no-ops.
        """
        if self._finalized:
            return
        if self._last is not None:
            if end_time is not None and end_time < self._last.end_time + self.profile.tail_time:
                self._settle_tail(truncated_at=max(end_time, self._last.end_time))
            else:
                self._settle_tail(truncated_at=None)
        if end_time is not None:
            self._note_state(self._timeline_cursor, end_time, STATE_IDLE)
        self._finalized = True

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    @property
    def wakeups(self) -> int:
        """Number of full idle->high promotions (radio wakeups)."""
        return self._wakeups

    def energy_by_tag(self) -> dict[str, float]:
        """Marginal energy (joules) charged to each transfer tag.

        Maintained incrementally, so it works with ``keep_records=False``;
        note the pending (unsettled) tail is not included until a later
        transfer truncates it or :meth:`finalize` runs.
        """
        return dict(self._energy_by_tag)

    @property
    def active_time(self) -> float:
        """Seconds spent in any non-idle state (promo, active, tails).

        Tracked incrementally, so it is exact with or without
        ``keep_timeline``. Tail time is counted when the tail settles.
        """
        return self._active_time

    def total_energy(self, horizon: float | None = None) -> float:
        """Total radio energy including the idle floor over ``horizon`` seconds.

        Without a horizon, returns just the communication energy (the sum
        of all per-transfer charges). With one, the machine must already
        be settled via ``finalize(end_time=horizon)`` — otherwise the
        pending tail would be silently missing from both the
        communication energy and the active time.
        """
        comm = sum(self._energy_by_tag.values())
        if horizon is None:
            return comm
        if not self._finalized:
            raise RuntimeError(
                "total_energy(horizon) before finalize(): call "
                "finalize(end_time=horizon) to settle the pending tail first")
        return comm + self.profile.idle_power * max(
            horizon - self._active_time, 0.0)

    def communication_energy(self) -> float:
        """Sum of all per-transfer marginal charges (no idle floor)."""
        return sum(self._energy_by_tag.values())

    @property
    def transfer_count(self) -> int:
        """Number of transfers submitted (kept even without records)."""
        return self._transfer_count

    def timeline(self) -> list[StateInterval]:
        """The recorded state timeline (empty unless ``keep_timeline``)."""
        return list(self._timeline)

    def state_residency(self) -> dict[str, float]:
        """Seconds spent in each state (requires ``keep_timeline``)."""
        out: dict[str, float] = {}
        for iv in self._timeline:
            out[iv.state] = out.get(iv.state, 0.0) + iv.duration
        return out

    # ------------------------------------------------------------------
    # Timeline bookkeeping
    # ------------------------------------------------------------------

    def _note_state(self, start: float, end: float, state: str) -> None:
        if end <= start:
            return
        if state != STATE_IDLE:
            self._active_time += end - start
        if not self._keep_timeline:
            return
        if start > self._timeline_cursor:
            self._timeline.append(
                StateInterval(STATE_IDLE, self._timeline_cursor, start))
        self._timeline.append(StateInterval(state, start, end))
        self._timeline_cursor = end
