"""Closed-form and replay-based energy helpers.

These wrap :class:`~repro.radio.statemachine.RadioStateMachine` for the
access patterns the paper reasons about: isolated periodic ad fetches
(the status quo) versus one batched prefetch per epoch.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from .profiles import RadioProfile
from .statemachine import RadioStateMachine


def energy_of_schedule(profile: RadioProfile,
                       fetches: Iterable[tuple[float, int, str]],
                       horizon: float | None = None) -> dict[str, float]:
    """Replay ``(time, nbytes, tag)`` fetches and return energy per tag.

    Fetches must be sorted by time. The result maps each tag to its
    marginal communication energy in joules.
    """
    machine = RadioStateMachine(profile)
    for when, nbytes, tag in fetches:
        machine.transfer(when, nbytes, tag)
    machine.finalize(horizon)
    return machine.energy_by_tag()


def periodic_fetch_energy(profile: RadioProfile, nbytes: int, period: float,
                          count: int) -> float:
    """Energy of ``count`` fetches of ``nbytes`` spaced ``period`` apart.

    This is the status-quo ad-refresh pattern: if ``period`` exceeds the
    tail, every fetch pays the full promotion + tail.
    """
    if count <= 0:
        return 0.0
    fetches = [(i * period, nbytes, "ad") for i in range(count)]
    return energy_of_schedule(profile, fetches)["ad"]


def batched_fetch_energy(profile: RadioProfile, nbytes: int, batch: int) -> float:
    """Energy of downloading ``batch`` payloads back-to-back.

    One promotion, ``batch`` transfer times, one tail — the prefetch
    pattern. Returns total joules for the batch.
    """
    if batch <= 0:
        return 0.0
    machine = RadioStateMachine(profile)
    when = 0.0
    for _ in range(batch):
        rec = machine.transfer(when, nbytes, "ad")
        when = rec.end_time
    machine.finalize()
    return machine.energy_by_tag()["ad"]


def energy_per_ad(profile: RadioProfile, nbytes: int, batch: int) -> float:
    """Per-ad energy when ads are fetched in batches of ``batch``.

    The curve of this function over ``batch`` is experiment E2: it falls
    steeply from the isolated-fetch cost toward the pure transfer cost as
    the promotion and tail amortise.
    """
    if batch <= 0:
        raise ValueError("batch must be positive")
    return batched_fetch_energy(profile, nbytes, batch) / batch


def amortization_series(profile: RadioProfile, nbytes: int,
                        batches: Sequence[int]) -> list[tuple[int, float]]:
    """``(batch, per-ad joules)`` series across batch sizes (E2 helper)."""
    return [(b, energy_per_ad(profile, nbytes, b)) for b in batches]
