"""S2 — cellular/WiFi radio energy model (RRC states, tails, attribution)."""

from .energy import (
    amortization_series,
    batched_fetch_energy,
    energy_of_schedule,
    energy_per_ad,
    periodic_fetch_energy,
)
from .profiles import (LTE, PROFILES, THREE_G, THREE_G_FAST_DORMANCY, WIFI,
                       RadioProfile, get_profile)
from .statemachine import (
    STATE_ACTIVE,
    STATE_HIGH_TAIL,
    STATE_IDLE,
    STATE_LOW_TAIL,
    STATE_PROMO,
    RadioStateMachine,
    StateInterval,
    TransferRecord,
)

__all__ = [
    "RadioProfile",
    "get_profile",
    "THREE_G",
    "THREE_G_FAST_DORMANCY",
    "LTE",
    "WIFI",
    "PROFILES",
    "RadioStateMachine",
    "TransferRecord",
    "StateInterval",
    "STATE_IDLE",
    "STATE_PROMO",
    "STATE_ACTIVE",
    "STATE_HIGH_TAIL",
    "STATE_LOW_TAIL",
    "energy_of_schedule",
    "periodic_fetch_energy",
    "batched_fetch_energy",
    "energy_per_ad",
    "amortization_series",
]
