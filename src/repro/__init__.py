"""repro — reproduction of "Prefetching Mobile Ads: Can Advertising
Systems Afford It?" (Mohan, Nath, Riva; EuroSys 2013).

The package implements the full stack the paper evaluates on:

* :mod:`repro.sim` — discrete-event simulation kernel.
* :mod:`repro.radio` — cellular/WiFi radio energy model (tail energy).
* :mod:`repro.traces` / :mod:`repro.workloads` — synthetic populations
  and app-usage traces standing in for the paper's proprietary traces.
* :mod:`repro.prediction` — client-side ad-slot predictors.
* :mod:`repro.exchange` — advertisers, campaigns, RTB auctions.
* :mod:`repro.client` / :mod:`repro.server` — the ad SDK and ad server.
* :mod:`repro.core` — the paper's contribution: overbooked replication
  of prefetched ads with SLA/revenue accounting.
* :mod:`repro.baselines`, :mod:`repro.metrics`,
  :mod:`repro.experiments` — comparisons, reporting, and one runner per
  table/figure.
* :mod:`repro.obs` — observability: mergeable metrics, sim-time
  tracing, wall-clock profiling, run manifests.
* :mod:`repro.faults` — deterministic fault injection (loss, outages,
  server blackouts, latency, churn) and the resilience policies it
  exercises.

See DESIGN.md for the system inventory and EXPERIMENTS.md for
paper-vs-measured results.
"""

__version__ = "1.0.0"

# Top-level convenience surface: the objects a downstream user needs to
# run the system end to end. Subpackages expose the full APIs.
from repro.experiments.config import (  # noqa: E402
    BENCH_SCALE,
    PAPER_SCALE,
    ExperimentConfig,
)
from repro.experiments.harness import (  # noqa: E402
    ShardJob,
    execute_shard,
)
from repro.faults import FaultPlan  # noqa: E402
from repro.obs.runtime import ObsOptions  # noqa: E402
from repro.runner import (  # noqa: E402
    Runner,
    RunResult,
    WorldCache,
    WorldSource,
)

__all__ = [
    "__version__",
    "ExperimentConfig",
    "FaultPlan",
    "PAPER_SCALE",
    "BENCH_SCALE",
    "ObsOptions",
    "Runner",
    "RunResult",
    "ShardJob",
    "WorldCache",
    "WorldSource",
    "execute_shard",
]
