"""Sharded, multi-process run harness behind the public ``Runner`` API.

The paper's evaluation couples clients only through the ad server's
per-epoch plan/observe cycle, which makes the population embarrassingly
parallel across **user shards**: each shard runs the full epoch loop
against a shard-local :class:`~repro.server.adserver.AdServer` view (its
own exchange, campaigns, and dispatch RNG, all derived from the master
seed and the shard's index), and shard results are folded back together
through the mergeable accumulators in
:mod:`repro.metrics.accumulators`.

Determinism contract
--------------------
* The shard layout depends only on ``(config, shards)`` — never on
  ``parallelism``. ``Runner(config, parallelism=4)`` therefore returns
  **bit-for-bit** the metrics of ``Runner(config, parallelism=1)``.
* Each shard's RNG streams are namespaced by shard index and shard
  count (``"exchange-prefetch#shard3/8"``), so a shard's draws do not
  depend on worker scheduling or on which process ran it.
* With a single shard the historical stream names are used, so a
  ``shards=1`` run reproduces the pre-sharding serial results exactly.
* Shard execution is a pure function of the dispatched
  :class:`~repro.experiments.harness.ShardJob` — ``repro-lint`` RPR006
  checks the reachability closure of ``execute_shard`` for module
  state, environment writes, and open handles, so retrying a shard on
  a different worker cannot change the merged result.

Changing the *shard count* is a semantic knob, not merely an execution
knob: each shard sells its own predicted inventory into a shard-local
marketplace, so metrics drift slightly as shards multiply (the same
way the paper's numbers would drift if the operator split traffic
across independent ad servers).

Example
-------
>>> from repro import Runner, ExperimentConfig
>>> result = Runner(ExperimentConfig(n_users=40, n_days=6, train_days=3),
...                 parallelism=2, shards=2).run("headline")
>>> result.comparison.energy_savings > 0        # doctest: +SKIP
True
"""

from __future__ import annotations

import hashlib
import os
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from functools import reduce
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - break the runner <-> dist cycle
    from repro.dist.coordinator import DistStats

import numpy as np

from repro.client.timeline import ClientTimeline
from repro.experiments.config import ExperimentConfig
from repro.faults.chaos import CoordinatorChaos
from repro.experiments.harness import (
    BACKENDS,
    PrefetchArtifacts,
    ShardJob,
    World,
    build_world,
    execute_shard,
    shard_rng_tag,
    world_from_trace,
)
from repro.metrics.accumulators import (
    EnergyAccumulator,
    MeanAccumulator,
    RevenueAccumulator,
    SlaAccumulator,
)
from repro.metrics.outcomes import (
    Comparison,
    PrefetchOutcome,
    RealtimeOutcome,
    compare,
)
from repro.obs.flightrec import RingRecorder, capture_shard_crash
from repro.obs.ledger import Ledger, snapshot_digest
from repro.obs.ledger import RunRecord as LedgerRecord
from repro.obs.live import (
    BeatEmitter,
    LiveOptions,
    LivePlane,
    WorkerLiveSetup,
)
from repro.obs.manifest import RunManifest, build_manifest
from repro.obs.metrics import MetricsSnapshot
from repro.obs.profile import PhaseProfiler, RunProfile
from repro.obs.resources import ResourceTelemetry, collect_telemetry
from repro.obs.runtime import (
    Obs,
    ObsOptions,
    activate,
    default_obs_options,
    next_run_dir,
)
from repro.obs.trace import (
    NULL_RECORDER,
    MemoryRecorder,
    TraceEvent,
    write_chrome,
    write_jsonl,
)
from repro.radio.profiles import RadioProfile
from repro.sim.batched import (
    DEFAULT_CONTRACT,
    prefetch_metrics,
    realtime_metrics,
)
from repro.traces.stats import epoch_slot_counts
from repro.workloads.appstore import TOP15, AppProfile

SYSTEMS = ("prefetch", "realtime", "headline")

#: Shard execution engines ``Runner(executor=...)`` selects between.
EXECUTORS = ("pool", "dist")

#: Target shard granularity for ``shards=None``: one shard per this many
#: users, so the default layout is a function of the config alone.
USERS_PER_SHARD = 200

#: Upper bound on auto-selected shards (explicit ``shards=`` may exceed it).
MAX_AUTO_SHARDS = 16


def auto_shard_count(n_users: int, max_shards: int | None = None) -> int:
    """Default shard count for a population of ``n_users``.

    Deterministic in the config alone (never in worker count), so runs
    at any parallelism agree on the shard layout. ``max_shards``
    overrides the :data:`MAX_AUTO_SHARDS` clamp — the historical
    silent cap is now a visible knob (``Runner(max_shards=...)``,
    CLI ``--max-shards``), and the Runner emits the
    ``runner.auto_shards_clamped`` counter whenever the clamp actually
    bites.
    """
    cap = MAX_AUTO_SHARDS if max_shards is None else max(1, int(max_shards))
    return max(1, min(cap, n_users // USERS_PER_SHARD))


def partition_users(user_ids: Sequence[str],
                    n_shards: int) -> list[list[str]]:
    """Split ``user_ids`` into ``n_shards`` contiguous, near-even chunks.

    The input order is preserved (the harness iterates users in sorted
    order, so chunk membership is deterministic); chunk sizes differ by
    at most one.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    n = len(user_ids)
    base, extra = divmod(n, n_shards)
    chunks: list[list[str]] = []
    start = 0
    for index in range(n_shards):
        size = base + (1 if index < extra else 0)
        chunks.append(list(user_ids[start:start + size]))
        start += size
    return chunks


# ----------------------------------------------------------------------
# Execution options: the CLI-installable process default
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ExecOptions:
    """Execution-plane knobs shared by every Runner in a process.

    Mirrors the :class:`~repro.obs.runtime.ObsOptions` process-default
    pattern: the CLI installs one of these from ``--executor`` /
    ``--workers`` / ``--max-shards`` / ``--chaos`` and the experiment
    runners pick it up without threading executor arguments through
    every call site. All fields are execution knobs only — under the
    determinism contract they never change a merged bit (``max_shards``
    excepted: like ``shards`` it is a semantic knob, which is exactly
    why its silent historical clamp became visible).
    """

    executor: str = "pool"
    workers: int | None = None
    shards: int | None = None
    max_shards: int | None = None
    chaos: CoordinatorChaos | None = None

    def __post_init__(self) -> None:
        if self.executor not in EXECUTORS:
            raise ValueError(f"unknown executor {self.executor!r}; "
                             f"expected one of {EXECUTORS}")
        if self.workers is not None and self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.shards is not None and self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.max_shards is not None and self.max_shards < 1:
            raise ValueError("max_shards must be >= 1")


_DEFAULT_EXEC_OPTIONS: ExecOptions | None = None


def set_default_exec_options(options: ExecOptions | None) -> None:
    """Install (or clear, with ``None``) the process-default options."""
    global _DEFAULT_EXEC_OPTIONS
    _DEFAULT_EXEC_OPTIONS = options


def default_exec_options() -> ExecOptions:
    """The installed process default, or the quiet pool default."""
    if _DEFAULT_EXEC_OPTIONS is not None:
        return _DEFAULT_EXEC_OPTIONS
    return ExecOptions()


# ----------------------------------------------------------------------
# World provisioning: cache + explicit source (no module-global state)
# ----------------------------------------------------------------------


def default_spill_dir() -> Path:
    """Default on-disk trace cache: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    return Path(os.environ.get("REPRO_CACHE_DIR",
                               "~/.cache/repro")).expanduser()


class WorldCache:
    """Size-bounded LRU cache of generated :class:`World` objects.

    Parameters
    ----------
    max_worlds:
        In-memory bound; the least-recently-used world is evicted once
        the bound is exceeded.
    spill_dir:
        Optional directory for spilling generated **traces** to disk
        (JSONL via :mod:`repro.traces.io`). A later miss — including in
        a different process — reloads the trace and recompiles
        timelines instead of regenerating the population. Note the
        JSONL format rounds session times to milliseconds, so a
        spill-reloaded world is statistically, not bit-wise, identical
        to a freshly generated one.
    """

    def __init__(self, max_worlds: int = 16,
                 spill_dir: str | Path | None = None) -> None:
        if max_worlds < 1:
            raise ValueError("max_worlds must be >= 1")
        self.max_worlds = int(max_worlds)
        self.spill_dir = (Path(spill_dir).expanduser()
                          if spill_dir is not None else None)
        self._worlds: OrderedDict[tuple[object, ...], World] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.spill_loads = 0

    def __len__(self) -> int:
        return len(self._worlds)

    def _key(self, config: ExperimentConfig,
             apps: Sequence[AppProfile]) -> tuple[object, ...]:
        return (config.world_key(), tuple(a.app_id for a in apps))

    def spill_path(self, config: ExperimentConfig,
                   apps: Sequence[AppProfile] = TOP15) -> Path | None:
        """Where this config's trace spills to (None if spill disabled)."""
        if self.spill_dir is None:
            return None
        digest = hashlib.sha256(
            repr(self._key(config, apps)).encode()).hexdigest()[:16]
        return self.spill_dir / f"trace-{digest}.jsonl"

    def get(self, config: ExperimentConfig,
            apps: Sequence[AppProfile] = TOP15) -> World:
        """Return the world for ``config``, building it at most once."""
        key = self._key(config, apps)
        cached = self._worlds.get(key)
        if cached is not None:
            self.hits += 1
            self._worlds.move_to_end(key)
            return cached
        self.misses += 1
        world = self._load_spilled(config, apps)
        if world is None:
            world = build_world(config, apps)
            self._write_spill(config, apps, world)
        self._worlds[key] = world
        while len(self._worlds) > self.max_worlds:
            self._worlds.popitem(last=False)
        return world

    def _load_spilled(self, config: ExperimentConfig,
                      apps: Sequence[AppProfile]) -> World | None:
        path = self.spill_path(config, apps)
        if path is None or not path.exists():
            return None
        from repro.traces.io import read_trace
        trace = read_trace(path)
        self.spill_loads += 1
        return world_from_trace(config, trace, apps)

    def _write_spill(self, config: ExperimentConfig,
                     apps: Sequence[AppProfile], world: World) -> None:
        path = self.spill_path(config, apps)
        if path is None or path.exists():
            return
        from repro.traces.io import write_trace
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        write_trace(world.trace, tmp)
        tmp.replace(path)

    def clear(self) -> None:
        """Drop all in-memory worlds (spilled traces stay on disk)."""
        self._worlds.clear()


class WorldSource:
    """Explicit world provider owned by whoever runs shards.

    Replaces the historical module-global world cache: shard execution
    no longer consults hidden process state — callers hand a
    ``WorldSource`` (or the ``Runner`` builds a private one) and every
    world lookup is visible in the object graph.

    Parameters
    ----------
    cache:
        The backing :class:`WorldCache`. ``None`` builds a private
        cache that spills traces to :func:`default_spill_dir` only when
        ``REPRO_CACHE_DIR`` is set, so plain test runs never touch the
        user's home directory.
    world:
        Pin a pre-built :class:`World`: every lookup returns it,
        bypassing the cache (sweeps sharing one trace across config
        variants).
    apps:
        App catalog used when a world must be built.
    """

    def __init__(self, cache: WorldCache | None = None,
                 world: World | None = None,
                 apps: Sequence[AppProfile] = TOP15) -> None:
        if cache is None:
            spill = (default_spill_dir()
                     if os.environ.get("REPRO_CACHE_DIR") else None)
            cache = WorldCache(spill_dir=spill)
        self.cache = cache
        self.world = world
        self.apps = tuple(apps)

    def world_for(self, config: ExperimentConfig) -> World:
        """The world for ``config`` (the pinned world, if any)."""
        if self.world is not None:
            return self.world
        return self.cache.get(config, self.apps)

    def clear(self) -> None:
        """Drop cached worlds (the pinned world, if any, survives)."""
        self.cache.clear()


# ----------------------------------------------------------------------
# Shard execution (worker-process entry points)
# ----------------------------------------------------------------------


@dataclass(slots=True)
class ShardTask:
    """Everything one worker needs to run one shard.

    Shipped to worker processes by pickle, so it carries plain data
    (timeline arrays, profiles, counts) rather than live simulator
    state.
    """

    config: ExperimentConfig
    system: str
    shard_index: int
    n_shards: int
    apps: tuple[AppProfile, ...]
    timelines: dict[str, ClientTimeline]
    profile_of: dict[str, RadioProfile]
    counts: dict[str, np.ndarray]
    horizon: float
    trace: bool = False
    backend: str = "event"

    def to_job(self) -> ShardJob:
        """The :class:`ShardJob` this task executes."""
        return ShardJob(
            config=self.config, mode=self.system, apps=self.apps,
            timelines=self.timelines, profile_of=self.profile_of,
            counts=self.counts, horizon=self.horizon,
            shard_index=self.shard_index, n_shards=self.n_shards,
            backend=self.backend)


@dataclass(slots=True)
class ShardResult:
    """One shard's contribution to the merged run result.

    Besides the simulation outcomes, every shard carries its local
    :class:`~repro.obs.metrics.MetricsSnapshot`, its trace events (empty
    unless tracing was requested), and its own wall-clock execution
    time — all of which the Runner folds deterministically in
    shard-index order.
    """

    shard_index: int
    n_users: int
    prefetch: PrefetchOutcome | None = None
    replication_weight: float = 0.0
    realtime: RealtimeOutcome | None = None
    metrics: MetricsSnapshot = field(default_factory=MetricsSnapshot)
    events: list[TraceEvent] | None = None
    elapsed_s: float = 0.0


def run_shard_task(task: ShardTask,
                   live: WorkerLiveSetup | None = None) -> ShardResult:
    """Worker entry point: run one shard's epoch loop(s).

    The **shared** entry point of both executors: the process pool maps
    it over tasks directly, and every :mod:`repro.dist` worker calls it
    for each claimed job — so a shard computes bit-for-bit the same
    result, streams the same beats, and writes the same crash
    postmortem whichever executor dispatched it.

    Activates a fresh shard-local :class:`~repro.obs.runtime.Obs`
    bundle around the run, so every component constructed inside binds
    shard-local instruments; tracing uses a per-shard
    :class:`~repro.obs.trace.MemoryRecorder` only when requested.

    When a :class:`~repro.obs.live.WorkerLiveSetup` is handed in beside
    the task, the trace recorder is additionally wrapped in a
    :class:`~repro.obs.flightrec.RingRecorder` flight recorder and a
    :class:`~repro.obs.live.BeatEmitter` publishes out-of-band
    heartbeats over the setup's transport. Both observe only: a live
    shard computes bit-for-bit what a quiet shard computes. If the
    shard raises, the flight recorder's ring is serialized into a
    crash postmortem before the exception propagates to the pool.
    """
    profiler = PhaseProfiler()
    inner = (MemoryRecorder(shard=task.shard_index) if task.trace
             else None)
    beats: BeatEmitter | None = None
    ring: RingRecorder | None = None
    recorder = inner
    if live is not None:
        ring = RingRecorder(inner if inner is not None else NULL_RECORDER,
                            shard=task.shard_index,
                            capacity=live.ring_size)
        recorder = ring
        beats = BeatEmitter(live.transport,
                            shard_index=task.shard_index,
                            n_shards=task.n_shards,
                            interval_s=live.beat_interval_s)
    obs = Obs.create(recorder, beats)
    result = ShardResult(shard_index=task.shard_index,
                         n_users=len(task.timelines))
    if beats is not None:
        beats.beat(0.0, users=result.n_users, force=True)  # hello
    try:
        with activate(obs), profiler.phase("shard.execute"):
            execution = execute_shard(task.to_job())
            if execution.prefetch is not None:
                artifacts: PrefetchArtifacts = execution.prefetch
                result.prefetch = artifacts.outcome
                result.replication_weight = float(
                    sum(1 for s in artifacts.server.plan_stats if s.sold))
            result.realtime = execution.realtime
    except BaseException as exc:
        if live is not None:
            _write_crash_postmortem(task, live, obs, ring, exc)
        if beats is not None:
            beats.beat(0.0, users=result.n_users, failed=True)
        raise
    if beats is not None:
        beats.beat(task.horizon, users=result.n_users, final=True)
    result.metrics = obs.metrics.snapshot()
    result.events = obs.recorder.events() if task.trace else None
    stats = profiler.snapshot().phases.get("shard.execute")
    result.elapsed_s = stats.total_s if stats is not None else 0.0
    return result


#: Backwards-compatible alias (the entry point went public for repro.dist).
_run_shard = run_shard_task


def _write_crash_postmortem(task: ShardTask, live: WorkerLiveSetup,
                            obs: Obs, ring: RingRecorder | None,
                            exc: BaseException) -> None:
    """Capture a crashing shard's black box (shared obs helper).

    Runs on the worker's failure path only; a postmortem that cannot
    be written must not mask the original shard exception — the
    delegate returns ``None`` in that case rather than raising.
    """
    capture_shard_crash(
        shard_index=task.shard_index,
        n_shards=task.n_shards,
        system=live.system or task.system,
        backend=live.backend or task.backend,
        postmortem_dir=live.postmortem_dir,
        exc=exc,
        ring=ring,
        counters=obs.metrics.snapshot().counters,
    )


def canonical_shard_results(
        results: Sequence[ShardResult]) -> list[ShardResult]:
    """Canonical merge order: shard-index sorted, duplicates dropped.

    The normalization both merge folds apply, so the merged outcome is
    invariant under any *arrival* permutation of shard results — the
    property the distributed coordinator's bit-identity contract rests
    on (a stolen lease's original execution may deliver a late
    duplicate; shard execution is pure, so any copy of a shard index
    carries identical bits and the first one seen wins).
    """
    by_index: dict[int, ShardResult] = {}
    for result in results:
        by_index.setdefault(result.shard_index, result)
    return [by_index[index] for index in sorted(by_index)]


def _merge_prefetch(results: Sequence[ShardResult],
                    config: ExperimentConfig) -> PrefetchOutcome:
    """Fold shard prefetch outcomes into one population-wide outcome."""
    results = canonical_shard_results(results)
    pairs = [(r.prefetch, r) for r in results if r.prefetch is not None]
    outcomes = [outcome for outcome, _ in pairs]
    energy = reduce(EnergyAccumulator.merge,
                    (EnergyAccumulator.from_report(o.energy)
                     for o in outcomes), EnergyAccumulator())
    sla = reduce(SlaAccumulator.merge,
                 (SlaAccumulator.from_report(o.sla) for o in outcomes),
                 SlaAccumulator())
    revenue = reduce(RevenueAccumulator.merge,
                     (RevenueAccumulator.from_report(o.revenue)
                      for o in outcomes), RevenueAccumulator())
    replication = reduce(
        MeanAccumulator.merge,
        (MeanAccumulator.from_mean(o.mean_replication, r.replication_weight)
         for o, r in pairs), MeanAccumulator())
    return PrefetchOutcome(
        energy=energy.finalize(float(config.test_days)),
        sla=sla.finalize(),
        revenue=revenue.finalize(),
        cached_displays=sum(o.cached_displays for o in outcomes),
        rescued_displays=sum(o.rescued_displays for o in outcomes),
        fallback_displays=sum(o.fallback_displays for o in outcomes),
        house_displays=sum(o.house_displays for o in outcomes),
        wasted_downloads=sum(o.wasted_downloads for o in outcomes),
        mean_replication=replication.finalize(),
        syncs=sum(o.syncs for o in outcomes),
    )


def _merge_realtime(results: Sequence[ShardResult]) -> RealtimeOutcome:
    """Fold shard realtime outcomes into one population-wide outcome."""
    outcomes = [r.realtime for r in canonical_shard_results(results)
                if r.realtime is not None]
    energy = reduce(EnergyAccumulator.merge,
                    (EnergyAccumulator.from_report(o.energy)
                     for o in outcomes), EnergyAccumulator())
    days = outcomes[0].energy.days
    return RealtimeOutcome(
        energy=energy.finalize(days),
        billed_revenue=sum(o.billed_revenue for o in outcomes),
        impressions=sum(o.impressions for o in outcomes),
        unfilled_slots=sum(o.unfilled_slots for o in outcomes),
    )


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class RunResult:
    """Merged outcome of one :meth:`Runner.run` call.

    The observability fields (``metrics``, ``profile``, ``manifest``,
    ``trace_events``) are carried alongside the simulation outcomes and
    never feed back into them: a traced run's ``comparison`` is
    bit-for-bit identical to an untraced one. ``postmortems`` lists any
    flight-recorder files the live plane wrote during the run (stall
    episodes that later recovered still leave their postmortem behind,
    so the episode is inspectable after the fact).
    """

    system: str
    n_shards: int
    parallelism: int
    elapsed_s: float
    prefetch: PrefetchOutcome | None = None
    realtime: RealtimeOutcome | None = None
    comparison: Comparison | None = None
    metrics: MetricsSnapshot = field(default_factory=MetricsSnapshot)
    profile: RunProfile = field(default_factory=RunProfile)
    manifest: RunManifest | None = None
    trace_events: tuple[TraceEvent, ...] = ()
    artifacts_dir: Path | None = None
    resources: ResourceTelemetry = field(default_factory=ResourceTelemetry)
    postmortems: tuple[Path, ...] = ()
    #: Distributed-executor accounting (``None`` for pool runs). Kept
    #: out of ``metrics`` on purpose: requeues and duplicate discards
    #: describe the unreliable substrate, not the simulation, and the
    #: merged snapshot must stay bit-identical across executors.
    dist: "DistStats | None" = None

    def result_metrics(self) -> dict[str, float]:
        """The run's flat, contract-addressable result metrics.

        The same flattening the batched-backend equivalence check uses
        (:func:`repro.sim.batched.prefetch_metrics` /
        :func:`~repro.sim.batched.realtime_metrics`), plus the headline
        comparison ratios — this is what lands in a ledger record's
        ``metrics`` map.
        """
        flat: dict[str, float] = {}
        if self.prefetch is not None:
            flat.update(prefetch_metrics(self.prefetch))
        if self.realtime is not None:
            flat.update(realtime_metrics(self.realtime))
        if self.comparison is not None:
            flat.update({
                "headline.energy_savings": self.comparison.energy_savings,
                "headline.revenue_loss": self.comparison.revenue_loss,
                "headline.sla_violation_rate":
                    self.comparison.sla_violation_rate,
                "headline.wakeup_reduction":
                    self.comparison.wakeup_reduction,
            })
        return flat

    @property
    def value(self) -> Comparison | PrefetchOutcome | RealtimeOutcome | None:
        """The system's primary result object.

        The :class:`~repro.metrics.outcomes.Comparison` for
        ``"headline"``, otherwise the single system's outcome.
        """
        if self.system == "headline":
            return self.comparison
        if self.system == "prefetch":
            return self.prefetch
        return self.realtime


class Runner:
    """Sharded run harness: the supported way to execute full runs.

    Parameters
    ----------
    config:
        The experiment parameterisation.
    parallelism:
        Worker processes for shard execution. Purely an execution knob:
        results are bit-for-bit identical at any value.
    shards:
        Shard count, or ``None`` for :func:`auto_shard_count`. This *is*
        a semantic knob — each shard serves a shard-local ad-server
        view — so it is derived from the config, never from
        ``parallelism``.
    backend:
        Shard execution backend: ``"event"`` (the reference discrete
        event engine) or ``"batched"`` (vectorized components verified
        equivalent; see :mod:`repro.sim.batched`). Purely an execution
        knob under the equivalence contract.
    source:
        Explicit :class:`WorldSource` to draw worlds from. ``None``
        builds one from the ``cache``/``world``/``apps`` convenience
        parameters below.
    cache:
        The :class:`WorldCache` to draw worlds from (ignored when
        ``source`` is given).
    world:
        Pre-built :class:`World` to reuse, bypassing the cache (sweeps
        sharing one trace across config variants; ignored when
        ``source`` is given).
    apps:
        App catalog for world construction (defaults to the paper's
        top-15 catalog; ignored when ``source`` is given).
    obs:
        Observability options (tracing, artifact directory). ``None``
        falls back to the process default installed by the CLI's
        ``--trace``/``--metrics-out`` flags (see
        :func:`repro.obs.runtime.set_default_obs_options`); pass
        ``ObsOptions()`` explicitly to force the quiet default.
    executor:
        Shard execution engine: ``"pool"`` (in-process / process-pool
        map, the historical path) or ``"dist"`` (the
        :mod:`repro.dist` coordinator/worker runner with lease-based
        work-stealing and retry). Purely an execution knob: merged
        results are bit-for-bit identical across executors. ``None``
        falls back to the process default installed by the CLI's
        ``--executor`` flag (see :func:`set_default_exec_options`).
    workers:
        Worker-process count for the ``"dist"`` executor (defaults to
        ``parallelism``). Purely an execution knob.
    max_shards:
        Clamp on the *auto* shard count (``shards=None``); ``None``
        keeps the historical :data:`MAX_AUTO_SHARDS`. A semantic knob
        like ``shards``; when the clamp actually bites, the run's
        merged metrics carry a ``runner.auto_shards_clamped`` counter.
    chaos:
        Optional :class:`~repro.faults.CoordinatorChaos` plan for the
        ``"dist"`` executor (seeded worker kills / duplicated /
        delayed results). Chaos runs must still merge bit-identically.
    """

    def __init__(self, config: ExperimentConfig, *,
                 parallelism: int = 1,
                 shards: int | None = None,
                 backend: str = "event",
                 source: WorldSource | None = None,
                 cache: WorldCache | None = None,
                 world: World | None = None,
                 apps: Sequence[AppProfile] = TOP15,
                 obs: ObsOptions | None = None,
                 executor: str | None = None,
                 workers: int | None = None,
                 max_shards: int | None = None,
                 chaos: CoordinatorChaos | None = None) -> None:
        if parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        if shards is not None and shards < 1:
            raise ValueError("shards must be >= 1")
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}")
        exec_defaults = default_exec_options()
        executor = executor if executor is not None else exec_defaults.executor
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of {EXECUTORS}")
        workers = workers if workers is not None else exec_defaults.workers
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        max_shards = (max_shards if max_shards is not None
                      else exec_defaults.max_shards)
        if max_shards is not None and max_shards < 1:
            raise ValueError("max_shards must be >= 1")
        self.config = config
        self.parallelism = int(parallelism)
        self.shards = shards if shards is not None else exec_defaults.shards
        self.backend = backend
        self.executor = executor
        self.workers = workers
        self.max_shards = max_shards
        self.chaos = chaos if chaos is not None else exec_defaults.chaos
        self.source = (source if source is not None
                       else WorldSource(cache=cache, world=world, apps=apps))
        self.obs = obs

    def resolve_shards(self, n_users: int) -> int:
        """The effective shard count for an ``n_users`` population."""
        n = self.shards if self.shards is not None else auto_shard_count(
            n_users, self.max_shards)
        return max(1, min(n, max(1, n_users)))

    def _auto_clamp_bites(self, n_users: int) -> bool:
        """Whether the auto-shard clamp actually reduced the layout."""
        if self.shards is not None:
            return False
        unclamped = max(1, n_users // USERS_PER_SHARD)
        return unclamped > auto_shard_count(n_users, self.max_shards)

    def _tasks(self, system: str, world: World,
               trace: bool = False) -> list[ShardTask]:
        user_ids = list(world.timelines)
        n_shards = self.resolve_shards(len(user_ids))
        counts = epoch_slot_counts(world.trace, world.refresh_of,
                                   self.config.epoch_s)
        tasks = []
        for index, chunk in enumerate(partition_users(user_ids, n_shards)):
            tasks.append(ShardTask(
                config=self.config,
                system=system,
                shard_index=index,
                n_shards=n_shards,
                apps=world.apps,
                timelines={uid: world.timelines[uid] for uid in chunk},
                profile_of={uid: world.profile_of[uid] for uid in chunk},
                counts={uid: counts[uid] for uid in chunk},
                horizon=world.trace.horizon,
                trace=trace,
                backend=self.backend,
            ))
        return tasks

    def run(self, system: str = "headline") -> RunResult:
        """Execute ``system`` over the config's population.

        ``system`` is ``"prefetch"``, ``"realtime"``, or ``"headline"``
        (both, compared on the identical trace). Under the ``"pool"``
        executor shards run serially in-process at ``parallelism=1``,
        otherwise across a
        :class:`~concurrent.futures.ProcessPoolExecutor`; under
        ``"dist"`` a :class:`repro.dist.Coordinator` dispatches them to
        worker processes with lease-based stealing and retry. Every
        path merges shard results in shard-index order with duplicates
        discarded, so the metrics are identical.
        """
        if system not in SYSTEMS:
            raise ValueError(
                f"unknown system {system!r}; expected one of {SYSTEMS}")
        options = self.obs if self.obs is not None else default_obs_options()
        trace = bool(options.trace) if options is not None else False
        live = options.live if options is not None else None
        profiler = PhaseProfiler()
        started = time.perf_counter()
        with profiler.phase("world.build"):
            world = self.source.world_for(self.config)
        tasks = self._tasks(system, world, trace)
        workers = min(self.parallelism, len(tasks))
        if live is not None:
            live = self._with_postmortem_dir(live, options)
        plane: LivePlane | None = None
        dist_stats: "DistStats | None" = None
        dist_postmortems: tuple[Path, ...] = ()
        if self.executor == "pool" and live is not None:
            plane = LivePlane(live, n_shards=len(tasks), system=system,
                              backend=self.backend,
                              parallel=workers > 1)
        with profiler.phase("shards.execute"):
            if self.executor == "dist":
                from repro.dist.coordinator import Coordinator

                coordinator = Coordinator(
                    tasks,
                    workers=(self.workers if self.workers is not None
                             else self.parallelism),
                    live=(live if live is not None
                          else self._with_postmortem_dir(LiveOptions(),
                                                         options)),
                    chaos=self.chaos,
                    system=system,
                    backend=self.backend,
                )
                results = coordinator.run()
                dist_stats = coordinator.stats
                dist_postmortems = tuple(coordinator.postmortems)
            elif plane is not None:
                plane.start()
                setup = plane.worker_setup()
                try:
                    if workers > 1:
                        with ProcessPoolExecutor(max_workers=workers) as pool:
                            results = list(pool.map(
                                run_shard_task, tasks, [setup] * len(tasks)))
                    else:
                        results = [run_shard_task(task, setup)
                                   for task in tasks]
                except BaseException:
                    plane.finish(failed=True)
                    raise
                plane.finish()
            elif workers > 1:
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    results = list(pool.map(run_shard_task, tasks))
            else:
                results = [run_shard_task(task) for task in tasks]
        results = canonical_shard_results(results)
        for shard in results:
            profiler.add(f"shard.{shard.shard_index}.execute",
                         shard.elapsed_s)
        prefetch = realtime = comparison = None
        with profiler.phase("merge"):
            if system in ("prefetch", "headline"):
                prefetch = _merge_prefetch(results, self.config)
            if system in ("realtime", "headline"):
                realtime = _merge_realtime(results)
            if system == "headline":
                assert prefetch is not None and realtime is not None
                comparison = compare(prefetch, realtime)
            metrics = reduce(MetricsSnapshot.merge,
                             (r.metrics for r in results), MetricsSnapshot())
            if self._auto_clamp_bites(len(world.timelines)):
                # Deterministic in (config, max_shards) alone — never in
                # executor or parallelism — so folding it into the merged
                # snapshot keeps cross-executor bit-identity intact.
                metrics = metrics.merge(MetricsSnapshot(
                    counters={"runner.auto_shards_clamped": 1.0}))
            events: list[TraceEvent] = []
            if trace:
                for shard in results:
                    events.extend(shard.events or [])
        elapsed_s = time.perf_counter() - started
        manifest = build_manifest(
            self.config, system=system, n_shards=len(tasks),
            parallelism=self.parallelism, trace_enabled=trace,
            elapsed_s=elapsed_s, counter_totals=metrics.counters,
            backend=self.backend,
            equivalence_contract_hash=(DEFAULT_CONTRACT.digest()
                                       if self.backend == "batched"
                                       else None))
        profile = profiler.snapshot()
        resources = collect_telemetry(
            elapsed_s=elapsed_s,
            users_total=metrics.counters.get("throughput.users_total", 0.0),
            events_total=metrics.counters.get("throughput.events_total", 0.0))
        artifacts_dir = self._write_artifacts(
            options, result_system=system, manifest=manifest,
            metrics=metrics, profile=profile, events=events, trace=trace,
            resources=resources)
        result = RunResult(
            system=system,
            n_shards=len(tasks),
            parallelism=self.parallelism,
            elapsed_s=elapsed_s,
            prefetch=prefetch,
            realtime=realtime,
            comparison=comparison,
            metrics=metrics,
            profile=profile,
            manifest=manifest,
            trace_events=tuple(events),
            artifacts_dir=artifacts_dir,
            resources=resources,
            postmortems=(tuple(plane.postmortems)
                         if plane is not None else dist_postmortems),
            dist=dist_stats,
        )
        if options is not None and options.ledger is not None:
            self._append_ledger(options.ledger, result, metrics)
        return result

    @staticmethod
    def _with_postmortem_dir(live: LiveOptions,
                             options: ObsOptions | None) -> LiveOptions:
        """Default the postmortem dir into the run's artifact tree."""
        if live.postmortem_dir is not None:
            return live
        if options is None or options.out_dir is None:
            return live
        import dataclasses

        return dataclasses.replace(
            live, postmortem_dir=Path(options.out_dir) / "postmortems")

    def _append_ledger(self, ledger_path: Path, result: RunResult,
                       metrics: MetricsSnapshot) -> None:
        """Append this run to the ledger at ``ledger_path``.

        The committed record carries only deterministic fields (identity
        + counter totals + result metrics + snapshot digest); the
        resource telemetry rides in the gitignored timings sibling.
        """
        assert result.manifest is not None
        record = LedgerRecord.from_manifest(
            result.manifest,
            metrics=result.result_metrics(),
            metrics_digest=snapshot_digest(metrics))
        Ledger(ledger_path).append(record, telemetry=result.resources)

    def _write_artifacts(self, options: ObsOptions | None, *,
                         result_system: str, manifest: RunManifest,
                         metrics: MetricsSnapshot, profile: RunProfile,
                         events: Sequence[TraceEvent],
                         trace: bool,
                         resources: ResourceTelemetry) -> Path | None:
        """Write one ``run-NNN-<label>`` artifact directory, if requested."""
        if options is None or options.out_dir is None:
            return None
        import json

        run_dir = next_run_dir(options, result_system)
        run_dir.mkdir(parents=True, exist_ok=True)
        manifest.write(run_dir / "manifest.json")
        (run_dir / "metrics.json").write_text(
            json.dumps(metrics.to_jsonable(), indent=2, sort_keys=True)
            + "\n", encoding="utf-8")
        (run_dir / "profile.json").write_text(
            json.dumps(profile.to_jsonable(), indent=2, sort_keys=True)
            + "\n", encoding="utf-8")
        (run_dir / "resources.json").write_text(
            json.dumps(resources.to_jsonable(), indent=2, sort_keys=True)
            + "\n", encoding="utf-8")
        if trace:
            write_jsonl(events, run_dir / "trace.jsonl")
            write_chrome(events, run_dir / "trace.chrome.json")
        return run_dir
