"""S3 — synthetic traces: diurnal models, generation, I/O, statistics."""

from .calibration import CalibrationResult, CalibrationTarget, calibrate
from .diurnal import (
    DAYPARTS,
    HOURS_PER_DAY,
    DiurnalProfile,
    autocorrelation_lag_one_day,
    population_hourly_profile,
    random_profile,
)
from .generator import TraceConfig, TraceGenerator, generate_trace
from .io import read_trace, write_trace
from .schema import (
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    AdSlot,
    Session,
    Trace,
    UserTrace,
)
from .stats import (
    TraceSummary,
    cdf,
    epoch_slot_counts,
    hour_of_day_profile,
    hourly_slot_counts,
    refresh_map,
    slots_per_user_day,
    summarize,
    user_hourly_slot_counts,
)

__all__ = [
    "DiurnalProfile",
    "random_profile",
    "population_hourly_profile",
    "autocorrelation_lag_one_day",
    "DAYPARTS",
    "HOURS_PER_DAY",
    "Session",
    "AdSlot",
    "UserTrace",
    "Trace",
    "SECONDS_PER_DAY",
    "SECONDS_PER_HOUR",
    "TraceConfig",
    "TraceGenerator",
    "generate_trace",
    "write_trace",
    "read_trace",
    "TraceSummary",
    "summarize",
    "cdf",
    "refresh_map",
    "slots_per_user_day",
    "hourly_slot_counts",
    "user_hourly_slot_counts",
    "hour_of_day_profile",
    "epoch_slot_counts",
    "CalibrationTarget",
    "CalibrationResult",
    "calibrate",
]
