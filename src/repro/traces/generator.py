"""Synthetic trace generation.

Turns a sampled user population into a concrete multi-day session trace:
for each user and day, a Poisson number of sessions is drawn around the
user's (noisy) daily rate, session start hours follow the user's diurnal
profile, apps follow the user's preference weights, and durations are
lognormal around the app's median.

The output has the statistical properties the paper's client models rely
on: heavy-tailed per-user volume, strong time-of-day structure, and
day-over-day self-similarity modulated by per-user regularity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.obs import log

from .schema import SECONDS_PER_DAY, SECONDS_PER_HOUR, Session, Trace

# Diagnostics go through the shared repro.obs.log helper (silent unless
# enabled); ad-hoc print()/logging setups are deprecated repo-wide.
_log = log.get_logger("traces.generator")

if TYPE_CHECKING:  # avoid an import cycle; apps are duck-typed at runtime
    from repro.workloads.appstore import AppProfile
    from repro.workloads.population import UserProfile


@dataclass(frozen=True, slots=True)
class TraceConfig:
    """Knobs for trace synthesis (population knobs live elsewhere)."""

    n_days: int = 14
    max_sessions_per_day: int = 200
    min_session_s: float = 5.0
    max_session_s: float = 3 * SECONDS_PER_HOUR

    def __post_init__(self) -> None:
        if self.n_days <= 0:
            raise ValueError("n_days must be positive")
        if self.min_session_s <= 0 or self.max_session_s <= self.min_session_s:
            raise ValueError("invalid session duration bounds")


class TraceGenerator:
    """Deterministic (seeded) trace synthesiser.

    Parameters
    ----------
    apps:
        The app catalog users launch from.
    config:
        Trace-level knobs.
    rng:
        A dedicated numpy generator; the same generator + population
        always produces the identical trace.
    """

    def __init__(self, apps: Sequence["AppProfile"], config: TraceConfig,
                 rng: np.random.Generator) -> None:
        if not apps:
            raise ValueError("need at least one app")
        self.apps = list(apps)
        self.config = config
        self.rng = rng

    def generate(self, population: Sequence["UserProfile"]) -> Trace:
        """Generate the full trace for ``population``."""
        trace = Trace(n_days=self.config.n_days)
        n_sessions = 0
        n_silent = 0
        for user in population:
            user_trace_sessions = self._user_sessions(user)
            n_sessions += len(user_trace_sessions)
            for session in user_trace_sessions:
                trace.add_session(session, platform=user.platform)
            if user.user_id not in trace.users:
                # Keep silent users in the population: they still run the
                # client SDK and must be predicted (as ~zero slots).
                from .schema import UserTrace
                trace.users[user.user_id] = UserTrace(user.user_id, user.platform)
                n_silent += 1
        for user_trace in trace.users.values():
            user_trace.sort()
        _log.debug("generated %d sessions for %d users (%d silent) "
                   "over %d days", n_sessions, len(population), n_silent,
                   self.config.n_days)
        return trace

    def _user_sessions(self, user: "UserProfile") -> list[Session]:
        cfg = self.config
        rng = self.rng
        sessions: list[Session] = []
        app_ids = [a.app_id for a in self.apps]
        app_by_id = {a.app_id: a for a in self.apps}
        weights = np.asarray(user.app_weights, dtype=float)
        if len(weights) != len(self.apps):
            raise ValueError(
                f"user {user.user_id} has {len(weights)} app weights for "
                f"{len(self.apps)} apps")
        weights = weights / weights.sum()
        for day in range(cfg.n_days):
            rate = user.daily_rate(day, rng)
            count = int(rng.poisson(rate))
            count = min(count, cfg.max_sessions_per_day)
            if count == 0:
                continue
            chosen = rng.choice(len(app_ids), size=count, p=weights)
            for app_idx in chosen:
                app = app_by_id[app_ids[int(app_idx)]]
                hour = user.diurnal.sample_hour(rng)
                start = day * SECONDS_PER_DAY + hour * SECONDS_PER_HOUR
                duration = float(rng.lognormal(
                    mean=np.log(app.session_median_s),
                    sigma=app.session_sigma))
                duration = float(np.clip(duration, cfg.min_session_s,
                                         cfg.max_session_s))
                # Clamp sessions to the trace horizon so downstream hour
                # indexing stays in range. Sessions starting too close to
                # the horizon to fit the minimum duration are dropped —
                # clamping them would violate the min_session_s invariant.
                end_cap = cfg.n_days * SECONDS_PER_DAY
                if start > end_cap - cfg.min_session_s - 1e-6:
                    continue
                duration = min(duration, end_cap - start - 1e-6)
                sessions.append(Session(user.user_id, app.app_id, start, duration))
        return sessions


def generate_trace(population: Sequence["UserProfile"],
                   apps: Sequence["AppProfile"],
                   rng: np.random.Generator,
                   n_days: int = 14) -> Trace:
    """One-call convenience wrapper around :class:`TraceGenerator`."""
    generator = TraceGenerator(apps, TraceConfig(n_days=n_days), rng)
    return generator.generate(population)
