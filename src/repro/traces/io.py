"""Trace persistence: JSONL round-trip.

One JSON object per line. The first line is a header record with trace
metadata; subsequent lines are sessions. The format is append-friendly
and diff-able, which is all a research trace needs.
"""

from __future__ import annotations

import json
from pathlib import Path

from .schema import Session, Trace

_HEADER_KIND = "trace-header"
_SESSION_KIND = "session"
FORMAT_VERSION = 1


def write_trace(trace: Trace, path: str | Path,
                platforms: dict[str, str] | None = None) -> int:
    """Write ``trace`` to ``path``; returns the number of sessions written.

    ``platforms`` optionally overrides per-user platform labels; by
    default the labels stored on the trace's users are used.
    """
    path = Path(path)
    platform_of = platforms or {
        uid: u.platform for uid, u in trace.users.items()}
    count = 0
    with path.open("w", encoding="utf-8") as fh:
        header = {
            "kind": _HEADER_KIND,
            "version": FORMAT_VERSION,
            "n_days": trace.n_days,
            "users": {uid: platform_of.get(uid, "wp") for uid in sorted(trace.users)},
        }
        fh.write(json.dumps(header) + "\n")
        for session in trace.all_sessions():
            record = {
                "kind": _SESSION_KIND,
                "user": session.user_id,
                "app": session.app_id,
                "start": round(session.start, 3),
                "duration": round(session.duration, 3),
            }
            fh.write(json.dumps(record) + "\n")
            count += 1
    return count


def read_trace(path: str | Path) -> Trace:
    """Load a trace written by :func:`write_trace`.

    Raises
    ------
    ValueError
        On a missing/invalid header or an unsupported format version.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        header_line = fh.readline()
        if not header_line:
            raise ValueError(f"{path}: empty trace file")
        header = json.loads(header_line)
        if header.get("kind") != _HEADER_KIND:
            raise ValueError(f"{path}: missing trace header")
        if header.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported trace version {header.get('version')!r}")
        trace = Trace(n_days=int(header["n_days"]))
        platforms: dict[str, str] = dict(header.get("users", {}))
        for line_no, line in enumerate(fh, start=2):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("kind") != _SESSION_KIND:
                raise ValueError(f"{path}:{line_no}: unexpected record kind")
            session = Session(
                user_id=record["user"],
                app_id=record["app"],
                start=float(record["start"]),
                duration=float(record["duration"]),
            )
            trace.add_session(session,
                              platform=platforms.get(session.user_id, "wp"))
    # Restore users that had no sessions.
    from .schema import UserTrace
    for uid, platform in platforms.items():
        if uid not in trace.users:
            trace.users[uid] = UserTrace(uid, platform)
    for user in trace.users.values():
        user.sort()
    return trace
