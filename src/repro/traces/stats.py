"""Trace characterization (experiment E3 and model calibration).

All functions take a :class:`~repro.traces.schema.Trace` plus the app
catalog's refresh intervals and produce the statistics the paper plots:
per-user slot volume, the population's hourly rhythm, and day-over-day
self-similarity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .diurnal import HOURS_PER_DAY, autocorrelation_lag_one_day
from .schema import Trace


def refresh_map(apps) -> dict[str, float]:
    """app_id -> ad refresh period, from any AppProfile iterable."""
    return {a.app_id: a.ad_refresh_s for a in apps}


def slots_per_user_day(trace: Trace, refresh_of: dict[str, float]) -> np.ndarray:
    """Matrix of ad-slot counts, shape (n_users, n_days).

    Users are ordered by sorted user id.
    """
    users = trace.sorted_users()
    out = np.zeros((len(users), trace.n_days), dtype=np.int64)
    for row, user in enumerate(users):
        for slot in user.slots(refresh_of):
            day = slot.day
            if 0 <= day < trace.n_days:
                out[row, day] += 1
    return out


def hourly_slot_counts(trace: Trace, refresh_of: dict[str, float]) -> np.ndarray:
    """Population-wide slot counts per absolute hour, shape (n_days*24,)."""
    counts = np.zeros(trace.n_days * HOURS_PER_DAY, dtype=np.int64)
    for user in trace.users.values():
        for slot in user.slots(refresh_of):
            idx = slot.hour_index
            if 0 <= idx < counts.size:
                counts[idx] += 1
    return counts


def user_hourly_slot_counts(trace: Trace, user_id: str,
                            refresh_of: dict[str, float]) -> np.ndarray:
    """One user's slot counts per absolute hour."""
    counts = np.zeros(trace.n_days * HOURS_PER_DAY, dtype=np.int64)
    for slot in trace.user(user_id).slots(refresh_of):
        idx = slot.hour_index
        if 0 <= idx < counts.size:
            counts[idx] += 1
    return counts


def cdf(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: returns (sorted values, cumulative probabilities)."""
    v = np.sort(np.asarray(values).ravel())
    if v.size == 0:
        raise ValueError("cdf of empty data")
    p = np.arange(1, v.size + 1) / v.size
    return v, p


@dataclass(frozen=True, slots=True)
class TraceSummary:
    """Headline characterization numbers for a trace (E3's table)."""

    n_users: int
    n_days: int
    n_sessions: int
    n_slots: int
    slots_per_user_day_mean: float
    slots_per_user_day_median: float
    slots_per_user_day_p90: float
    active_user_fraction: float      # users with >= 1 slot
    peak_hour: int                   # busiest hour of day (population)
    day_over_day_autocorrelation: float


def summarize(trace: Trace, refresh_of: dict[str, float]) -> TraceSummary:
    """Compute the E3 characterization summary."""
    per_ud = slots_per_user_day(trace, refresh_of)
    hourly = hourly_slot_counts(trace, refresh_of)
    by_hour_of_day = hourly.reshape(trace.n_days, HOURS_PER_DAY).sum(axis=0)
    flat = per_ud.ravel().astype(float)
    autocorr = (autocorrelation_lag_one_day(hourly.astype(float))
                if trace.n_days >= 2 else float("nan"))
    return TraceSummary(
        n_users=trace.n_users,
        n_days=trace.n_days,
        n_sessions=trace.n_sessions(),
        n_slots=int(per_ud.sum()),
        slots_per_user_day_mean=float(flat.mean()) if flat.size else 0.0,
        slots_per_user_day_median=float(np.median(flat)) if flat.size else 0.0,
        slots_per_user_day_p90=float(np.percentile(flat, 90)) if flat.size else 0.0,
        active_user_fraction=float((per_ud.sum(axis=1) > 0).mean()) if per_ud.size else 0.0,
        peak_hour=int(np.argmax(by_hour_of_day)),
        day_over_day_autocorrelation=autocorr,
    )


def hour_of_day_profile(trace: Trace, refresh_of: dict[str, float]) -> np.ndarray:
    """Fraction of all slots falling in each hour of day (sums to 1)."""
    hourly = hourly_slot_counts(trace, refresh_of)
    by_hour = hourly.reshape(trace.n_days, HOURS_PER_DAY).sum(axis=0).astype(float)
    total = by_hour.sum()
    if total == 0:
        raise ValueError("trace has no slots")
    return by_hour / total


def epoch_slot_counts(trace: Trace, refresh_of: dict[str, float],
                      epoch_s: float) -> dict[str, np.ndarray]:
    """Per-user slot counts in consecutive epochs of ``epoch_s`` seconds.

    This is the series the predictors are trained/evaluated on.
    """
    if epoch_s <= 0:
        raise ValueError("epoch_s must be positive")
    n_epochs = int(np.ceil(trace.horizon / epoch_s))
    out: dict[str, np.ndarray] = {}
    for user in trace.sorted_users():
        counts = np.zeros(n_epochs, dtype=np.int64)
        for slot in user.slots(refresh_of):
            idx = int(slot.time // epoch_s)
            if 0 <= idx < n_epochs:
                counts[idx] += 1
        out[user.user_id] = counts
    return out
