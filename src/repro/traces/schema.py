"""Trace data model.

A trace is the unit the whole reproduction runs on: per-user foreground
app sessions over a span of days, from which ad slots (one per ad
rotation) and app traffic (for piggybacking) are derived.

Times are simulated seconds from the trace origin (midnight of day 0).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86400.0


@dataclass(frozen=True, slots=True)
class Session:
    """One foreground app session."""

    user_id: str
    app_id: str
    start: float
    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError("duration must be non-negative")
        if self.start < 0:
            raise ValueError("start must be non-negative")

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def day(self) -> int:
        return int(self.start // SECONDS_PER_DAY)

    @property
    def hour_of_day(self) -> float:
        return (self.start % SECONDS_PER_DAY) / SECONDS_PER_HOUR

    def slot_times(self, refresh_s: float) -> list[float]:
        """Ad-slot timestamps for this session given a rotation period."""
        if refresh_s <= 0:
            raise ValueError("refresh_s must be positive")
        n = 1 + int(self.duration // refresh_s)
        return [self.start + k * refresh_s for k in range(n)]

    def app_request_times(self, interval_s: float | None) -> list[float]:
        """Timestamps of the app's own requests (empty if offline)."""
        if interval_s is None:
            return []
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        n = 1 + int(self.duration // interval_s)
        return [self.start + k * interval_s for k in range(n)]


@dataclass(frozen=True, slots=True)
class AdSlot:
    """A single displayable ad opportunity on a client."""

    user_id: str
    app_id: str
    time: float

    @property
    def day(self) -> int:
        return int(self.time // SECONDS_PER_DAY)

    @property
    def hour_index(self) -> int:
        """Absolute hour index from the trace origin."""
        return int(self.time // SECONDS_PER_HOUR)


@dataclass(slots=True)
class UserTrace:
    """All sessions of one user, kept sorted by start time."""

    user_id: str
    platform: str
    sessions: list[Session] = field(default_factory=list)

    def add(self, session: Session) -> None:
        if session.user_id != self.user_id:
            raise ValueError("session belongs to a different user")
        self.sessions.append(session)

    def sort(self) -> None:
        self.sessions.sort(key=lambda s: s.start)

    def slots(self, refresh_of: dict[str, float]) -> list[AdSlot]:
        """Derive the user's ad-slot stream.

        ``refresh_of`` maps app_id -> rotation period in seconds.
        """
        out = [
            AdSlot(self.user_id, s.app_id, t)
            for s in self.sessions
            for t in s.slot_times(refresh_of[s.app_id])
        ]
        out.sort(key=lambda slot: slot.time)
        return out


@dataclass(slots=True)
class Trace:
    """A full population trace."""

    n_days: int
    users: dict[str, UserTrace] = field(default_factory=dict)

    @property
    def n_users(self) -> int:
        return len(self.users)

    @property
    def horizon(self) -> float:
        """Trace length in seconds."""
        return self.n_days * SECONDS_PER_DAY

    def user(self, user_id: str) -> UserTrace:
        return self.users[user_id]

    def add_session(self, session: Session, platform: str = "wp") -> None:
        trace = self.users.get(session.user_id)
        if trace is None:
            trace = UserTrace(session.user_id, platform)
            self.users[session.user_id] = trace
        trace.add(session)

    def all_sessions(self) -> Iterator[Session]:
        """Iterate all sessions, grouped by user, time-sorted within."""
        for user_id in sorted(self.users):
            yield from self.users[user_id].sessions

    def n_sessions(self) -> int:
        return sum(len(u.sessions) for u in self.users.values())

    def sorted_users(self) -> list[UserTrace]:
        return [self.users[uid] for uid in sorted(self.users)]

    def split_days(self, boundary_day: int) -> tuple["Trace", "Trace"]:
        """Split into (train, test) traces at a day boundary.

        Sessions are assigned by their start day; the test trace keeps
        absolute timestamps so hour indices remain comparable.
        """
        if not 0 < boundary_day < self.n_days:
            raise ValueError("boundary_day must split the trace")
        train = Trace(n_days=boundary_day)
        test = Trace(n_days=self.n_days)
        for user in self.users.values():
            for s in user.sessions:
                target = train if s.day < boundary_day else test
                target.add_session(s, platform=user.platform)
        # Preserve the full user population in both halves (a user with
        # no train sessions still needs a predictor).
        for uid, user in self.users.items():
            for t in (train, test):
                if uid not in t.users:
                    t.users[uid] = UserTrace(uid, user.platform)
        return train, test
