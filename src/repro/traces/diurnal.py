"""Diurnal activity profiles.

Phone use is strongly time-of-day dependent — a morning-commute bump, a
lunch bump, and a long evening peak — and this rhythm is what makes
ad-slot counts predictable day over day (the property the paper's client
models exploit). A profile is a non-negative intensity over the 24-hour
clock built as a mixture of wrapped Gaussian bumps plus a floor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

#: Canonical dayparts: (centre hour, spread hours).
DAYPARTS: tuple[tuple[float, float], ...] = (
    (8.0, 1.5),    # morning commute
    (12.5, 1.2),   # lunch
    (17.5, 1.8),   # evening commute
    (21.0, 2.2),   # evening couch
)

HOURS_PER_DAY = 24


def _wrapped_gaussian(hour: np.ndarray | float, mu: float, sigma: float) -> np.ndarray | float:
    """Gaussian bump on the 24-hour circle (three-image approximation)."""
    total = 0.0
    for shift in (-HOURS_PER_DAY, 0.0, HOURS_PER_DAY):
        total = total + np.exp(-0.5 * ((hour - mu + shift) / sigma) ** 2)
    return total


@dataclass(frozen=True, slots=True)
class DiurnalProfile:
    """A user's time-of-day activity intensity.

    Attributes
    ----------
    weights:
        Mixture weight per daypart in :data:`DAYPARTS`.
    floor:
        Constant background intensity (late-night stragglers).
    phase:
        Per-user clock shift in hours (early birds vs night owls).
    """

    weights: tuple[float, ...]
    floor: float = 0.05
    phase: float = 0.0

    def __post_init__(self) -> None:
        if len(self.weights) != len(DAYPARTS):
            raise ValueError(
                f"expected {len(DAYPARTS)} weights, got {len(self.weights)}")
        if any(w < 0 for w in self.weights) or self.floor < 0:
            raise ValueError("weights and floor must be non-negative")
        if sum(self.weights) + self.floor <= 0:
            raise ValueError("profile must have positive total intensity")

    def intensity(self, hour: float) -> float:
        """Unnormalised intensity at fractional ``hour`` of day."""
        h = (hour - self.phase) % HOURS_PER_DAY
        total = self.floor
        for w, (mu, sigma) in zip(self.weights, DAYPARTS):
            total += w * float(_wrapped_gaussian(h, mu, sigma))
        return total

    def hourly_pmf(self) -> np.ndarray:
        """Probability of a session starting in each of the 24 hours.

        Integrates the intensity at 10-minute resolution within each
        hour, then normalises.
        """
        grid = np.arange(0, HOURS_PER_DAY, 1 / 6) + 1 / 12
        h = (grid - self.phase) % HOURS_PER_DAY
        vals = np.full_like(h, self.floor, dtype=float)
        for w, (mu, sigma) in zip(self.weights, DAYPARTS):
            vals = vals + w * _wrapped_gaussian(h, mu, sigma)
        hourly = vals.reshape(HOURS_PER_DAY, 6).sum(axis=1)
        return hourly / hourly.sum()

    def sample_hour(self, rng: np.random.Generator) -> float:
        """Draw a fractional session-start hour from the profile."""
        pmf = self.hourly_pmf()
        hour = int(rng.choice(HOURS_PER_DAY, p=pmf))
        return hour + float(rng.uniform(0.0, 1.0))


def random_profile(rng: np.random.Generator) -> DiurnalProfile:
    """Sample a heterogeneous per-user profile.

    Dirichlet daypart weights give each user a distinct rhythm; a small
    phase jitter desynchronises users so population load is smooth.
    """
    weights = tuple(float(w) for w in rng.dirichlet([2.0, 1.5, 2.0, 3.0]))
    floor = float(rng.uniform(0.02, 0.10))
    phase = float(rng.normal(0.0, 1.0))
    return DiurnalProfile(weights=weights, floor=floor, phase=phase)


def population_hourly_profile(profiles: list[DiurnalProfile]) -> np.ndarray:
    """Average hourly PMF across a population (trace characterization)."""
    if not profiles:
        raise ValueError("need at least one profile")
    acc = np.zeros(HOURS_PER_DAY)
    for p in profiles:
        acc += p.hourly_pmf()
    return acc / len(profiles)


def autocorrelation_lag_one_day(hourly_counts: np.ndarray) -> float:
    """Day-over-day Pearson correlation of an hourly count series.

    ``hourly_counts`` is a 1-D array of per-hour counts spanning whole
    days. Returns ``nan`` when either half is constant.
    """
    x = np.asarray(hourly_counts, dtype=float)
    if x.size < 2 * HOURS_PER_DAY:
        raise ValueError("need at least two days of hourly counts")
    a, b = x[:-HOURS_PER_DAY], x[HOURS_PER_DAY:]
    if a.std() == 0 or b.std() == 0:
        return math.nan
    return float(np.corrcoef(a, b)[0, 1])
