"""Trace-generator calibration.

The synthetic traces stand in for the paper's proprietary ones, so the
generator must be *steerable*: given target statistics (median slot
volume, day-over-day self-similarity), find population parameters that
produce them. A coarse grid search is plenty — the generator responds
smoothly to its two main knobs:

* ``median_sessions_per_day`` sets the volume;
* the day-noise range sets regularity (predictability).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.sim.rng import RngRegistry
from repro.workloads.appstore import TOP15
from repro.workloads.population import PopulationConfig, build_population

from .generator import TraceConfig, TraceGenerator
from .stats import refresh_map, summarize


@dataclass(frozen=True, slots=True)
class CalibrationTarget:
    """The statistics to hit, with acceptable relative tolerance."""

    median_slots_per_user_day: float
    day_over_day_autocorrelation: float
    tolerance: float = 0.2

    def __post_init__(self) -> None:
        if self.median_slots_per_user_day <= 0:
            raise ValueError("median_slots_per_user_day must be positive")
        if not 0.0 < self.day_over_day_autocorrelation < 1.0:
            raise ValueError("autocorrelation target must be in (0, 1)")
        if self.tolerance <= 0:
            raise ValueError("tolerance must be positive")


@dataclass(frozen=True, slots=True)
class CalibrationResult:
    """Best parameters found and the statistics they produced."""

    config: PopulationConfig
    measured_median: float
    measured_autocorrelation: float
    error: float

    def within(self, target: CalibrationTarget) -> bool:
        med_err = abs(self.measured_median
                      - target.median_slots_per_user_day
                      ) / target.median_slots_per_user_day
        ac_err = abs(self.measured_autocorrelation
                     - target.day_over_day_autocorrelation)
        return med_err <= target.tolerance and ac_err <= target.tolerance


def _measure(config: PopulationConfig, n_days: int, seed: int
             ) -> tuple[float, float]:
    registry = RngRegistry(seed)
    population = build_population(config, registry.stream("population"))
    trace = TraceGenerator(TOP15, TraceConfig(n_days=n_days),
                           registry.stream("trace")).generate(population)
    summary = summarize(trace, refresh_map(TOP15))
    return (summary.slots_per_user_day_median,
            summary.day_over_day_autocorrelation)


def calibrate(target: CalibrationTarget,
              n_users: int = 80, n_days: int = 6, seed: int = 7,
              session_grid: tuple[float, ...] = (4.0, 6.0, 9.0, 13.0, 18.0),
              noise_grid: tuple[float, ...] = (0.15, 0.35, 0.6, 0.9),
              ) -> CalibrationResult:
    """Grid-search population parameters toward ``target``.

    Runs ``len(session_grid) × len(noise_grid)`` small generations;
    returns the best-scoring parameters (normalised L2 error).
    """
    best: CalibrationResult | None = None
    for sessions in session_grid:
        for noise_high in noise_grid:
            candidate = PopulationConfig(
                n_users=n_users,
                median_sessions_per_day=sessions,
                day_noise_low=noise_high / 3.0,
                day_noise_high=noise_high,
            )
            median, autocorr = _measure(candidate, n_days, seed)
            err = (((median - target.median_slots_per_user_day)
                    / target.median_slots_per_user_day) ** 2
                   + (autocorr - target.day_over_day_autocorrelation) ** 2
                   ) ** 0.5
            result = CalibrationResult(
                config=replace(candidate, n_users=n_users),
                measured_median=median,
                measured_autocorrelation=autocorr,
                error=err,
            )
            if best is None or result.error < best.error:
                best = result
    assert best is not None
    return best
