"""The status-quo baseline: real-time per-slot ad serving.

Every ad rotation runs an RTB auction and downloads the winning creative
on the spot — maximal revenue and freshness, maximal radio wakeups. This
is the system the paper measures to get "65% of communication energy"
and the denominator of every savings number.
"""

from __future__ import annotations

from typing import Sequence

from repro.client.device import Device
from repro.client.timeline import (KIND_APP, KIND_APP_STREAM, KIND_SLOT,
                                    KIND_SLOT_START, ClientTimeline)
from repro.exchange.marketplace import Exchange
from repro.faults.injector import FaultInjector
from repro.metrics.energy import aggregate_devices
from repro.metrics.outcomes import RealtimeOutcome
from repro.obs.live import shard_heartbeat
from repro.obs.runtime import current_obs
from repro.radio.profiles import RadioProfile
from repro.traces.schema import SECONDS_PER_DAY
from repro.workloads.appstore import AppProfile


def run_realtime(timelines: dict[str, ClientTimeline],
                 apps: Sequence[AppProfile],
                 profile: RadioProfile | dict[str, RadioProfile],
                 exchange: Exchange, start: float, end: float,
                 injector: FaultInjector | None = None,
                 device_cls: type = Device) -> RealtimeOutcome:
    """Replay ``[start, end)`` of every timeline under real-time serving.

    ``profile`` is one radio profile for everyone, or a per-user map
    (mixed 3G/LTE/WiFi populations). ``injector`` (optional) subjects
    every per-slot fetch to fault injection: a blocked attempt is an
    unfilled slot that still charged the radio for the failed request —
    real-time serving has no cache to fall back on. ``device_cls``
    selects the radio accountant (the batched backend passes
    :class:`repro.sim.batched.LogDevice`).
    """
    if end <= start:
        raise ValueError("empty simulation window")
    apps = list(apps)
    obs = current_obs()
    impressions_counter = obs.metrics.counter("realtime.impressions")
    unfilled_counter = obs.metrics.counter("realtime.unfilled_slots")
    wakeups_counter = obs.metrics.counter("realtime.radio.wakeups")
    # Shared throughput totals (see repro.obs.resources): deterministic
    # numerators for users/sec and events/sec, identical on the event
    # and batched backends because this loop is the backend itself.
    obs.metrics.counter("throughput.users_total").inc(len(timelines))
    events_counter = obs.metrics.counter("throughput.events_total")
    events_done = 0
    impressions = 0
    unfilled = 0
    devices: list[Device] = []
    n_users = len(timelines)
    for index, uid in enumerate(sorted(timelines)):
        timeline = timelines[uid]
        user_profile = (profile[uid] if isinstance(profile, dict)
                        else profile)
        device = device_cls(uid, user_profile)
        devices.append(device)
        faults = injector.for_user(uid) if injector is not None else None
        times, kinds, payload = timeline.window(start, end)
        events_counter.inc(int(times.size))
        events_done += int(times.size)
        if index % 32 == 31 or index == n_users - 1:
            # Per-shard progress heartbeat via the shared helper: the
            # sim-time trace instant (stamped at the window end, so
            # the trace stays deterministic at any parallelism and on
            # both backends) plus the live-plane beat when active.
            shard_heartbeat(obs, end, component="realtime",
                            done=index + 1, total=n_users,
                            users=n_users, events_done=events_done)
        for t, kind, p in zip(times, kinds, payload):
            if faults is not None and faults.dark(float(t)):
                break  # device churned away: no further events
            if kind == KIND_SLOT or kind == KIND_SLOT_START:
                if faults is not None and not faults.attempt(float(t)):
                    unfilled += 1
                    nbytes = faults.plan.failed_attempt_bytes
                    if nbytes:
                        device.ad_fetch(float(t), nbytes)
                    continue
                app = apps[int(p)]
                sale = exchange.sell_now(float(t), category=app.category,
                                         platform=timeline.platform)
                if sale is None:
                    unfilled += 1
                    continue
                device.ad_fetch(float(t), sale.creative_bytes)
                impressions += 1
            elif kind == KIND_APP:
                device.app_request(float(t), int(p))
            elif kind == KIND_APP_STREAM:
                device.app_streaming(float(t), float(p))
        device.finish(end)
        wakeups_counter.inc(device.wakeups)
    impressions_counter.inc(impressions)
    unfilled_counter.inc(unfilled)
    days = (end - start) / SECONDS_PER_DAY
    return RealtimeOutcome(
        energy=aggregate_devices(devices, days),
        billed_revenue=exchange.billed_revenue,
        impressions=impressions,
        unfilled_slots=unfilled,
    )
