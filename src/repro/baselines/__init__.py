"""S10 — baseline serving disciplines and named system presets."""

from .presets import (
    PRESET_NAMES,
    apply_preset,
    naive_prefetch,
    oracle,
    overbooking,
)
from .realtime import run_realtime

__all__ = [
    "run_realtime",
    "PRESET_NAMES",
    "apply_preset",
    "naive_prefetch",
    "overbooking",
    "oracle",
]
