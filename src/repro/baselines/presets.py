"""Named system configurations compared throughout the evaluation.

Each preset transforms a base :class:`ExperimentConfig` into one of the
serving disciplines the paper compares:

* ``realtime`` — the status quo (no prefetching at all).
* ``naive-prefetch`` — prefetch on predictions, no overbooking and no
  rescue: whatever was mispredicted is simply lost.
* ``overbooking`` — the paper's full system (staggered dispatch +
  demand-driven rescue).
* ``oracle`` — perfect predictions, no replication needed: the upper
  bound on what any client model could achieve.
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig

PRESET_NAMES = ("realtime", "naive-prefetch", "overbooking", "oracle")


def naive_prefetch(base: ExperimentConfig) -> ExperimentConfig:
    """Prefetching without the paper's machinery (single copy, no rescue)."""
    return base.variant(policy="no-replication", max_replicas=1,
                        rescue_batch=0)


def overbooking(base: ExperimentConfig) -> ExperimentConfig:
    """The full system (the base config already encodes its defaults)."""
    return base.variant(policy="staggered")


def oracle(base: ExperimentConfig) -> ExperimentConfig:
    """Error-free client models; replication becomes unnecessary."""
    return base.variant(predictor="oracle", policy="no-replication",
                        max_replicas=1, sell_factor=1.0)


def apply_preset(name: str, base: ExperimentConfig) -> ExperimentConfig:
    """Resolve a preset by name (``realtime`` returns the base config —
    the caller runs the realtime engine for it)."""
    presets = {
        "realtime": lambda b: b,
        "naive-prefetch": naive_prefetch,
        "overbooking": overbooking,
        "oracle": oracle,
    }
    try:
        return presets[name](base)
    except KeyError:
        raise KeyError(
            f"unknown preset {name!r}; available: {sorted(presets)}") from None
