"""Revenue settlement.

Money flows in the prefetch world:

* a sale's first on-time display **bills** the advertiser at the
  auction's clearing price;
* a sale that misses its deadline is **voided** — the exchange earns
  nothing for inventory it already sold (and eats the SLA penalty);
* **duplicate** displays (overbooking's cost) fill a client slot with an
  ad nobody pays for — a slot that, served in real time, would have
  earned roughly the mean clearing price;
* slots served by the **real-time fallback** (cache empty) bill
  normally.

Revenue loss is reported two ways: *internal* (voided + duplicate
opportunity cost over potential revenue) and, in experiment E9,
*cross-system* (1 − prefetch billed / real-time billed on the identical
trace).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exchange.marketplace import Exchange

from .sla import SaleOutcome


@dataclass(frozen=True, slots=True)
class RevenueReport:
    """Money outcome of a prefetch run."""

    billed_prefetch: float        # on-time first displays
    billed_fallback: float        # real-time fallback sales
    voided: float                 # sold but violated
    duplicate_impressions: int
    duplicate_opportunity_cost: float
    paid_impressions: int
    fallback_impressions: int
    unfilled_slots: int           # slots with neither cache nor fallback

    @property
    def total_billed(self) -> float:
        return self.billed_prefetch + self.billed_fallback

    @property
    def potential(self) -> float:
        """Revenue had every sold ad been shown exactly once on time."""
        return (self.billed_prefetch + self.voided
                + self.duplicate_opportunity_cost + self.billed_fallback)

    @property
    def internal_loss_rate(self) -> float:
        """(voided + duplicate opportunity cost) / potential revenue."""
        pot = self.potential
        if pot <= 0:
            return 0.0
        return (self.voided + self.duplicate_opportunity_cost) / pot

    def loss_vs(self, baseline_billed: float) -> float:
        """Revenue loss relative to a real-time baseline's take."""
        if baseline_billed <= 0:
            return 0.0
        return 1.0 - self.total_billed / baseline_billed


def settle_revenue(outcomes: list[SaleOutcome], exchange: Exchange,
                   billed_fallback: float, fallback_impressions: int,
                   unfilled_slots: int) -> RevenueReport:
    """Settle every sale with the exchange and build the report.

    Duplicate opportunity cost uses the exchange's mean clearing price —
    the expected earnings of the slot the duplicate occupied.
    """
    mean_price = exchange.mean_clearing_price()
    billed = 0.0
    voided = 0.0
    duplicates = 0
    paid = 0
    for outcome in outcomes:
        if outcome.on_time:
            exchange.settle_shown(outcome.sale)
            billed += outcome.sale.price
            paid += 1
        else:
            exchange.settle_violated(outcome.sale)
            voided += outcome.sale.price
        duplicates += outcome.duplicates
    return RevenueReport(
        billed_prefetch=billed,
        billed_fallback=billed_fallback,
        voided=voided,
        duplicate_impressions=duplicates,
        duplicate_opportunity_cost=duplicates * mean_price,
        paid_impressions=paid,
        fallback_impressions=fallback_impressions,
        unfilled_slots=unfilled_slots,
    )
