"""S9 — the paper's contribution: show curves, overbooked dispatch,
SLA and revenue settlement."""

from .analysis import (
    OverbookingOperatingPoint,
    expected_duplicates,
    marginal_value,
    operating_point,
    replicas_for_epsilon,
    tradeoff_curve,
    violation_probability,
)
from .overbooking import (
    MIN_USEFUL_PROBABILITY,
    ClientForecast,
    DispatchPlan,
    DispatchPolicy,
    GreedyBackfillPolicy,
    NoReplicationPolicy,
    RandomKPolicy,
    StaggeredPolicy,
    make_policy,
    policy_names,
)
from .revenue import RevenueReport, settle_revenue
from .showcurve import (
    BUCKET_EDGES,
    MAX_DEPTH,
    DispatchCurve,
    ScaledShowCurve,
    ShowCurveEstimator,
    WindowedShowCurveEstimator,
    poisson_tail,
)
from .sla import DisplayLog, SaleOutcome, SlaReport, settle_sla

__all__ = [
    "ShowCurveEstimator",
    "WindowedShowCurveEstimator",
    "DispatchCurve",
    "ScaledShowCurve",
    "poisson_tail",
    "BUCKET_EDGES",
    "MAX_DEPTH",
    "ClientForecast",
    "DispatchPlan",
    "DispatchPolicy",
    "StaggeredPolicy",
    "GreedyBackfillPolicy",
    "RandomKPolicy",
    "NoReplicationPolicy",
    "make_policy",
    "policy_names",
    "MIN_USEFUL_PROBABILITY",
    "DisplayLog",
    "SaleOutcome",
    "SlaReport",
    "settle_sla",
    "RevenueReport",
    "settle_revenue",
    "replicas_for_epsilon",
    "violation_probability",
    "expected_duplicates",
    "marginal_value",
    "operating_point",
    "OverbookingOperatingPoint",
    "tradeoff_curve",
]
