"""Closed-form overbooking analysis.

The dispatch planner works numerically over empirical show curves; this
module provides the matching closed-form results for the idealised
i.i.d. case. They serve three purposes:

* sanity cross-checks for the planner (the property tests compare its
  output against these bounds),
* quick capacity planning without a simulation (how many replicas does
  a target epsilon cost at a given per-replica show probability?), and
* the analytical statements of the paper's trade-off: replication buys
  SLA compliance at a duplicate-impression price.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def replicas_for_epsilon(p: float, epsilon: float,
                         max_replicas: int | None = None) -> int:
    """Minimum i.i.d. replicas with show probability ``p`` so that
    ``P(no replica shows) = (1-p)^k <= epsilon``.

    Returns ``max_replicas`` (if given) when the target is unreachable.

    >>> replicas_for_epsilon(0.8, 0.01)
    3
    """
    if not 0.0 < epsilon < 1.0:
        raise ValueError("epsilon must be in (0, 1)")
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be a probability")
    if p == 1.0:
        return 1
    if p == 0.0:
        if max_replicas is None:
            raise ValueError("epsilon unreachable with p=0 and no cap")
        return max_replicas
    k = math.ceil(math.log(epsilon) / math.log(1.0 - p))
    k = max(k, 1)
    if max_replicas is not None:
        k = min(k, max_replicas)
    return k


def violation_probability(ps: list[float]) -> float:
    """``P(no replica shows)`` for independent replicas ``ps``."""
    out = 1.0
    for p in ps:
        if not 0.0 <= p <= 1.0:
            raise ValueError("probabilities must be in [0, 1]")
        out *= (1.0 - p)
    return out


def expected_duplicates(ps: list[float]) -> float:
    """Expected duplicate displays for independent replicas ``ps``.

    ``E[dups] = E[#shown] - P(>=1 shown) = sum(p) - (1 - prod(1-p))``.

    >>> round(expected_duplicates([0.9, 0.9]), 3)
    0.81
    """
    shown = sum(ps)
    return shown - (1.0 - violation_probability(ps))


def marginal_value(p: float) -> float:
    """Log-survival reduction per unit duplicate risk: ``-ln(1-p) / p``.

    Increasing in ``p``: high-certainty positions are always the most
    efficient insurance — the analytical reason the planner is
    best-first.
    """
    if not 0.0 < p < 1.0:
        raise ValueError("p must be in (0, 1)")
    return -math.log(1.0 - p) / p


@dataclass(frozen=True, slots=True)
class OverbookingOperatingPoint:
    """Closed-form operating point for homogeneous replicas."""

    p: float
    epsilon: float
    k: int
    achieved_violation: float
    expected_duplicates: float

    @property
    def duplicate_rate(self) -> float:
        """Duplicates per sold impression."""
        return self.expected_duplicates


def operating_point(p: float, epsilon: float,
                    max_replicas: int = 16) -> OverbookingOperatingPoint:
    """Solve the homogeneous overbooking problem.

    >>> pt = operating_point(0.8, 0.01)
    >>> pt.k, round(pt.achieved_violation, 4)
    (3, 0.008)
    """
    k = replicas_for_epsilon(p, epsilon, max_replicas)
    ps = [p] * k
    return OverbookingOperatingPoint(
        p=p, epsilon=epsilon, k=k,
        achieved_violation=violation_probability(ps),
        expected_duplicates=expected_duplicates(ps),
    )


def tradeoff_curve(p: float, ks: range | list[int]
                   ) -> list[tuple[int, float, float]]:
    """``(k, violation, duplicates)`` across replica counts.

    The analytical version of experiments E5/E6's twin figures.
    """
    out = []
    for k in ks:
        if k < 1:
            raise ValueError("k must be >= 1")
        ps = [p] * k
        out.append((k, violation_probability(ps), expected_duplicates(ps)))
    return out
