"""The overbooking model: replica sets and queue positions for sold ads.

A sold ad must be displayed before its deadline (SLA) but should be
displayed only once (revenue). Clients under-deliver unpredictably, so
the server *overbooks*: it places copies of the ad on several clients
such that

``P(no replica is displayed before the deadline) = prod_i (1 - p_i) <= epsilon``

where ``p_i`` is the deadline-window show probability of replica *i*'s
queue position. The subtlety is the cost side: a replica whose position
is likely reached *quickly* (before sync-borne invalidation can remove
it) risks a duplicate — an unpaid impression. Positions deep in a busy
client's queue are the sweet spot: almost surely reached within a
multi-epoch deadline, rarely reached before the next sync.

The planner therefore works in two passes:

1. **Primaries** (price order): every sale takes the best available
   position by deadline-window probability — these are *supposed* to be
   displayed, so early display is not a cost.
2. **Backups** (neediest first): sales whose no-show probability still
   exceeds epsilon add replicas chosen by ``p_sla − λ·p_dup`` — maximal
   insurance per unit of duplicate risk.

Policies (ablation E10): ``staggered`` (the full model), ``greedy-
backfill`` (duplicate-blind backups, λ=0), ``random-k`` (fixed-count
random replication), ``no-replication``.
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.exchange.marketplace import Sale

#: Positions with SLA probability below this are useless as replicas.
MIN_USEFUL_PROBABILITY = 1e-4


def _sla_prob(curve, predicted: float, j: int) -> float:
    """Deadline-window show probability (duck-typed curve access)."""
    fn = getattr(curve, "sla", None)
    if fn is not None:
        return fn(predicted, j)
    return curve.at_least(predicted, j)


def _dup_prob(curve, predicted: float, j: int) -> float:
    """Pre-invalidation show probability (duck-typed curve access)."""
    fn = getattr(curve, "epoch", None)
    if fn is not None:
        return fn(predicted, j)
    return curve.at_least(predicted, j)


@dataclass(frozen=True, slots=True)
class Assignment:
    """One replica placed on one client's queue.

    ``active_from`` implements standby backups: the client must not
    display the ad before that time — the grace period in which the
    primary replica gets its chance and a sync can invalidate this copy
    without any duplicate risk.
    """

    sale: Sale
    active_from: float = 0.0

    @property
    def sale_id(self) -> int:
        return self.sale.sale_id


@dataclass(frozen=True, slots=True)
class ClientForecast:
    """Server-side snapshot of one client entering an epoch.

    Attributes
    ----------
    predicted:
        Predicted slot count for the coming epoch.
    backlog:
        Ads already queued (unshown, unexpired) from earlier epochs;
        new assignments sit behind them.
    capacity:
        Maximum number of new ads the client accepts this epoch.
    """

    client_id: str
    predicted: float
    backlog: int = 0
    capacity: int = 0

    def __post_init__(self) -> None:
        if self.predicted < 0:
            raise ValueError("predicted must be non-negative")
        if self.backlog < 0 or self.capacity < 0:
            raise ValueError("backlog/capacity must be non-negative")


@dataclass(slots=True)
class DispatchPlan:
    """Output of a policy: who gets which ad, in what queue order."""

    queues: dict[str, list[Assignment]] = field(default_factory=dict)
    replicas: dict[int, list[str]] = field(default_factory=dict)
    expected_violation: dict[int, float] = field(default_factory=dict)
    expected_duplicates: float = 0.0
    unplaced: list[Sale] = field(default_factory=list)

    def assignments(self) -> int:
        """Total ad copies dispatched."""
        return sum(len(q) for q in self.queues.values())

    def replication_factor(self) -> float:
        """Mean copies per placed sale (1.0 = no overbooking)."""
        if not self.replicas:
            return 0.0
        return self.assignments() / len(self.replicas)

    def replication_histogram(self) -> dict[int, int]:
        """#sales by replica count."""
        hist: dict[int, int] = {}
        for clients in self.replicas.values():
            hist[len(clients)] = hist.get(len(clients), 0) + 1
        return hist

    def mean_expected_violation(self) -> float:
        if not self.expected_violation:
            return 0.0
        return float(np.mean(list(self.expected_violation.values())))


@dataclass(slots=True)
class _Unit:
    """A consumed placement: client + probabilities at that position."""

    client_id: str
    p_sla: float
    p_dup: float


class _UnitPool:
    """Best-first pool of (client, next queue position) units.

    Each client exposes one unit at a time — its next free queue slot;
    consuming it reveals the next (deeper, lower-probability) one. The
    heap key is pluggable so the two planner passes can rank units
    differently.
    """

    def __init__(self, forecasts: list[ClientForecast], curve) -> None:
        self._curve = curve
        self._forecast = {f.client_id: f for f in forecasts}
        self._next_pos: dict[str, int] = {}
        self._left: dict[str, int] = {}
        self._key: Callable[[float, float], float] = lambda p_sla, p_dup: p_sla
        self._heap: list[tuple[float, str, int]] = []
        for f in forecasts:
            if f.capacity <= 0:
                continue
            self._next_pos[f.client_id] = 1
            self._left[f.client_id] = f.capacity
            self._push(f.client_id)

    def _probs(self, client_id: str) -> tuple[float, float]:
        f = self._forecast[client_id]
        pos = f.backlog + self._next_pos[client_id]
        return (_sla_prob(self._curve, f.predicted, pos),
                _dup_prob(self._curve, f.predicted, pos))

    def _push(self, client_id: str) -> None:
        p_sla, p_dup = self._probs(client_id)
        heapq.heappush(self._heap, (-self._key(p_sla, p_dup), client_id,
                                    self._next_pos[client_id]))

    def retarget(self, key: Callable[[float, float], float]) -> None:
        """Re-rank all current heads under a new key function."""
        self._key = key
        self._heap = []
        for client_id, left in self._left.items():
            if left > 0:
                self._push(client_id)

    def take_best(self, exclude: set[str]) -> _Unit | None:
        """Consume the best unit owned by a client not in ``exclude``."""
        stash: list[tuple[float, str, int]] = []
        taken: _Unit | None = None
        while self._heap:
            entry = heapq.heappop(self._heap)
            _, client_id, pos = entry
            if pos != self._next_pos.get(client_id):
                continue  # stale entry from before a retarget/consume
            if client_id in exclude:
                stash.append(entry)
                continue
            p_sla, p_dup = self._probs(client_id)
            taken = _Unit(client_id, p_sla, p_dup)
            self._left[client_id] -= 1
            self._next_pos[client_id] += 1
            if self._left[client_id] > 0:
                self._push(client_id)
            break
        for entry in stash:
            heapq.heappush(self._heap, entry)
        return taken


class DispatchPolicy(ABC):
    """Strategy deciding replica sets and positions for a batch of sales."""

    def __init__(self, epsilon: float = 0.01, max_replicas: int = 8) -> None:
        if not 0.0 < epsilon < 1.0:
            raise ValueError("epsilon must be in (0, 1)")
        if max_replicas < 1:
            raise ValueError("max_replicas must be >= 1")
        self.epsilon = epsilon
        self.max_replicas = max_replicas

    @abstractmethod
    def plan(self, sales: list[Sale], forecasts: list[ClientForecast],
             curve, rng: np.random.Generator | None = None,
             standby_until: float = 0.0) -> DispatchPlan:
        """Assign every sale to zero or more (client, position) units.

        ``standby_until`` is the activation time given to backup
        replicas (primaries are always active immediately).
        """

    def _new_plan(self, forecasts: list[ClientForecast]) -> DispatchPlan:
        plan = DispatchPlan()
        for f in forecasts:
            plan.queues[f.client_id] = []
        return plan

    @staticmethod
    def _assign(plan: DispatchPlan, sale: Sale, unit: _Unit,
                active_from: float = 0.0) -> None:
        plan.queues[unit.client_id].append(Assignment(sale, active_from))
        plan.replicas.setdefault(sale.sale_id, []).append(unit.client_id)


class StaggeredPolicy(DispatchPolicy):
    """The paper's model: primaries best-first, duplicate-aware backups.

    ``dup_penalty`` (λ) is the exchange rate between insurance value and
    duplicate risk when ranking backup positions.
    """

    def __init__(self, epsilon: float = 0.01, max_replicas: int = 8,
                 dup_penalty: float = 0.6) -> None:
        super().__init__(epsilon=epsilon, max_replicas=max_replicas)
        if dup_penalty < 0:
            raise ValueError("dup_penalty must be non-negative")
        self.dup_penalty = dup_penalty

    def plan(self, sales: list[Sale], forecasts: list[ClientForecast],
             curve, rng: np.random.Generator | None = None,
             standby_until: float = 0.0) -> DispatchPlan:
        plan = self._new_plan(forecasts)
        pool = _UnitPool(forecasts, curve)
        survival: dict[int, float] = {}
        dup_mass: dict[int, float] = {}
        owners: dict[int, set[str]] = {}
        placed: list[Sale] = []
        # Pass 1 — primaries, most valuable impressions first.
        for sale in sorted(sales, key=lambda s: -s.price):
            unit = pool.take_best(exclude=set())
            if unit is None:
                plan.unplaced.append(sale)
                continue
            self._assign(plan, sale, unit)
            owners[sale.sale_id] = {unit.client_id}
            survival[sale.sale_id] = 1.0 - unit.p_sla
            dup_mass[sale.sale_id] = 0.0  # the primary's display is paid
            placed.append(sale)
        # Pass 2 — backups where epsilon is unmet, neediest first,
        # ranked by insurance-per-duplicate-risk.
        lam = self.dup_penalty
        pool.retarget(lambda p_sla, p_dup: p_sla - lam * p_dup)
        if self.max_replicas > 1:
            needy = sorted(placed, key=lambda s: -survival[s.sale_id])
            for sale in needy:
                sid = sale.sale_id
                while (survival[sid] > self.epsilon
                       and len(owners[sid]) < self.max_replicas):
                    unit = pool.take_best(exclude=owners[sid])
                    if unit is None:
                        break
                    if unit.p_sla < MIN_USEFUL_PROBABILITY:
                        break
                    self._assign(plan, sale, unit, active_from=standby_until)
                    owners[sid].add(unit.client_id)
                    survival[sid] *= (1.0 - unit.p_sla)
                    dup_mass[sid] += unit.p_dup
        plan.expected_violation = survival
        plan.expected_duplicates = float(sum(dup_mass.values()))
        return plan


class GreedyBackfillPolicy(StaggeredPolicy):
    """Duplicate-blind variant: backups ranked purely by SLA probability.

    Identical structure to :class:`StaggeredPolicy` with λ=0 — the E10
    ablation isolating what duplicate-awareness buys.
    """

    def __init__(self, epsilon: float = 0.01, max_replicas: int = 8) -> None:
        super().__init__(epsilon=epsilon, max_replicas=max_replicas,
                         dup_penalty=0.0)


class RandomKPolicy(DispatchPolicy):
    """Fixed-``k`` replication on uniformly random capable clients.

    The strawman the overbooking model is compared against: it ignores
    both show probabilities and staggering, so it wastes duplicates on
    active clients and still misses deadlines on idle ones.
    """

    def __init__(self, k: int = 2, epsilon: float = 0.01,
                 max_replicas: int = 8) -> None:
        super().__init__(epsilon=epsilon, max_replicas=max_replicas)
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = min(k, max_replicas)

    def plan(self, sales: list[Sale], forecasts: list[ClientForecast],
             curve, rng: np.random.Generator | None = None,
             standby_until: float = 0.0) -> DispatchPlan:
        if rng is None:
            raise ValueError("RandomKPolicy requires an rng")
        plan = self._new_plan(forecasts)
        capacity = {f.client_id: f.capacity for f in forecasts}
        state = {f.client_id: f for f in forecasts}
        next_pos = {f.client_id: 1 for f in forecasts}
        dup_total = 0.0
        for sale in sales:
            capable = [cid for cid, cap in capacity.items() if cap > 0]
            if not capable:
                plan.unplaced.append(sale)
                continue
            k = min(self.k, len(capable))
            chosen = rng.choice(len(capable), size=k, replace=False)
            survival = 1.0
            for rank, idx in enumerate(chosen):
                client_id = capable[int(idx)]
                f = state[client_id]
                pos = f.backlog + next_pos[client_id]
                p_sla = _sla_prob(curve, f.predicted, pos)
                unit = _Unit(client_id, p_sla,
                             _dup_prob(curve, f.predicted, pos))
                self._assign(plan, sale, unit,
                             active_from=standby_until if rank > 0 else 0.0)
                capacity[client_id] -= 1
                next_pos[client_id] += 1
                survival *= (1.0 - p_sla)
                if rank > 0:
                    dup_total += unit.p_dup
            plan.expected_violation[sale.sale_id] = survival
        plan.expected_duplicates = dup_total
        return plan


class NoReplicationPolicy(StaggeredPolicy):
    """One copy per sale at the best available position (naive prefetch)."""

    def __init__(self, epsilon: float = 0.01, max_replicas: int = 8) -> None:
        super().__init__(epsilon=epsilon, max_replicas=1)


_POLICIES: dict[str, Callable[..., DispatchPolicy]] = {
    "staggered": StaggeredPolicy,
    "greedy-backfill": GreedyBackfillPolicy,
    "random-k": RandomKPolicy,
    "no-replication": NoReplicationPolicy,
}


def make_policy(name: str, **kwargs) -> DispatchPolicy:
    """Build a dispatch policy by registry name."""
    try:
        factory = _POLICIES[name]
    except KeyError:
        raise KeyError(
            f"unknown policy {name!r}; available: {sorted(_POLICIES)}"
        ) from None
    return factory(**kwargs)


def policy_names() -> list[str]:
    """Registered dispatch-policy names, sorted."""
    return sorted(_POLICIES)
