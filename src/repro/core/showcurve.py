"""Show curves: from unreliable predictions to show probabilities.

The overbooking model needs, for every client, the probability that an
ad parked at queue position *j* will actually be displayed before its
deadline. That is exactly ``P(actual slots >= j | prediction n̂)`` — a
conditional distribution the ad server can estimate from the stream of
``(predicted, actual)`` pairs that client reports produce.

The estimator buckets predictions geometrically (predictions of 5 and 6
behave alike; 1 and 30 do not) and keeps an empirical tail distribution
per bucket. Before a bucket has enough data it falls back to a Poisson
prior centred on the prediction — the natural "prediction is a rate"
assumption.
"""

from __future__ import annotations

import math
from bisect import bisect_right

import numpy as np

#: Prediction bucket edges (bucket b covers [EDGES[b], EDGES[b+1])).
BUCKET_EDGES: tuple[float, ...] = (0.0, 0.5, 1.5, 2.5, 4.5, 8.5, 16.5, 32.5,
                                   64.5, float("inf"))
#: Maximum queue depth the tail distribution resolves.
MAX_DEPTH = 256


def poisson_tail(rate: float, j: int) -> float:
    """``P(X >= j)`` for ``X ~ Poisson(rate)`` — the prior show curve."""
    if j <= 0:
        return 1.0
    if rate <= 0:
        return 0.0
    # P(X >= j) = 1 - sum_{i<j} e^-rate rate^i / i!
    term = math.exp(-rate)
    cdf = term
    for i in range(1, j):
        term *= rate / i
        cdf += term
        if term < 1e-15 and i > rate:
            break
    return max(0.0, min(1.0, 1.0 - cdf))


class ShowCurveEstimator:
    """Online estimator of ``P(actual >= j | predicted)``.

    Parameters
    ----------
    min_samples:
        Empirical estimates are used once a bucket has this many
        observations; below that the Poisson prior applies (blended in
        proportion to the sample count).
    """

    def __init__(self, min_samples: int = 30) -> None:
        if min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        self.min_samples = min_samples
        n_buckets = len(BUCKET_EDGES) - 1
        # tail_counts[b, j] = number of observations in bucket b with
        # actual >= j (j in 0..MAX_DEPTH).
        self._tail_counts = np.zeros((n_buckets, MAX_DEPTH + 1), dtype=np.int64)
        self._totals = np.zeros(n_buckets, dtype=np.int64)

    @staticmethod
    def bucket_of(predicted: float) -> int:
        """Index of the prediction bucket containing ``predicted``."""
        if predicted < 0:
            raise ValueError("predicted must be non-negative")
        return bisect_right(BUCKET_EDGES, predicted) - 1

    def observe(self, predicted: float, actual: int) -> None:
        """Record one epoch outcome for some client."""
        if actual < 0:
            raise ValueError("actual must be non-negative")
        b = self.bucket_of(predicted)
        upto = min(actual, MAX_DEPTH)
        self._tail_counts[b, : upto + 1] += 1
        self._totals[b] += 1

    def samples(self, predicted: float) -> int:
        """Observations available in the bucket of ``predicted``."""
        return int(self._totals[self.bucket_of(predicted)])

    def saturated_bucket(self, predicted: float) -> int | None:
        """Bucket index of ``predicted`` if it is purely empirical.

        A saturated bucket (``total >= min_samples``) answers
        :meth:`at_least` from its tail counts alone — a pure function of
        ``(bucket, depth)`` that callers may memoize between
        observations. Returns ``None`` while the prior still blends in.
        """
        b = self.bucket_of(predicted)
        return b if int(self._totals[b]) >= self.min_samples else None

    def empirical_tail(self, bucket: int, depth: int) -> float:
        """``tail_counts[bucket, depth] / total`` — the saturated answer.

        Exactly the division :meth:`at_least` performs once a bucket is
        saturated (``depth`` already clamped to ``MAX_DEPTH``).
        """
        return float(self._tail_counts[bucket, depth]) / int(
            self._totals[bucket])

    def at_least(self, predicted: float, j: int) -> float:
        """``P(actual >= j | predicted)`` with prior blending.

        Monotone non-increasing in ``j``; returns 1 for ``j <= 0``.
        """
        if j <= 0:
            return 1.0
        prior = poisson_tail(predicted, j)
        b = self.bucket_of(predicted)
        total = int(self._totals[b])
        if total == 0:
            return prior
        jj = min(j, MAX_DEPTH)
        empirical = float(self._tail_counts[b, jj]) / total
        if total >= self.min_samples:
            return empirical
        w = total / self.min_samples
        return w * empirical + (1.0 - w) * prior

    def expected_shows(self, predicted: float, depth: int) -> float:
        """Expected number of displays among the first ``depth`` positions."""
        return sum(self.at_least(predicted, j) for j in range(1, depth + 1))

    def curve(self, predicted: float, depth: int) -> list[float]:
        """``[P(actual >= 1), ..., P(actual >= depth)]`` for plots/tests."""
        return [self.at_least(predicted, j) for j in range(1, depth + 1)]


class ScaledShowCurve:
    """View of a show curve for a deadline window != the epoch length.

    Predictions are per-epoch; a sale with deadline ``D`` can be shown
    during ``D / T`` epochs' worth of slots. The scaled view multiplies
    the prediction by that ratio before querying the base estimator.

    .. note:: This is a crude approximation kept for comparison; the
       production path uses :class:`WindowedShowCurveEstimator`, which
       estimates multi-epoch windows directly (hourly phone use is far
       too bursty for prediction scaling to capture the window effect).
    """

    def __init__(self, base: ShowCurveEstimator, window_ratio: float) -> None:
        if window_ratio <= 0:
            raise ValueError("window_ratio must be positive")
        self.base = base
        self.window_ratio = window_ratio

    def at_least(self, predicted: float, j: int) -> float:
        return self.base.at_least(predicted * self.window_ratio, j)


class WindowedShowCurveEstimator:
    """Show curves for every window length 1..``max_window`` epochs.

    The overbooking planner needs two different probabilities for a
    queue position:

    * ``P(actual slots within the deadline window >= j)`` — drives the
      SLA guarantee (window of ``D/T`` epochs);
    * ``P(actual slots within the duplicate-exposure window >= j)`` —
      drives the duplicate-impression risk (an already-shown replica
      survives on other clients until their next syncs propagate the
      invalidation, roughly two epochs).

    Observations arrive one epoch at a time per client; a prediction
    made at epoch *e* is matched with the rolling sums of actuals over
    ``e .. e+m-1`` for every ``m``, so each window length gets its own
    honestly-conditioned estimator.
    """

    def __init__(self, max_window: int, min_samples: int = 30) -> None:
        if max_window < 1:
            raise ValueError("max_window must be >= 1")
        self.max_window = max_window
        self._curves = {m: ShowCurveEstimator(min_samples)
                        for m in range(1, max_window + 1)}
        # Per-client open observations: (prediction, accumulated, n_epochs).
        self._open: dict[str, list[list[float]]] = {}

    def observe(self, client_id: str, predicted: float, actual: int) -> None:
        """Ingest one client-epoch: close/extend rolling windows."""
        if actual < 0:
            raise ValueError("actual must be non-negative")
        entries = self._open.setdefault(client_id, [])
        entries.append([float(predicted), 0.0, 0])
        for entry in entries:
            entry[1] += actual
            entry[2] += 1
            self._curves[entry[2]].observe(entry[0], int(entry[1]))
        if entries and entries[0][2] >= self.max_window:
            del entries[0]

    def at_least(self, predicted: float, j: int, window: int) -> float:
        """``P(actual over `window` epochs >= j | predicted)``."""
        if not 1 <= window <= self.max_window:
            raise ValueError(
                f"window must be in 1..{self.max_window}, got {window}")
        return self._curves[window].at_least(predicted, j)

    def curve_for(self, window: int) -> ShowCurveEstimator:
        return self._curves[window]


class DispatchCurve:
    """The two position-probability views the planner consumes.

    Parameters
    ----------
    windowed:
        The underlying multi-window estimator.
    sla_window:
        Deadline length in epochs (``D/T``).
    dup_window:
        Duplicate-exposure length in epochs: a replica of an ad shown
        elsewhere survives until the invalidation propagates through two
        sync hops, so risk accrues over ~2 epochs (capped by the SLA
        window — after the deadline clients drop the ad anyway).
    """

    def __init__(self, windowed: WindowedShowCurveEstimator,
                 sla_window: int, dup_window: int | None = None) -> None:
        if sla_window < 1 or sla_window > windowed.max_window:
            raise ValueError("sla_window out of range")
        self.windowed = windowed
        self.sla_window = sla_window
        self.dup_window = min(dup_window if dup_window is not None else 2,
                              sla_window)

    def sla(self, predicted: float, j: int) -> float:
        """P(position ``j`` is displayed before the deadline)."""
        return self.windowed.at_least(predicted, j, self.sla_window)

    def epoch(self, predicted: float, j: int) -> float:
        """P(position ``j`` is displayed before invalidation can land)."""
        return self.windowed.at_least(predicted, j, self.dup_window)

    # Protocol compatibility: single-probability consumers get the SLA view.
    def at_least(self, predicted: float, j: int) -> float:
        return self.sla(predicted, j)

