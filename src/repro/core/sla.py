"""SLA tracking: did every sold ad make its deadline?

Ground truth lives in a :class:`DisplayLog` — every rendering of every
prefetched ad, with timestamps. Settlement classifies each sale:

* **on time** — first display at or before the deadline (billed);
* **violated** — never displayed in time (the SLA violation the paper
  bounds with epsilon);
* duplicate displays beyond the first are counted for the revenue side.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exchange.marketplace import Sale


@dataclass(slots=True)
class DisplayLog:
    """Append-only record of prefetched-ad renderings."""

    entries: list[tuple[int, str, float]] = field(default_factory=list)

    def record(self, sale_id: int, client_id: str, time: float) -> None:
        self.entries.append((sale_id, client_id, time))

    def __len__(self) -> int:
        return len(self.entries)

    def by_sale(self) -> dict[int, list[tuple[float, str]]]:
        """sale_id -> time-sorted list of (time, client) displays."""
        out: dict[int, list[tuple[float, str]]] = {}
        for sale_id, client_id, time in self.entries:
            out.setdefault(sale_id, []).append((time, client_id))
        for displays in out.values():
            displays.sort()
        return out


@dataclass(frozen=True, slots=True)
class SaleOutcome:
    """Settlement classification of one sale."""

    sale: Sale
    first_shown_at: float | None
    n_displays: int

    @property
    def on_time(self) -> bool:
        return (self.first_shown_at is not None
                and self.first_shown_at <= self.sale.deadline)

    @property
    def violated(self) -> bool:
        return not self.on_time

    @property
    def duplicates(self) -> int:
        """Displays beyond the first (each one an unpaid impression)."""
        return max(self.n_displays - 1, 0)

    @property
    def latency(self) -> float | None:
        """Seconds from sale to first display (None if never shown)."""
        if self.first_shown_at is None:
            return None
        return self.first_shown_at - self.sale.sold_at


@dataclass(frozen=True, slots=True)
class SlaReport:
    """Aggregate SLA statistics over a run (rows of E5/E7/E9)."""

    n_sales: int
    n_on_time: int
    n_violated: int
    n_duplicates: int
    mean_latency_s: float

    @property
    def violation_rate(self) -> float:
        if self.n_sales == 0:
            return 0.0
        return self.n_violated / self.n_sales


def settle_sla(sales: list[Sale], log: DisplayLog
               ) -> tuple[list[SaleOutcome], SlaReport]:
    """Classify every sale against the display log."""
    displays = log.by_sale()
    outcomes: list[SaleOutcome] = []
    latencies: list[float] = []
    n_on_time = 0
    n_duplicates = 0
    for sale in sales:
        shown = displays.get(sale.sale_id, [])
        first = shown[0][0] if shown else None
        outcome = SaleOutcome(sale=sale, first_shown_at=first,
                              n_displays=len(shown))
        outcomes.append(outcome)
        if outcome.on_time:
            n_on_time += 1
            latencies.append(outcome.latency or 0.0)
        n_duplicates += outcome.duplicates
    report = SlaReport(
        n_sales=len(sales),
        n_on_time=n_on_time,
        n_violated=len(sales) - n_on_time,
        n_duplicates=n_duplicates,
        mean_latency_s=(sum(latencies) / len(latencies)) if latencies else 0.0,
    )
    return outcomes, report
