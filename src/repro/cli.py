"""Command-line interface.

::

    adprefetch list                       # what can be reproduced
    adprefetch run e9 --users 400         # one experiment
    adprefetch run all --users 200        # everything
    adprefetch headline --users 200       # just the abstract's claim
    adprefetch report out.md --users 150  # full markdown report
    adprefetch trace out.jsonl --users 50 # dump a synthetic trace
    adprefetch obs summarize runs/        # render run artifacts
    adprefetch obs validate runs/run-000-headline/trace.jsonl
    adprefetch obs ledger list            # the committed run ledger
    adprefetch obs ledger regress         # CI perf/behaviour gate
    adprefetch obs postmortem list        # flight-recorder black boxes
    adprefetch obs postmortem show obs-runs/postmortems/shard-003-crash.json

``run``, ``headline``, and ``report`` accept ``--jobs N`` to execute
user shards across N worker processes (see :class:`repro.runner.Runner`;
results are bit-for-bit identical at any ``--jobs``) and
``--backend event|batched`` to pick the shard execution engine
(``batched`` vectorizes the hot paths and is bit-identical to the
reference engine under the contract in :mod:`repro.sim.batched`; see
DESIGN.md §10). They also accept
the observability flags: ``--metrics-out DIR`` writes one
``run-NNN-<system>`` artifact directory per run (manifest, merged
metrics, wall-clock profile), and ``--trace`` additionally records the
sim-time trace (JSONL plus a Chrome ``trace_event`` export loadable in
Perfetto; implies ``--metrics-out`` defaulting to ``./obs-runs``), and
``--ledger PATH`` appends one deterministic
:class:`repro.obs.ledger.RunRecord` per run to that JSONL ledger.
``--verbose`` turns on the shared :mod:`repro.obs.log` diagnostics.
``--progress`` switches on the live telemetry plane
(:mod:`repro.obs.live`): streamed shard heartbeats rendered as a live
progress line on stderr, a straggler/stall watchdog, and flight-recorder
postmortems for crashed or lost shards (``--beat-interval`` tunes the
heartbeat pacing; results stay bit-identical with the plane on or off).
``run``, ``headline``, and ``report`` also accept ``--faults plan.json``
to inject deterministic faults (see :mod:`repro.faults`); results stay
bit-identical at any ``--jobs`` for any plan.
``--executor dist --workers N`` dispatches shards through the
:mod:`repro.dist` coordinator/worker runner (lease-based work-stealing,
heartbeat-driven retry; DESIGN.md §13) instead of the process pool —
bit-identical, even under a ``--chaos plan.json`` plan of seeded worker
kills and duplicated results. ``--shards``/``--max-shards`` control the
shard layout (semantic knobs; the historical silent clamp at 16 auto
shards is now visible as a ``runner.auto_shards_clamped`` counter).

(Equivalently: ``python -m repro ...``.)
"""

from __future__ import annotations

import argparse
import logging
import sys
import time
from pathlib import Path

from repro.experiments.config import ExperimentConfig
from repro.experiments.registry import experiment_ids, run_experiment


def _add_world_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--users", type=int, default=400,
                        help="population size (paper: 1750)")
    parser.add_argument("--days", type=int, default=10,
                        help="trace length in days (paper: 14)")
    parser.add_argument("--train-days", type=int, default=6,
                        help="days used to warm the models")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--radio", default="3g",
                        choices=("3g", "3g-fd", "lte", "wifi"))


def _add_jobs_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for shard execution "
                             "(results identical at any value)")
    parser.add_argument("--backend", default="event",
                        choices=("event", "batched"),
                        help="shard execution engine: the reference "
                             "event-driven engine or the vectorized "
                             "batched engine (equivalent under the "
                             "contract in repro.sim.batched; see "
                             "DESIGN.md §10)")
    parser.add_argument("--executor", default="pool",
                        choices=("pool", "dist"),
                        help="shard dispatcher: 'pool' maps shards over "
                             "a process pool; 'dist' runs the repro.dist "
                             "coordinator/worker runner (lease-based "
                             "work-stealing, heartbeat-driven retry; "
                             "results bit-identical either way; see "
                             "DESIGN.md §13)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes for --executor dist "
                             "(default: --jobs)")
    parser.add_argument("--shards", type=int, default=None,
                        help="explicit shard count (a semantic knob: "
                             "each shard serves a shard-local ad-server "
                             "view; default: derived from --users)")
    parser.add_argument("--max-shards", type=int, default=None,
                        help="clamp on the auto-selected shard count "
                             "(default: 16; the run's metrics carry a "
                             "runner.auto_shards_clamped counter when "
                             "the clamp bites)")
    parser.add_argument("--chaos", metavar="PLAN.json", default=None,
                        help="coordinator chaos plan for --executor dist "
                             "(JSON; see repro.faults.CoordinatorChaos): "
                             "seeded worker kills, duplicated and "
                             "delayed results. Results must stay "
                             "bit-identical under any plan")


def _add_faults_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--faults", metavar="PLAN.json", default=None,
                        help="fault-injection plan (JSON; see "
                             "repro.faults.FaultPlan). Omitted or empty "
                             "== no faults, bit-identical to a run "
                             "without the subsystem")


#: Default artifact directory when ``--trace`` is given bare.
DEFAULT_OBS_DIR = "obs-runs"


def _add_obs_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", action="store_true",
                        help="record the sim-time trace (JSONL + Chrome "
                             "trace_event export; results stay "
                             "bit-identical)")
    parser.add_argument("--metrics-out", metavar="DIR", default=None,
                        help="write run artifacts (manifest, metrics, "
                             "profile, resources) under DIR")
    parser.add_argument("--ledger", metavar="PATH", default=None,
                        help="append one RunRecord per run to this JSONL "
                             "ledger (timing telemetry goes to the "
                             "gitignored .timings sibling)")
    parser.add_argument("--verbose", action="store_true",
                        help="enable repro.obs.log diagnostics on stderr")
    parser.add_argument("--progress", action="store_true",
                        help="live shard progress on stderr (single-line "
                             "refresh on a TTY, plain lines when piped) "
                             "via the repro.obs.live telemetry plane; "
                             "results stay bit-identical")
    parser.add_argument("--beat-interval", type=float, metavar="SECONDS",
                        default=1.0,
                        help="min wall-clock seconds between shard "
                             "heartbeats when the live plane is on "
                             "(default: 1.0)")


def _install_obs_options(args: argparse.Namespace) -> None:
    """Translate CLI observability flags into the process default.

    ``Runner`` instances created anywhere downstream (experiment
    registry, report writer) pick these options up via
    :func:`repro.obs.runtime.default_obs_options`.
    """
    from repro.obs import log
    from repro.obs.live import LiveOptions
    from repro.obs.runtime import ObsOptions, set_default_obs_options

    if getattr(args, "verbose", False):
        log.enable(logging.DEBUG)
    trace = bool(getattr(args, "trace", False))
    metrics_out = getattr(args, "metrics_out", None)
    ledger = getattr(args, "ledger", None)
    progress = bool(getattr(args, "progress", False))
    if metrics_out is None and trace:
        metrics_out = DEFAULT_OBS_DIR
    live = None
    if progress:
        # The postmortem directory rides beside the run artifacts (or
        # under the default obs dir when none was requested).
        live = LiveOptions(
            beat_interval_s=float(getattr(args, "beat_interval", 1.0)),
            progress=True,
            postmortem_dir=(Path(metrics_out) / "postmortems"
                            if metrics_out is not None
                            else Path(DEFAULT_OBS_DIR) / "postmortems"))
    if metrics_out is not None or ledger is not None or live is not None:
        set_default_obs_options(ObsOptions(
            out_dir=Path(metrics_out) if metrics_out is not None else None,
            trace=trace,
            ledger=Path(ledger) if ledger is not None else None,
            live=live))


def _install_exec_options(args: argparse.Namespace) -> None:
    """Translate CLI execution flags into the process default.

    Mirrors :func:`_install_obs_options`: ``Runner`` instances created
    downstream (experiment registry, report writer) pick the executor,
    worker count, shard clamp, and chaos plan up via
    :func:`repro.runner.default_exec_options` without every call site
    growing executor parameters.
    """
    from repro.faults.chaos import CoordinatorChaos
    from repro.runner import ExecOptions, set_default_exec_options

    chaos_path = getattr(args, "chaos", None)
    chaos = (CoordinatorChaos.from_json_file(chaos_path)
             if chaos_path is not None else None)
    set_default_exec_options(ExecOptions(
        executor=getattr(args, "executor", "pool"),
        workers=getattr(args, "workers", None),
        shards=getattr(args, "shards", None),
        max_shards=getattr(args, "max_shards", None),
        chaos=chaos,
    ))


def _config_from(args: argparse.Namespace) -> ExperimentConfig:
    from repro.faults.plan import FaultPlan

    plan_path = getattr(args, "faults", None)
    faults = (FaultPlan.from_json_file(plan_path)
              if plan_path is not None else FaultPlan())
    return ExperimentConfig(
        n_users=args.users,
        n_days=args.days,
        train_days=args.train_days,
        seed=args.seed,
        radio=args.radio,
        faults=faults,
    )


def _cmd_list(_args: argparse.Namespace) -> int:
    from repro.experiments.registry import EXPERIMENTS
    for eid in experiment_ids():
        exp = EXPERIMENTS[eid]
        print(f"{eid:>4}  {exp.paper_artifact:<18} {exp.title}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.runner import WorldSource

    _install_obs_options(args)
    _install_exec_options(args)
    config = _config_from(args)
    ids = experiment_ids() if args.experiment == "all" else [args.experiment]
    source = WorldSource()  # one world provider for the whole invocation
    for eid in ids:
        started = time.perf_counter()
        result = run_experiment(eid, config, jobs=args.jobs,
                                backend=args.backend, source=source)
        print(result.render())
        print(f"[{eid} took {time.perf_counter() - started:.1f}s]\n")
    return 0


def _cmd_headline(args: argparse.Namespace) -> int:
    from repro.metrics.summary import fmt_pct
    from repro.runner import Runner

    _install_obs_options(args)
    _install_exec_options(args)
    result = Runner(_config_from(args), parallelism=args.jobs,
                    backend=args.backend,
                    executor=args.executor,
                    workers=args.workers,
                    shards=args.shards,
                    max_shards=args.max_shards).run("headline")
    comparison = result.comparison
    print("Paper claim: >50% ad-energy reduction, negligible revenue "
          "loss and SLA violation rate.")
    print(f"  energy savings     {fmt_pct(comparison.energy_savings, 1)}")
    print(f"  revenue loss       {fmt_pct(comparison.revenue_loss)}")
    print(f"  SLA violation rate {fmt_pct(comparison.sla_violation_rate)}")
    print(f"  wakeup reduction   {fmt_pct(comparison.wakeup_reduction, 1)}")
    print(f"  [{result.n_shards} shard(s) x {result.parallelism} worker(s), "
          f"{result.elapsed_s:.1f}s]")
    if result.dist is not None:
        stats = result.dist
        print(f"  [dist: {stats.workers_spawned} worker(s) spawned, "
              f"{stats.workers_lost} lost, {stats.requeues} requeue(s), "
              f"{stats.duplicates_discarded} duplicate(s) discarded]")
    if result.artifacts_dir is not None:
        print(f"  [run artifacts: {result.artifacts_dir}]")
    for postmortem in result.postmortems:
        print(f"  [postmortem: {postmortem}]")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import write_report

    _install_obs_options(args)
    _install_exec_options(args)
    ids = args.only.split(",") if args.only else None
    path = write_report(args.path, _config_from(args), ids=ids,
                        jobs=args.jobs, backend=args.backend)
    print(f"report written to {path}")
    return 0


def _cmd_obs_summarize(args: argparse.Namespace) -> int:
    from repro.obs.summarize import SummarizeError, summarize

    if not Path(args.dir).exists():
        print(f"error: {args.dir}: no such file or directory",
              file=sys.stderr)
        return 1
    try:
        print(summarize(args.dir))
    except SummarizeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_obs_ledger(args: argparse.Namespace) -> int:
    from repro.obs.ledger import (DEFAULT_LEDGER_PATH, Ledger, LedgerError,
                                  diff_records, regress, render_list,
                                  render_record)

    path = Path(args.ledger_path) if args.ledger_path else DEFAULT_LEDGER_PATH
    ledger = Ledger(path)
    try:
        if args.ledger_command == "list":
            print(render_list(ledger.records()))
            return 0
        if args.ledger_command == "show":
            print(render_record(ledger.resolve(args.ref)))
            return 0
        if args.ledger_command == "diff":
            baseline = ledger.resolve(args.baseline_ref)
            candidate = ledger.resolve(args.candidate_ref)
            problems = diff_records(baseline, candidate,
                                    rel_tol=args.rel_tol)
            if problems:
                for problem in problems:
                    print(problem)
                return 1
            print(f"records {baseline.record_id} and "
                  f"{candidate.record_id} agree")
            return 0
        # regress
        current = ledger.records()
        if not current:
            print(f"error: {path}: ledger is empty or missing",
                  file=sys.stderr)
            return 1
        baseline_records = (Ledger(args.baseline).records()
                            if args.baseline else None)
        report = regress(current, baseline_records, rel_tol=args.rel_tol)
        print(report.render())
        if not report.ok:
            return 1
        if report.compared == 0 and not args.allow_empty:
            print("error: no run key had a baseline to regress against "
                  "(pass --allow-empty to tolerate)", file=sys.stderr)
            return 1
        return 0
    except LedgerError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _cmd_obs_postmortem(args: argparse.Namespace) -> int:
    from repro.obs.flightrec import Postmortem, list_postmortems

    if args.postmortem_command == "show":
        try:
            print(Postmortem.load(args.path).render())
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        return 0
    # list
    directory = args.dir
    paths = list_postmortems(directory)
    if not paths:
        print(f"no postmortems under {directory}")
        return 0
    for path in paths:
        try:
            postmortem = Postmortem.load(path)
        except (OSError, ValueError) as exc:
            print(f"{path}  [unreadable] {exc}")
            continue
        print(f"{path}  [{postmortem.kind}] shard "
              f"{postmortem.shard_index}/{postmortem.n_shards}  "
              f"{postmortem.reason}")
    return 0


def _cmd_obs_validate(args: argparse.Namespace) -> int:
    from repro.obs.trace import validate_jsonl

    problems = validate_jsonl(args.path)
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        return 1
    print(f"{args.path}: valid repro.obs trace")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.runner import WorldSource
    from repro.traces.io import write_trace

    world = WorldSource().world_for(_config_from(args))
    count = write_trace(world.trace, args.path)
    print(f"wrote {count} sessions for {world.trace.n_users} users "
          f"to {args.path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="adprefetch",
        description="Reproduction of 'Prefetching Mobile Ads' "
                    "(EuroSys 2013)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list reproducible artifacts")
    p_list.set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="run one experiment (or 'all')")
    p_run.add_argument("experiment",
                       choices=experiment_ids() + ["all"])
    _add_world_args(p_run)
    _add_jobs_arg(p_run)
    _add_faults_arg(p_run)
    _add_obs_args(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_head = sub.add_parser("headline", help="reproduce the abstract claim")
    _add_world_args(p_head)
    _add_jobs_arg(p_head)
    _add_faults_arg(p_head)
    _add_obs_args(p_head)
    p_head.set_defaults(func=_cmd_headline)

    p_report = sub.add_parser("report",
                              help="run experiments, write a markdown report")
    p_report.add_argument("path")
    p_report.add_argument("--only", default="",
                          help="comma-separated experiment ids")
    _add_world_args(p_report)
    _add_jobs_arg(p_report)
    _add_faults_arg(p_report)
    _add_obs_args(p_report)
    p_report.set_defaults(func=_cmd_report)

    p_trace = sub.add_parser("trace", help="generate a synthetic trace file")
    p_trace.add_argument("path")
    _add_world_args(p_trace)
    p_trace.set_defaults(func=_cmd_trace)

    p_obs = sub.add_parser("obs", help="inspect observability artifacts")
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)
    p_sum = obs_sub.add_parser("summarize",
                               help="render run directories as tables")
    p_sum.add_argument("dir", help="artifact root (or one run directory)")
    p_sum.set_defaults(func=_cmd_obs_summarize)
    p_val = obs_sub.add_parser("validate",
                               help="validate a JSONL trace against the "
                                    "repro.obs.trace schema")
    p_val.add_argument("path")
    p_val.set_defaults(func=_cmd_obs_validate)

    p_pm = obs_sub.add_parser(
        "postmortem", help="inspect flight-recorder postmortems written "
                           "by the live telemetry plane")
    pm_sub = p_pm.add_subparsers(dest="postmortem_command", required=True)
    pm_show = pm_sub.add_parser("show", help="render one postmortem file")
    pm_show.add_argument("path", help="a shard-NNN-<kind>.json file")
    pm_show.set_defaults(func=_cmd_obs_postmortem)
    pm_list = pm_sub.add_parser("list", help="one line per postmortem")
    pm_list.add_argument("dir", nargs="?",
                         default=str(Path(DEFAULT_OBS_DIR) / "postmortems"),
                         help="postmortem directory (default: "
                              "obs-runs/postmortems)")
    pm_list.set_defaults(func=_cmd_obs_postmortem)

    p_ledger = obs_sub.add_parser(
        "ledger", help="inspect or gate the append-only run ledger")
    p_ledger.add_argument("--ledger-path", metavar="PATH", default=None,
                          help="ledger file (default: benchmarks/"
                               "ledger.jsonl)")
    ledger_sub = p_ledger.add_subparsers(dest="ledger_command",
                                         required=True)
    pl_list = ledger_sub.add_parser("list", help="one line per record")
    pl_list.set_defaults(func=_cmd_obs_ledger)
    pl_show = ledger_sub.add_parser("show", help="render one record")
    pl_show.add_argument("ref", nargs="?", default="latest",
                         help="seq number (negative counts from the "
                              "end), id prefix, or 'latest'")
    pl_show.set_defaults(func=_cmd_obs_ledger)
    pl_diff = ledger_sub.add_parser(
        "diff", help="compare two records under the tolerance contract")
    pl_diff.add_argument("baseline_ref")
    pl_diff.add_argument("candidate_ref")
    pl_diff.add_argument("--rel-tol", type=float, default=0.0,
                         help="extra relative tolerance for metrics not "
                              "covered by the contract")
    pl_diff.set_defaults(func=_cmd_obs_ledger)
    pl_reg = ledger_sub.add_parser(
        "regress", help="gate the latest record of every run key "
                        "against its baseline (CI)")
    pl_reg.add_argument("--baseline", metavar="LEDGER", default=None,
                        help="explicit baseline ledger (default: the "
                             "ledger is its own history)")
    pl_reg.add_argument("--rel-tol", type=float, default=0.0,
                        help="extra relative tolerance for uncovered "
                             "metrics")
    pl_reg.add_argument("--allow-empty", action="store_true",
                        help="exit 0 even when no run key had a "
                             "baseline to compare against")
    pl_reg.set_defaults(func=_cmd_obs_ledger)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
