"""Command-line interface.

::

    adprefetch list                       # what can be reproduced
    adprefetch run e9 --users 400         # one experiment
    adprefetch run all --users 200        # everything
    adprefetch headline --users 200       # just the abstract's claim
    adprefetch report out.md --users 150  # full markdown report
    adprefetch trace out.jsonl --users 50 # dump a synthetic trace

``run``, ``headline``, and ``report`` accept ``--jobs N`` to execute
user shards across N worker processes (see :class:`repro.runner.Runner`;
results are bit-for-bit identical at any ``--jobs``).

(Equivalently: ``python -m repro ...``.)
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.config import ExperimentConfig
from repro.experiments.registry import experiment_ids, run_experiment


def _add_world_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--users", type=int, default=400,
                        help="population size (paper: 1750)")
    parser.add_argument("--days", type=int, default=10,
                        help="trace length in days (paper: 14)")
    parser.add_argument("--train-days", type=int, default=6,
                        help="days used to warm the models")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--radio", default="3g",
                        choices=("3g", "3g-fd", "lte", "wifi"))


def _add_jobs_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for shard execution "
                             "(results identical at any value)")


def _config_from(args: argparse.Namespace) -> ExperimentConfig:
    return ExperimentConfig(
        n_users=args.users,
        n_days=args.days,
        train_days=args.train_days,
        seed=args.seed,
        radio=args.radio,
    )


def _cmd_list(_args: argparse.Namespace) -> int:
    from repro.experiments.registry import EXPERIMENTS
    for eid in experiment_ids():
        exp = EXPERIMENTS[eid]
        print(f"{eid:>4}  {exp.paper_artifact:<18} {exp.title}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    config = _config_from(args)
    ids = experiment_ids() if args.experiment == "all" else [args.experiment]
    for eid in ids:
        started = time.perf_counter()
        result = run_experiment(eid, config, jobs=args.jobs)
        print(result.render())
        print(f"[{eid} took {time.perf_counter() - started:.1f}s]\n")
    return 0


def _cmd_headline(args: argparse.Namespace) -> int:
    from repro.metrics.summary import fmt_pct
    from repro.runner import Runner

    result = Runner(_config_from(args), parallelism=args.jobs).run("headline")
    comparison = result.comparison
    print("Paper claim: >50% ad-energy reduction, negligible revenue "
          "loss and SLA violation rate.")
    print(f"  energy savings     {fmt_pct(comparison.energy_savings, 1)}")
    print(f"  revenue loss       {fmt_pct(comparison.revenue_loss)}")
    print(f"  SLA violation rate {fmt_pct(comparison.sla_violation_rate)}")
    print(f"  wakeup reduction   {fmt_pct(comparison.wakeup_reduction, 1)}")
    print(f"  [{result.n_shards} shard(s) x {result.parallelism} worker(s), "
          f"{result.elapsed_s:.1f}s]")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import write_report

    ids = args.only.split(",") if args.only else None
    path = write_report(args.path, _config_from(args), ids=ids,
                        jobs=args.jobs)
    print(f"report written to {path}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.experiments.harness import get_world
    from repro.traces.io import write_trace

    world = get_world(_config_from(args))
    count = write_trace(world.trace, args.path)
    print(f"wrote {count} sessions for {world.trace.n_users} users "
          f"to {args.path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="adprefetch",
        description="Reproduction of 'Prefetching Mobile Ads' "
                    "(EuroSys 2013)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list reproducible artifacts")
    p_list.set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="run one experiment (or 'all')")
    p_run.add_argument("experiment",
                       choices=experiment_ids() + ["all"])
    _add_world_args(p_run)
    _add_jobs_arg(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_head = sub.add_parser("headline", help="reproduce the abstract claim")
    _add_world_args(p_head)
    _add_jobs_arg(p_head)
    p_head.set_defaults(func=_cmd_headline)

    p_report = sub.add_parser("report",
                              help="run experiments, write a markdown report")
    p_report.add_argument("path")
    p_report.add_argument("--only", default="",
                          help="comma-separated experiment ids")
    _add_world_args(p_report)
    _add_jobs_arg(p_report)
    p_report.set_defaults(func=_cmd_report)

    p_trace = sub.add_parser("trace", help="generate a synthetic trace file")
    p_trace.add_argument("path")
    _add_world_args(p_trace)
    p_trace.set_defaults(func=_cmd_trace)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
