"""Synthetic "top-15 free apps" catalog.

The paper's measurement study profiles the top 15 free Windows Phone
apps. We cannot ship those binaries, so this module defines a catalog of
15 app profiles spanning the same behavioural space: offline games whose
only network traffic is advertising, chatty streaming/social apps where
ad fetches piggyback on app traffic, and everything in between. The mix
is tuned so that, under the 3G radio model, advertising accounts for
roughly two thirds of communication energy across the catalog — the
paper's headline measurement.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class AppProfile:
    """Static behaviour profile of one ad-supported app.

    Attributes
    ----------
    app_id:
        Stable identifier, e.g. ``"puzzle_blocks"``.
    category:
        Coarse genre label used in reports.
    popularity:
        Relative launch-probability weight across the catalog.
    session_median_s / session_sigma:
        Lognormal session-duration parameters (median seconds and sigma
        of the underlying normal).
    ad_refresh_s:
        Foreground ad rotation period; every rotation is an ad slot.
    ad_bytes:
        Size of one ad creative (markup + image).
    app_request_interval_s:
        Period of the app's *own* network requests while in foreground,
        or ``None`` for fully offline apps (games, tools).
    app_request_bytes:
        Size of one app-originated request/response pair.
    """

    app_id: str
    category: str
    popularity: float
    session_median_s: float
    session_sigma: float
    ad_refresh_s: float
    ad_bytes: int
    app_request_interval_s: float | None
    app_request_bytes: int

    def __post_init__(self) -> None:
        if self.popularity <= 0:
            raise ValueError("popularity must be positive")
        if self.session_median_s <= 0:
            raise ValueError("session_median_s must be positive")
        if self.ad_refresh_s <= 0:
            raise ValueError("ad_refresh_s must be positive")

    @property
    def is_offline(self) -> bool:
        """True when the app makes no network requests of its own."""
        return self.app_request_interval_s is None

    def slots_in_session(self, duration: float) -> int:
        """Ad slots surfaced by a foreground session of ``duration`` seconds.

        One slot fires at launch, then one per refresh period.
        """
        if duration < 0:
            raise ValueError("duration must be non-negative")
        return 1 + int(duration // self.ad_refresh_s)

    def slot_times_offsets(self, duration: float) -> list[float]:
        """Slot times relative to session start (launch + rotations)."""
        return [k * self.ad_refresh_s
                for k in range(self.slots_in_session(duration))]


def _app(app_id: str, category: str, popularity: float, median: float,
         sigma: float, refresh: float, ad_bytes: int,
         app_interval: float | None, app_bytes: int) -> AppProfile:
    return AppProfile(app_id, category, popularity, median, sigma, refresh,
                      ad_bytes, app_interval, app_bytes)


#: The synthetic top-15 catalog. Offline games dominate by count (as the
#: 2013 marketplaces did); a few chatty apps provide piggybacking
#: opportunities for their ad traffic.
TOP15: tuple[AppProfile, ...] = (
    _app("puzzle_blocks", "game", 10.0, 420.0, 0.9, 30.0, 4000, None, 0),
    _app("solitaire_deluxe", "game", 9.0, 540.0, 0.8, 45.0, 4000, None, 0),
    _app("word_trainer", "game", 7.5, 300.0, 0.9, 30.0, 3500, None, 0),
    _app("bubble_pop", "game", 7.0, 360.0, 1.0, 30.0, 4000, None, 0),
    _app("flashlight_pro", "tool", 6.0, 60.0, 0.7, 30.0, 3000, None, 0),
    _app("unit_converter", "tool", 4.0, 90.0, 0.8, 45.0, 3000, None, 0),
    _app("doodle_sketch", "tool", 3.5, 240.0, 1.0, 60.0, 3500, None, 0),
    _app("daily_weather", "weather", 8.0, 75.0, 0.6, 30.0, 3500, 60.0, 6000),
    _app("headline_news", "news", 7.0, 180.0, 0.8, 30.0, 4000, 45.0, 12000),
    _app("social_stream", "social", 9.5, 300.0, 0.9, 30.0, 4000, 25.0, 12000),
    _app("chat_now", "social", 8.5, 240.0, 1.0, 60.0, 3500, 40.0, 2500),
    _app("photo_filters", "photo", 5.0, 210.0, 0.9, 45.0, 4000, 120.0, 40000),
    _app("internet_radio", "media", 4.0, 600.0, 0.7, 60.0, 4000, 4.0, 24000),
    _app("video_clips", "media", 5.0, 300.0, 0.9, 45.0, 4500, 20.0, 50000),
    _app("deal_finder", "shopping", 4.5, 150.0, 0.8, 30.0, 4000, 40.0, 9000),
)

CATALOG: dict[str, AppProfile] = {a.app_id: a for a in TOP15}


def get_app(app_id: str) -> AppProfile:
    """Look up a catalog app by id."""
    try:
        return CATALOG[app_id]
    except KeyError:
        raise KeyError(f"unknown app {app_id!r}") from None


def catalog_weights(apps: tuple[AppProfile, ...] = TOP15) -> list[float]:
    """Normalised popularity weights for sampling app launches."""
    total = sum(a.popularity for a in apps)
    return [a.popularity / total for a in apps]
