"""S4 — synthetic app catalog and user population."""

from .appstore import CATALOG, TOP15, AppProfile, catalog_weights, get_app
from .population import PopulationConfig, UserProfile, build_population, sample_user

__all__ = [
    "AppProfile",
    "TOP15",
    "CATALOG",
    "get_app",
    "catalog_weights",
    "UserProfile",
    "PopulationConfig",
    "sample_user",
    "build_population",
]
