"""User population model.

The paper's traces cover >1,700 iPhone and Windows Phone users with very
different activity levels. This module samples a heterogeneous synthetic
population: heavy-tailed sessions/day across users, per-user diurnal
rhythms, per-user app preferences, and a per-user *regularity* that
controls how predictable their usage is day over day.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.traces.diurnal import DiurnalProfile, random_profile

from .appstore import TOP15, AppProfile


@dataclass(frozen=True, slots=True)
class UserProfile:
    """Sampled behavioural parameters of one synthetic user.

    Attributes
    ----------
    sessions_per_day:
        The user's long-run average app sessions per day.
    diurnal:
        Time-of-day session intensity.
    app_weights:
        Launch probability per catalog app (sums to 1).
    day_noise_sigma:
        Sigma of the lognormal day-level rate multiplier; small values
        mean highly regular (predictable) users.
    weekend_factor:
        Multiplier on the session rate for days 5 and 6 of each week.
    """

    user_id: str
    platform: str
    sessions_per_day: float
    diurnal: DiurnalProfile
    app_weights: tuple[float, ...]
    day_noise_sigma: float
    weekend_factor: float

    def daily_rate(self, day: int, rng: np.random.Generator) -> float:
        """Realised session rate for a given day (includes noise)."""
        rate = self.sessions_per_day
        if day % 7 >= 5:
            rate *= self.weekend_factor
        noise = float(rng.lognormal(mean=0.0, sigma=self.day_noise_sigma))
        return rate * noise


@dataclass(frozen=True, slots=True)
class PopulationConfig:
    """Knobs for sampling a population.

    Defaults approximate the paper's cohort: ~1,750 users, median ~9
    sessions/day with a heavy tail, roughly 60/40 WP/iPhone split.
    """

    n_users: int = 1750
    median_sessions_per_day: float = 9.0
    sessions_sigma: float = 0.55
    wp_fraction: float = 0.6
    app_concentration: float = 24.0
    day_noise_low: float = 0.10
    day_noise_high: float = 0.45
    weekend_low: float = 0.8
    weekend_high: float = 1.4

    def __post_init__(self) -> None:
        if self.n_users <= 0:
            raise ValueError("n_users must be positive")
        if not 0.0 <= self.wp_fraction <= 1.0:
            raise ValueError("wp_fraction must be in [0, 1]")
        if self.median_sessions_per_day <= 0:
            raise ValueError("median_sessions_per_day must be positive")


def sample_user(user_id: str, config: PopulationConfig,
                rng: np.random.Generator,
                apps: tuple[AppProfile, ...] = TOP15) -> UserProfile:
    """Sample one user's behavioural profile."""
    platform = "wp" if rng.random() < config.wp_fraction else "iphone"
    sessions = float(rng.lognormal(
        mean=np.log(config.median_sessions_per_day),
        sigma=config.sessions_sigma))
    base = np.array([a.popularity for a in apps], dtype=float)
    base = base / base.sum()
    weights = rng.dirichlet(base * config.app_concentration)
    return UserProfile(
        user_id=user_id,
        platform=platform,
        sessions_per_day=sessions,
        diurnal=random_profile(rng),
        app_weights=tuple(float(w) for w in weights),
        day_noise_sigma=float(rng.uniform(config.day_noise_low,
                                          config.day_noise_high)),
        weekend_factor=float(rng.uniform(config.weekend_low,
                                         config.weekend_high)),
    )


def build_population(config: PopulationConfig, rng: np.random.Generator,
                     apps: tuple[AppProfile, ...] = TOP15) -> list[UserProfile]:
    """Sample the full population, with stable zero-padded user ids."""
    width = len(str(config.n_users - 1))
    return [
        sample_user(f"u{idx:0{width}d}", config, rng, apps)
        for idx in range(config.n_users)
    ]
