"""The ad server.

Orchestrates the paper's three-party protocol with minimal changes to
the existing architecture:

1. **Predict.** Per-client slot predictors (mirrored server-side from
   client reports) forecast the next epoch's inventory.
2. **Sell ahead.** The predicted inventory is auctioned in the exchange
   *before it exists*, with a show-by deadline.
3. **Overbook.** Sold ads are replicated across clients by the dispatch
   policy so each meets its SLA target despite prediction error.
4. **Reconcile.** Client syncs (piggybacked on prefetch downloads)
   report displays; the server invalidates replicas of already-shown
   ads and bills/voids sales at settlement.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.overbooking import Assignment, ClientForecast, DispatchPolicy
from repro.core.revenue import RevenueReport, settle_revenue
from repro.core.showcurve import DispatchCurve, WindowedShowCurveEstimator
from repro.core.sla import DisplayLog, SaleOutcome, SlaReport, settle_sla
from repro.exchange.marketplace import Exchange, Sale
from repro.obs import log as obs_log
from repro.obs.runtime import current_obs
from repro.prediction.base import SlotPredictor

# Shared silenceable diagnostics (repro.obs.log); ad-hoc print()/logging
# is deprecated repo-wide.
_log = obs_log.get_logger("server.adserver")


@dataclass(frozen=True, slots=True)
class ServerConfig:
    """Prefetch-system configuration (the knobs the paper sweeps)."""

    epoch_s: float = 3600.0          # prefetch/planning period T
    deadline_s: float = 14400.0      # show-by deadline D (>= T)
    epsilon: float = 0.05            # per-sale SLA violation target
    sell_factor: float = 0.8         # sold inventory / predicted inventory
    capacity_factor: float = 2.0     # max new ads per client, x predicted
    capacity_slack: int = 4          # ... plus this constant
    control_bytes: int = 400         # sync protocol overhead per sync
    report_delay_s: float = 900.0    # max impression-beacon batching delay
    report_bytes: int = 200          # impression beacon payload
    rescue_batch: int = 4            # at-risk sales re-replicated per dry slot
    standby_lag_s: float | None = None  # backup-replica activation delay
                                        # (defaults to one epoch)
    rescue_horizon_s: float | None = None  # rescue window before deadline
                                           # (defaults to one epoch)
    presumed_dark_after_s: float | None = None  # contact-staleness rescue
                                                # threshold (None disables)
    fallback: str = "realtime"       # cache-miss policy: realtime | house

    def __post_init__(self) -> None:
        if self.epoch_s <= 0:
            raise ValueError("epoch_s must be positive")
        if (self.presumed_dark_after_s is not None
                and self.presumed_dark_after_s <= 0):
            raise ValueError("presumed_dark_after_s must be positive")
        if self.deadline_s < self.epoch_s:
            raise ValueError("deadline_s must be >= epoch_s "
                             "(sell more often for shorter deadlines)")
        if not 0.0 < self.epsilon < 1.0:
            raise ValueError("epsilon must be in (0, 1)")
        if self.sell_factor <= 0:
            raise ValueError("sell_factor must be positive")
        if self.fallback not in ("realtime", "house"):
            raise ValueError("fallback must be 'realtime' or 'house'")

    @property
    def standby_lag(self) -> float:
        """Grace period before backup replicas become displayable."""
        return (self.standby_lag_s if self.standby_lag_s is not None
                else self.epoch_s)

    @property
    def rescue_horizon(self) -> float:
        """Only sales this close to their deadline are rescued.

        Default: everything but the first epoch of the deadline window —
        the statically planned replicas get one clean epoch before the
        demand-driven safety net starts competing with them.
        """
        if self.rescue_horizon_s is not None:
            return self.rescue_horizon_s
        return max(self.epoch_s, self.deadline_s - self.epoch_s)

    @property
    def sla_window(self) -> int:
        """Deadline window length in whole epochs."""
        return max(1, int(round(self.deadline_s / self.epoch_s)))


@dataclass(frozen=True, slots=True)
class SyncResponse:
    """What a client receives when it checks in."""

    assignments: list[Assignment]
    invalidated_ids: set[int]
    nbytes: int


@dataclass(slots=True)
class EpochPlanStats:
    """Per-epoch planning telemetry."""

    epoch_index: int
    predicted_total: float
    sold: int
    assignments: int
    replication_factor: float
    expected_violation: float
    unplaced: int


@dataclass(slots=True)
class _ClientState:
    """Server-side view of one client."""

    predictor: SlotPredictor
    last_prediction: float = 0.0
    pending: list[Assignment] = field(default_factory=list)  # planned, undelivered
    delivered_unshown: dict[int, float] = field(default_factory=dict)  # id -> deadline


class AdServer:
    """The prefetching ad server."""

    def __init__(self, config: ServerConfig, exchange: Exchange,
                 policy: DispatchPolicy,
                 predictors: dict[str, SlotPredictor],
                 rng: np.random.Generator,
                 curve: WindowedShowCurveEstimator | None = None) -> None:
        self.config = config
        self.exchange = exchange
        self.policy = policy
        self.rng = rng
        if curve is None:
            curve = WindowedShowCurveEstimator(max_window=config.sla_window)
        if curve.max_window < config.sla_window:
            raise ValueError("show-curve window shorter than the deadline")
        self.curve = curve
        self._dispatch_curve = DispatchCurve(curve, config.sla_window)
        self._clients = {uid: _ClientState(predictor=p)
                         for uid, p in predictors.items()}
        # Ground truth and protocol state.
        self.display_log = DisplayLog()
        self.shown_set: set[int] = set()      # known via reports only
        self.all_sales: list[Sale] = []
        self._sales_by_id: dict[int, Sale] = {}
        self._sale_owners: dict[int, set[str]] = {}
        self._at_risk: list[tuple[float, int, Sale]] = []  # (deadline,) heap
        self._last_contact: dict[str, float] = {}
        self._revoked: dict[str, set[int]] = {}
        self.rescues = 0
        self.presumed_dark = 0
        self.redispatched = 0
        self.degraded_epochs = 0
        self.plan_stats: list[EpochPlanStats] = []
        # Fallback accounting.
        self.fallback_billed = 0.0
        self.fallback_impressions = 0
        self.unfilled_slots = 0
        self.syncs = 0
        # Observability instruments (shard-local; merged by the Runner).
        obs = current_obs()
        self._recorder = obs.recorder
        self._sync_counter = obs.metrics.counter("server.syncs")
        self._rescue_counter = obs.metrics.counter("server.rescues")
        self._sold_counter = obs.metrics.counter("server.plan.sold")
        self._dispatch_counter = obs.metrics.counter("server.plan.assignments")
        self._fallback_counter = obs.metrics.counter("server.fallback.filled")
        self._unfilled_counter = obs.metrics.counter("server.fallback.unfilled")
        self._replication_hist = obs.metrics.histogram(
            "server.plan.replication")
        # Resilience instruments exist only when the feature is enabled
        # so fault-free metrics snapshots stay identical to pre-fault
        # builds.
        if config.presumed_dark_after_s is not None:
            self._presumed_dark_counter = obs.metrics.counter(
                "server.presumed_dark")
            self._redispatch_counter = obs.metrics.counter(
                "server.redispatched")
        self._degraded_counter = None

    # ------------------------------------------------------------------
    # Model training / updates
    # ------------------------------------------------------------------

    def warm_up(self, train_counts: dict[str, np.ndarray],
                start_epoch: int = 0) -> None:
        """Feed training epochs through predictors *and* the show curve.

        The curve sees the same (prediction, actual) pairs the live
        system would have produced during the training window.
        """
        for uid, counts in train_counts.items():
            state = self._clients[uid]
            for offset, actual in enumerate(counts):
                epoch = start_epoch + offset
                predicted = state.predictor.predict(epoch)
                self.curve.observe(uid, predicted, int(actual))
                state.predictor.observe(epoch, int(actual))

    def observe_epoch(self, epoch_index: int, actuals: dict[str, int]) -> None:
        """Ingest the true slot counts of a finished epoch.

        (The payload rides each client's next sync; see DESIGN.md.)
        """
        for uid, actual in actuals.items():
            state = self._clients[uid]
            self.curve.observe(uid, state.last_prediction, int(actual))
            state.predictor.observe(epoch_index, int(actual))

    # ------------------------------------------------------------------
    # Epoch planning: sell ahead + overbook
    # ------------------------------------------------------------------

    def plan_epoch(self, epoch_index: int, now: float) -> EpochPlanStats:
        """Sell the predicted inventory and plan its dispatch."""
        dark: set[str] = set()
        if self.config.presumed_dark_after_s is not None:
            dark = self._rescue_presumed_dark(now)
        forecasts: list[ClientForecast] = []
        total_predicted = 0.0
        for uid, state in self._clients.items():
            self._prune_state(state, now)
            predicted = max(0.0, state.predictor.predict(epoch_index))
            state.last_prediction = predicted
            total_predicted += predicted
            backlog = len(state.delivered_unshown) + len(state.pending)
            # Presumed-dark hosts get no new inventory until they are
            # heard from again.
            capacity = 0 if uid in dark else max(
                0,
                math.ceil(self.config.capacity_factor * predicted)
                + self.config.capacity_slack - backlog,
            )
            forecasts.append(ClientForecast(
                client_id=uid, predicted=predicted, backlog=backlog,
                capacity=capacity))
        to_sell = int(round(self.config.sell_factor * total_predicted))
        sales = self.exchange.sell_ahead(
            now, to_sell, deadline=now + self.config.deadline_s)
        self.all_sales.extend(sales)
        for sale in sales:
            self._sales_by_id[sale.sale_id] = sale
            heapq.heappush(self._at_risk, (sale.deadline, sale.sale_id, sale))
        plan = self.policy.plan(sales, forecasts, self._dispatch_curve,
                                rng=self.rng,
                                standby_until=now + self.config.standby_lag)
        for uid, queue in plan.queues.items():
            if queue:
                self._clients[uid].pending.extend(queue)
                owners = self._sale_owners
                for assignment in queue:
                    owners.setdefault(assignment.sale_id, set()).add(uid)
        stats = EpochPlanStats(
            epoch_index=epoch_index,
            predicted_total=total_predicted,
            sold=len(sales),
            assignments=plan.assignments(),
            replication_factor=plan.replication_factor(),
            expected_violation=plan.mean_expected_violation(),
            unplaced=len(plan.unplaced),
        )
        self.plan_stats.append(stats)
        self._sold_counter.inc(stats.sold)
        self._dispatch_counter.inc(stats.assignments)
        if stats.sold:
            self._replication_hist.observe(stats.replication_factor)
        if self._recorder.enabled:
            self._recorder.instant(
                now, "server", "dispatch",
                args={"epoch": epoch_index, "n_sold": stats.sold,
                      "n_assignments": stats.assignments,
                      "n_unplaced": stats.unplaced})
        return stats

    def _prune_state(self, state: _ClientState, now: float) -> None:
        """Drop expired/shown entries from the server's client view."""
        state.pending = [
            a for a in state.pending
            if a.sale.deadline >= now and a.sale_id not in self.shown_set
        ]
        state.delivered_unshown = {
            sid: deadline for sid, deadline in state.delivered_unshown.items()
            if deadline >= now and sid not in self.shown_set
        }

    def _rescue_presumed_dark(self, now: float) -> set[str]:
        """Contact-staleness rescue: reclaim replicas from silent hosts.

        A client the server has not heard from for
        ``presumed_dark_after_s`` is presumed dark (churned, dead
        battery, extended outage): its undelivered queue is reclaimed
        and its delivered-but-unshown replicas are revoked (the usual
        rescue hand-off — if the host comes back it drops its copy at
        the next contact, before a duplicate can show). Sales left with
        no live replica are re-dispatched round-robin onto the
        most-recently-heard-from live clients. Returns the presumed-dark
        user ids so the planner withholds new inventory from them.
        """
        threshold = now - float(self.config.presumed_dark_after_s or 0.0)
        dark: set[str] = set()
        orphaned: dict[int, float] = {}  # sale_id -> deadline
        for uid, state in self._clients.items():
            last = self._last_contact.get(uid)
            if last is None or last >= threshold:
                continue
            dark.add(uid)
            if not state.pending and not state.delivered_unshown:
                continue  # nothing left to reclaim (already rescued)
            self.presumed_dark += 1
            self._presumed_dark_counter.inc()
            reclaimed: dict[int, float] = {}
            for assignment in state.pending:
                reclaimed[assignment.sale_id] = assignment.sale.deadline
            state.pending = []
            for sid, deadline in state.delivered_unshown.items():
                reclaimed[sid] = deadline
                # Rescue hand-off: the host loses its copy at its next
                # contact, before it can produce a duplicate.
                self._revoked.setdefault(uid, set()).add(sid)
            state.delivered_unshown = {}
            for sid, deadline in reclaimed.items():
                owners = self._sale_owners.get(sid)
                if owners is not None:
                    owners.discard(uid)
                if sid in self.shown_set or deadline <= now:
                    continue
                if not owners:
                    orphaned[sid] = deadline
            if self._recorder.enabled:
                self._recorder.instant(
                    now, "server", "presumed_dark",
                    args={"user": uid, "n_reclaimed": len(reclaimed)})
        if not orphaned:
            return dark
        live = sorted(
            (uid for uid in self._clients
             if uid not in dark and self._last_contact.get(uid) is not None),
            key=lambda uid: (-self._last_contact[uid], uid))
        if not live:
            # Every candidate host is dark: the sales stay in the
            # at-risk heap for demand-driven rescue at the next contact.
            return dark
        for index, (sid, deadline) in enumerate(
                sorted(orphaned.items(), key=lambda item: (item[1], item[0]))):
            sale = self._sales_by_id[sid]
            uid = live[index % len(live)]
            target = self._clients[uid]
            target.pending.append(Assignment(sale, active_from=now))
            self._sale_owners.setdefault(sid, set()).add(uid)
            self.redispatched += 1
            self._redispatch_counter.inc()
        return dark

    def degraded_epoch(self, epoch_index: int, now: float) -> None:
        """Record an epoch in which the server/exchange was unreachable.

        No inventory is sold and nothing is dispatched; clients keep
        serving from their prefetched queues (graceful degradation — the
        paper's resilience argument). Every client contact in the window
        fails at the injector, so no protocol state changes either.
        """
        self.degraded_epochs += 1
        if self._degraded_counter is None:
            self._degraded_counter = current_obs().metrics.counter(
                "server.degraded_epochs")
        self._degraded_counter.inc()
        if self._recorder.enabled:
            self._recorder.instant(now, "server", "degraded",
                                   args={"epoch": epoch_index})

    # ------------------------------------------------------------------
    # Client-facing protocol
    # ------------------------------------------------------------------

    def sync(self, user_id: str, now: float,
             reports: list[tuple[int, float]]) -> SyncResponse:
        """Handle a client check-in: ingest reports, deliver new ads.

        ``reports`` are (sale_id, display_time) pairs since the client's
        previous sync. The response carries new assignments plus the ids
        of queued ads that other replicas already displayed.
        """
        self.syncs += 1
        self._sync_counter.inc()
        self._last_contact[user_id] = now
        invalidated = self.report(user_id, reports)
        if self._recorder.enabled and (reports or invalidated):
            self._recorder.instant(
                now, "server", "reconcile",
                args={"user": user_id, "n_reports": len(reports),
                      "n_invalidated": len(invalidated)})
        state = self._clients[user_id]
        deliverable = [
            a for a in state.pending
            if a.sale.deadline > now and a.sale_id not in self.shown_set
        ]
        state.pending = []
        for assignment in deliverable:
            state.delivered_unshown[assignment.sale_id] = assignment.sale.deadline
        nbytes = (self.config.control_bytes
                  + sum(a.sale.creative_bytes for a in deliverable))
        return SyncResponse(assignments=deliverable,
                            invalidated_ids=invalidated, nbytes=nbytes)

    def report(self, user_id: str,
               reports: list[tuple[int, float]]) -> set[int]:
        """Ingest impression reports (beacon or sync payload).

        Returns the ids of this client's queued ads that other replicas
        already displayed — invalidations ride every server contact.
        """
        state = self._clients[user_id]
        for sale_id, _time in reports:
            self.shown_set.add(sale_id)
            state.delivered_unshown.pop(sale_id, None)
        invalidated = {
            sid for sid in state.delivered_unshown if sid in self.shown_set}
        # Rescued-away ads: the rescuer took over; drop our copy before
        # it can produce a duplicate.
        invalidated |= self._revoked.pop(user_id, set())
        for sid in invalidated:
            state.delivered_unshown.pop(sid, None)
        return invalidated

    def rescue(self, user_id: str, now: float) -> list[Sale]:
        """Re-replicate at-risk sales onto an actively consuming client.

        Called when a client's cache runs dry mid-epoch: that client is
        *certain* to display ads right now, which makes it the perfect
        host for sold-but-unshown ads nearest their deadlines. Returns
        up to ``rescue_batch`` sales (possibly none).
        """
        state = self._clients[user_id]
        self._last_contact[user_id] = now
        horizon = now + self.config.rescue_horizon
        # An owner is "safely idle" when it has been out of contact long
        # enough that any display it made must have been reported by now
        # (the beacon bound), and it has not been active this epoch.
        epoch_start = math.floor(now / self.config.epoch_s) * self.config.epoch_s
        quiet_since = min(epoch_start, now - self.config.report_delay_s)
        desperate_by = now + 0.25 * self.config.epoch_s
        picked: list[Sale] = []
        skipped: list[tuple[float, int, Sale]] = []
        while self._at_risk and len(picked) < self.config.rescue_batch:
            deadline, sid, sale = heapq.heappop(self._at_risk)
            if sid in self.shown_set or deadline <= now:
                continue  # settled or hopeless: drop from the heap
            if deadline > horizon:
                # Nearest at-risk deadline is still comfortably far: the
                # statically planned replicas keep their chance to show
                # it without a duplicate.
                skipped.append((deadline, sid, sale))
                break
            owners = self._sale_owners.setdefault(sid, set())
            skipped.append((deadline, sid, sale))  # still at risk until shown
            if user_id in owners:
                continue
            # Duplicate guard: leave the sale alone while any replica
            # host has been active this epoch (it is consuming its queue
            # and will reach the ad), unless the deadline is imminent.
            if deadline > desperate_by and any(
                    self._last_contact.get(o, -1.0) >= quiet_since
                    for o in owners):
                continue
            # Transfer ownership: idle hosts lose their copy at their
            # next contact, before they can display it.
            for other in owners:
                self._revoked.setdefault(other, set()).add(sid)
                self._clients[other].delivered_unshown.pop(sid, None)
            owners.add(user_id)
            state.delivered_unshown[sid] = deadline
            picked.append(sale)
        for entry in skipped:
            heapq.heappush(self._at_risk, entry)
        self.rescues += len(picked)
        self._rescue_counter.inc(len(picked))
        if picked and self._recorder.enabled:
            self._recorder.instant(now, "server", "rescue",
                                   args={"user": user_id,
                                         "n_sales": len(picked)})
        return picked

    def record_display(self, sale_id: int, user_id: str, time: float) -> None:
        """Ground-truth display record (settlement input).

        Protocol-visible knowledge still travels via :meth:`sync`
        reports; this log only feeds end-of-run settlement.
        """
        self.display_log.record(sale_id, user_id, time)

    def realtime_fill(self, now: float, category: str,
                      platform: str) -> Sale | None:
        """Cache-miss fallback. Returns the sale to fetch, or None."""
        if self.config.fallback == "house":
            self.unfilled_slots += 1
            self._unfilled_counter.inc()
            return None
        sale = self.exchange.sell_now(now, category=category,
                                      platform=platform)
        if sale is None:
            self.unfilled_slots += 1
            self._unfilled_counter.inc()
            return None
        self.fallback_billed += sale.price
        self.fallback_impressions += 1
        self._fallback_counter.inc()
        return sale

    # ------------------------------------------------------------------
    # Settlement
    # ------------------------------------------------------------------

    def finalize(self) -> tuple[list[SaleOutcome], SlaReport, RevenueReport]:
        """Settle every sale at the end of the run."""
        outcomes, sla = settle_sla(self.all_sales, self.display_log)
        revenue = settle_revenue(
            outcomes, self.exchange,
            billed_fallback=self.fallback_billed,
            fallback_impressions=self.fallback_impressions,
            unfilled_slots=self.unfilled_slots,
        )
        _log.debug("finalize: %d sales, %d syncs, %d rescues, "
                   "%d fallback fills, %d unfilled slots",
                   len(self.all_sales), self.syncs, self.rescues,
                   self.fallback_impressions, self.unfilled_slots)
        return outcomes, sla, revenue

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def mean_replication_factor(self) -> float:
        factors = [s.replication_factor for s in self.plan_stats if s.sold]
        return float(np.mean(factors)) if factors else 0.0

    def predictor_of(self, user_id: str) -> SlotPredictor:
        return self._clients[user_id].predictor
