"""S8 — the prefetching ad server (sell-ahead, dispatch, reconciliation)."""

from .adserver import AdServer, EpochPlanStats, ServerConfig, SyncResponse

__all__ = ["AdServer", "ServerConfig", "SyncResponse", "EpochPlanStats"]
