"""Vectorized shard-execution backend (``ShardJob.backend == "batched"``).

The event-driven engine charges every radio transfer, auction, and
rescue through per-object Python dispatch. That is the executable
specification — easy to audit against the paper — but it caps
single-shard throughput. This module supplies drop-in components that
keep the *protocol order* identical (server dispatch, auctions, and
rescue still happen event by event, because cross-user interaction
order matters there) while turning the per-user and per-campaign hot
loops into array operations:

* :class:`LogDevice` — records transfers and settles radio energy
  vectorially at the end of the run instead of running the
  :class:`~repro.radio.statemachine.RadioStateMachine` per transfer.
* :class:`BatchedExchange` — campaign eligibility as boolean masks over
  bid/budget arrays instead of a per-auction list comprehension that
  touches every campaign object.
* :class:`BatchedAdServer` — the at-risk rescue scan over flat deadline
  arrays instead of re-heapifying the at-risk heap on every dry cache.
* :class:`CachedCurve` — memoizes saturated show-curve buckets, which
  the dispatch policy queries hundreds of times per epoch.

Equivalence contract
--------------------
Each replacement reproduces the event engine's observable behaviour
draw-for-draw: the same RNG streams are consumed in the same order, so
sales, schedules, and fault decisions are identical, and the energy
arithmetic applies the exact scalar formulas elementwise. In practice
the backends are bit-identical; :data:`DEFAULT_CONTRACT` is the formal
per-metric bound CI enforces (and whose parameters are hashed into the
:class:`~repro.obs.manifest.RunManifest`), so any future batched
optimisation that trades exactness for speed must widen the contract
visibly. See DESIGN.md §10.

This module is a shard entry point for ``repro-lint``'s
interprocedural pass: everything reachable from it must satisfy the
RPR006 purity contract (no module-global or process state), so a
re-dispatched shard replays bit-identically on any worker.

Liveness/progress signals are not this module's job: the epoch loop
that drives both backends (:mod:`repro.experiments.harness`) emits a
per-shard heartbeat at every epoch boundary through
:func:`repro.obs.live.shard_heartbeat` — a sim-time trace instant plus,
when the live telemetry plane is active, an out-of-band ``ShardBeat``
— so batched shards report progress (and feed the crash flight
recorder's ring) identically to event-driven shards. See DESIGN.md
§12.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
from typing import Iterator, Mapping, Sequence

import numpy as np

from repro.core.showcurve import MAX_DEPTH, DispatchCurve
from repro.exchange.campaign import ANY, Campaign
from repro.exchange.marketplace import Exchange, Sale
from repro.obs.runtime import current_obs
from repro.radio.profiles import RadioProfile
from repro.server.adserver import AdServer, SyncResponse

TAG_AD = "ad"
TAG_APP = "app"


# ----------------------------------------------------------------------
# Radio: deferred vectorized settlement
# ----------------------------------------------------------------------


class LogDevice:
    """Device that logs transfers and settles radio energy in one pass.

    Duck-types :class:`repro.client.device.Device` for every caller in
    the harness (``ad_fetch`` / ``app_request`` / ``app_streaming`` /
    ``finish`` plus the reporting accessors). Transfers are appended to
    flat arrays; :meth:`finish` replays the promotion/tail recurrence
    once and computes all per-transfer energies elementwise, applying
    the same scalar formulas as
    :class:`~repro.radio.statemachine.RadioStateMachine` so the settled
    per-tag energies are bit-identical.

    The state *timeline* is not recorded — jobs that need it
    (experiment E12) must use the event backend.
    """

    __slots__ = ("user_id", "profile", "ad_bytes", "app_bytes",
                 "_req", "_dur", "_tags", "_last_req", "_wakeups",
                 "_energy_by_tag", "_finalized")

    def __init__(self, user_id: str, profile: RadioProfile,
                 keep_timeline: bool = False) -> None:
        if keep_timeline:
            raise ValueError(
                "LogDevice cannot keep a radio timeline; use the event "
                "backend for timeline-instrumented runs")
        self.user_id = user_id
        self.profile = profile
        self.ad_bytes = 0
        self.app_bytes = 0
        self._req: list[float] = []
        self._dur: list[float] = []
        self._tags: list[str] = []
        self._last_req = -math.inf
        self._wakeups = 0
        self._energy_by_tag: dict[str, float] = {}
        self._finalized = False

    # -- logging ------------------------------------------------------

    def _log(self, now: float, duration: float, tag: str) -> None:
        if self._finalized:
            raise RuntimeError("device already finalized")
        if now < self._last_req:
            raise ValueError(
                f"transfers must be chronological: {now} < {self._last_req}")
        if duration < 0:
            raise ValueError("duration must be non-negative")
        self._last_req = now
        self._req.append(now)
        self._dur.append(duration)
        self._tags.append(tag)

    def ad_fetch(self, now: float, nbytes: int, extra_s: float = 0.0) -> None:
        self.ad_bytes += nbytes
        duration = self.profile.transfer_time(nbytes)
        if extra_s > 0.0:
            duration += extra_s
        self._log(now, duration, TAG_AD)

    def app_request(self, now: float, nbytes: int) -> None:
        self.app_bytes += nbytes
        self._log(now, self.profile.transfer_time(nbytes), TAG_APP)

    def app_streaming(self, now: float, duration: float) -> None:
        self.app_bytes += int(duration * self.profile.throughput)
        self._log(now, float(duration), TAG_APP)

    # -- settlement ---------------------------------------------------

    def finish(self, horizon: float | None = None) -> None:
        """Settle every transfer's promotion/active/tail energy at once."""
        if self._finalized:
            return
        self._finalized = True
        n = len(self._req)
        current_obs().metrics.counter("batched.transfers.settled").inc(n)
        if n == 0:
            return
        profile = self.profile
        promo_time = profile.promo_time
        promo_low_time = profile.promo_low_time
        high_tail_time = profile.high_tail_time
        tail_time = profile.tail_time
        req = self._req
        dur = self._dur
        # Pass 1 — the timing recurrence (start_k depends on end_{k-1}).
        eff = [0.0] * n
        end = [0.0] * n
        promo_code = [0] * n        # 0 = hot, 1 = low promo, 2 = full promo
        wakeups = 0
        prev_end = 0.0
        for k in range(n):
            r = req[k]
            effective = r if r > prev_end else prev_end
            if k == 0:
                code = 2
                wakeups += 1
                start = effective + promo_time
            else:
                gap = effective - prev_end
                if gap <= 0.0 or gap < high_tail_time:
                    code = 0
                    start = effective
                elif gap < tail_time:
                    code = 1
                    start = effective + promo_low_time
                else:
                    code = 2
                    wakeups += 1
                    start = effective + promo_time
            eff[k] = effective
            prev_end = start + dur[k]
            end[k] = prev_end
            promo_code[k] = code
        self._wakeups = wakeups
        # Pass 2 — elementwise energy over the gap structure.
        dur_a = np.asarray(dur)
        end_a = np.asarray(end)
        promo_choices = np.array([
            0.0,
            profile.promo_power * promo_low_time,
            profile.promo_energy,
        ])
        promo = promo_choices[np.asarray(promo_code, dtype=np.intp)]
        active = profile.active_power * dur_a
        tail = np.zeros(n)
        if n > 1:
            elapsed = np.asarray(eff)[1:] - end_a[:-1]
            high = np.minimum(elapsed, high_tail_time)
            low = np.minimum(np.maximum(elapsed - high_tail_time, 0.0),
                             profile.low_tail_time)
            inner = (profile.high_tail_power * high
                     + profile.low_tail_power * low)
            # A transfer that queued behind the in-flight one (gap <= 0)
            # never owns a settled tail; a gap past the full tail pays
            # the profile constant exactly.
            inner[elapsed <= 0.0] = 0.0
            inner[elapsed >= tail_time] = profile.tail_energy
            tail[:-1] = inner
        last_end = end[n - 1]
        if horizon is not None and horizon < last_end + tail_time:
            elapsed_last = max(horizon, last_end) - last_end
            high_last = min(elapsed_last, high_tail_time)
            low_last = min(max(elapsed_last - high_tail_time, 0.0),
                           profile.low_tail_time)
            tail[n - 1] = (profile.high_tail_power * high_last
                           + profile.low_tail_power * low_last)
        else:
            tail[n - 1] = profile.tail_energy
        # Pass 3 — per-tag accumulation in the event engine's exact
        # order (tail of k-1 lands before promo+active of k), so the
        # float sums match the incremental accountant bit for bit.
        energy = self._energy_by_tag
        tags = self._tags
        promo_l = promo.tolist()
        active_l = active.tolist()
        tail_l = tail.tolist()
        for k in range(n):
            if k:
                prev_tag = tags[k - 1]
                energy[prev_tag] = energy.get(prev_tag, 0.0) + tail_l[k - 1]
            tag = tags[k]
            energy[tag] = energy.get(tag, 0.0) + promo_l[k] + active_l[k]
        final_tag = tags[n - 1]
        energy[final_tag] = energy.get(final_tag, 0.0) + tail_l[n - 1]

    # -- reporting ----------------------------------------------------

    def energy_by_tag(self) -> dict[str, float]:
        return dict(self._energy_by_tag)

    def ad_energy(self) -> float:
        return self._energy_by_tag.get(TAG_AD, 0.0)

    def app_energy(self) -> float:
        return self._energy_by_tag.get(TAG_APP, 0.0)

    @property
    def wakeups(self) -> int:
        return self._wakeups

    @property
    def transfer_count(self) -> int:
        return len(self._req)


# ----------------------------------------------------------------------
# Exchange: array-backed campaign eligibility
# ----------------------------------------------------------------------


class _EligibleView(Sequence[Campaign]):
    """Lazy list-like view over the eligible campaign indices.

    :func:`~repro.exchange.auction.run_auction` only indexes at most
    ``max_bidders`` entries, so the view avoids materialising (and
    touching) every eligible campaign object per auction.
    """

    __slots__ = ("_campaigns", "_idx")

    def __init__(self, campaigns: list[Campaign], idx: np.ndarray) -> None:
        self._campaigns = campaigns
        self._idx = idx

    def __len__(self) -> int:
        return int(self._idx.size)

    def __bool__(self) -> bool:
        return self._idx.size > 0

    def __getitem__(self, i: int) -> Campaign:
        return self._campaigns[self._idx[i]]

    def __iter__(self) -> Iterator[Campaign]:
        campaigns = self._campaigns
        for i in self._idx.tolist():
            yield campaigns[i]


class BatchedExchange(Exchange):
    """Exchange whose demand-side views are boolean-mask lookups.

    Budgets live in a float array kept in lockstep with the campaign
    objects (resynced from ``budget - spent`` after every charge or
    refund, so the array compare is the same float compare the
    ``Campaign.active`` property performs). Targeting is immutable, so
    per-(category, platform) masks are computed once. Auctions consume
    the shared RNG stream exactly like the base class — same eligible
    order, same lengths, same draws — so sale sequences are identical.
    """

    def __init__(self, campaigns: list[Campaign], auction_config,
                 rng: np.random.Generator,
                 component: str = "exchange") -> None:
        super().__init__(campaigns, auction_config, rng,
                         component=component)
        self._bids = np.array([c.bid for c in self.campaigns])
        self._remaining = np.array([c.budget - c.spent
                                    for c in self.campaigns])
        self._categories = np.array([c.category for c in self.campaigns])
        self._platforms = np.array([c.platform for c in self.campaigns])
        self._index_of = {c.campaign_id: i
                          for i, c in enumerate(self.campaigns)}
        self._target_masks: dict[tuple[str, str], np.ndarray] = {}
        self._active_flags = self._remaining >= self._bids
        # flatnonzero(target & active) per (category, platform), valid
        # until any campaign's active bit flips (rare: roughly once per
        # campaign per run, vs one auction per slot).
        self._eligible_idx: dict[tuple[str, str], np.ndarray] = {}

    # -- bookkeeping --------------------------------------------------

    def _set_remaining(self, row: int, value: float) -> None:
        self._remaining[row] = value
        active = value >= self._bids[row]
        if active != self._active_flags[row]:
            self._active_flags[row] = active
            self._eligible_idx.clear()

    def _resync(self, campaign: Campaign) -> None:
        self._set_remaining(self._index_of[campaign.campaign_id],
                            campaign.budget - campaign.spent)

    def _eligible_rows(self, category: str, platform: str) -> np.ndarray:
        key = (category, platform)
        idx = self._eligible_idx.get(key)
        if idx is None:
            idx = np.flatnonzero(self._target_mask(category, platform)
                                 & self._active_flags)
            self._eligible_idx[key] = idx
        return idx

    def _target_mask(self, category: str, platform: str) -> np.ndarray:
        key = (category, platform)
        mask = self._target_masks.get(key)
        if mask is None:
            mask = (((self._categories == ANY)
                     | (self._categories == category))
                    & ((self._platforms == ANY)
                       | (self._platforms == platform)))
            self._target_masks[key] = mask
        return mask

    # -- demand-side views --------------------------------------------

    def eligible(self, category: str = ANY,
                 platform: str = ANY) -> _EligibleView:
        return _EligibleView(self.campaigns,
                             self._eligible_rows(category, platform))

    def active_campaigns(self) -> int:
        return int(self._active_flags.sum())

    # -- selling ------------------------------------------------------

    def sell_now(self, now: float, category: str = ANY,
                 platform: str = ANY) -> Sale | None:
        """Real-time auction, inlined over the bid/budget arrays.

        This is the hottest call in a shard (one per on-screen slot on
        both the real-time baseline and the prefetch fallback path), so
        it reimplements ``Exchange.sell_now`` +
        :func:`~repro.exchange.auction.run_auction` without building the
        per-auction bidder list. RNG discipline: the stream sees the
        same calls with the same arguments in the same order as the
        event path — ``choice`` only when the pool exceeds
        ``max_bidders``, then one sized ``lognormal`` — and the
        winner/price arithmetic reuses the identical numpy expressions,
        so sales and prices are bit-identical.
        """
        config = self.auction_config
        idx = self._eligible_rows(category, platform)
        n = int(idx.size)
        self._auction_counter.inc()
        if n == 0:
            self.unsold_count += 1
            return None
        if n > config.max_bidders:
            picks = self.rng.choice(n, size=config.max_bidders,
                                    replace=False)
            bidder_idx = idx[picks]
        else:
            bidder_idx = idx
        base = self._bids[bidder_idx]
        jitter = self.rng.lognormal(mean=0.0, sigma=config.bid_jitter_sigma,
                                    size=base.size)
        bids = base * jitter
        live = bids >= config.reserve_price
        n_live = int(live.sum())
        if n_live == 0:
            self.unsold_count += 1
            return None
        bids = np.where(live, bids, -np.inf)
        order = np.argsort(bids)
        row = int(bidder_idx[order[-1]])
        if n_live >= 2:
            price = max(float(bids[order[-2]]), config.reserve_price)
        else:
            price = config.reserve_price
        winner = self.campaigns[row]
        # Inlined Exchange._record + the sell_now settlement.
        sale = Sale(sale_id=next(self._sale_ids),
                    campaign_id=winner.campaign_id, price=price,
                    creative_bytes=winner.creative_bytes,
                    sold_at=now, deadline=float("inf"))
        self.booked_revenue += price
        self.sales_count += 1
        self._sold_counter.inc()
        self._price_hist.observe(price)
        winner.charge(price)
        self.billed_revenue += price
        self._set_remaining(row, winner.budget - winner.spent)
        if self._recorder.enabled:
            self._recorder.instant(
                now, self.component, "auction.now",
                args={"sale": sale.sale_id, "campaign": sale.campaign_id})
        return sale

    def sell_ahead(self, now: float, count: int, deadline: float,
                   platform: str = ANY) -> list[Sale]:
        """Epoch bulk sale, vectorized over the campaign arrays.

        Replicates ``Exchange.sell_ahead`` +
        :func:`~repro.exchange.auction.run_bulk_auctions` with the
        bidder pool taken from the active-flag array instead of the
        per-campaign list comprehension. RNG consumption (one ``choice``
        per offered slot when the pool exceeds ``max_bidders``, then a
        single jitter matrix) and the winner/price arithmetic are the
        identical numpy expressions, so the sale sequence is
        bit-identical.
        """
        if deadline <= now:
            raise ValueError("deadline must be after the sale time")
        config = self.auction_config
        rng = self.rng
        sales: list[Sale] = []
        if count <= 0:
            self._auction_counter.inc(0)
        else:
            idx = np.flatnonzero(self._active_flags
                                 & ((self._platforms == ANY)
                                    | (self._platforms == platform)))
            n_eligible = int(idx.size)
            if n_eligible == 0:
                self.unsold_count += count
                self._auction_counter.inc(count)
            else:
                n_bidders = min(n_eligible, config.max_bidders)
                if n_eligible > config.max_bidders:
                    participant_idx = np.stack([
                        rng.choice(n_eligible, size=n_bidders,
                                   replace=False)
                        for _ in range(count)
                    ])
                else:
                    participant_idx = np.tile(np.arange(n_eligible),
                                              (count, 1))
                jitter = rng.lognormal(0.0, config.bid_jitter_sigma,
                                       size=(count, n_bidders))
                bids = self._bids[idx][participant_idx] * jitter
                bids[bids < config.reserve_price] = -np.inf
                order = np.argsort(bids, axis=1)
                self._auction_counter.inc(count)
                campaigns = self.campaigns
                for row in range(count):
                    row_bids = bids[row]
                    live = np.isfinite(row_bids).sum()
                    if live == 0:
                        self.unsold_count += 1
                        continue
                    win_col = int(order[row, -1])
                    if live >= 2:
                        price = max(float(row_bids[order[row, -2]]),
                                    config.reserve_price)
                    else:
                        price = config.reserve_price
                    crow = int(idx[int(participant_idx[row, win_col])])
                    winner = campaigns[crow]
                    # Commit the budget now; billing waits for delivery
                    # (inlined Exchange._record).
                    winner.charge(price)
                    sales.append(Sale(
                        sale_id=next(self._sale_ids),
                        campaign_id=winner.campaign_id, price=price,
                        creative_bytes=winner.creative_bytes,
                        sold_at=now, deadline=deadline))
                    self.booked_revenue += price
                    self.sales_count += 1
                    self._sold_counter.inc()
                    self._price_hist.observe(price)
                    self._set_remaining(crow, winner.budget - winner.spent)
        if self._recorder.enabled:
            self._recorder.instant(
                now, self.component, "auction.ahead",
                args={"n_offered": count, "n_sold": len(sales)})
        return sales

    def settle_violated(self, sale: Sale) -> None:
        super().settle_violated(sale)
        self._resync(self._by_id[sale.campaign_id])


# ----------------------------------------------------------------------
# Show curve: saturated-bucket memoization
# ----------------------------------------------------------------------


class CachedCurve:
    """Memoizing facade over a :class:`DispatchCurve`.

    Once a prediction bucket is saturated (``total >= min_samples``),
    ``at_least`` is a pure function of ``(window, bucket, depth)``; the
    base estimator still recomputes the Poisson prior on every call.
    Unsaturated buckets fall through to the exact blended path (which
    depends on the raw prediction and cannot be memoized). The cache is
    invalidated whenever new observations land (once per planning
    epoch).
    """

    __slots__ = ("_dispatch", "sla_window", "dup_window", "_cache",
                 "_estimator_of")

    def __init__(self, dispatch: DispatchCurve) -> None:
        self._dispatch = dispatch
        self.sla_window = dispatch.sla_window
        self.dup_window = dispatch.dup_window
        self._cache: dict[tuple[int, int, int], float] = {}
        # The two windows are fixed at construction; resolve their
        # estimators once instead of per query.
        self._estimator_of = {
            window: dispatch.windowed.curve_for(window)
            for window in sorted({dispatch.sla_window, dispatch.dup_window})
        }

    def invalidate(self) -> None:
        self._cache.clear()

    def _at_least(self, window: int, predicted: float, j: int) -> float:
        if j <= 0:
            return 1.0
        estimator = self._estimator_of[window]
        bucket = estimator.saturated_bucket(predicted)
        if bucket is None:
            return estimator.at_least(predicted, j)
        depth = min(j, MAX_DEPTH)
        key = (window, bucket, depth)
        value = self._cache.get(key)
        if value is None:
            value = estimator.empirical_tail(bucket, depth)
            self._cache[key] = value
        return value

    def sla(self, predicted: float, j: int) -> float:
        return self._at_least(self.sla_window, predicted, j)

    def epoch(self, predicted: float, j: int) -> float:
        return self._at_least(self.dup_window, predicted, j)

    def at_least(self, predicted: float, j: int) -> float:
        return self.sla(predicted, j)


# ----------------------------------------------------------------------
# Ad server: flat-array rescue scan
# ----------------------------------------------------------------------


class BatchedAdServer(AdServer):
    """Ad server with an array-backed at-risk scan.

    Sales enter the at-risk set in ``(deadline, sale_id)`` order (every
    epoch's deadline strictly exceeds the previous epoch's), so the
    event engine's heap pops are equivalent to a forward scan over flat
    arrays. :meth:`rescue` walks the in-horizon candidates in row order
    and applies the exact guard-and-handoff sequence of the base
    implementation, touching only live ``_sale_owners`` /
    ``_last_contact`` state — so picks, revocations, and counters are
    identical call for call.

    The quiet-owner guard is evaluated as an array compare against a
    per-row *freshness* column: ``_r_fresh[row]`` is the max
    ``_last_contact`` over the sale's owners (``-inf`` for ownerless
    rows, the per-owner ``-1.0`` never-contacted default otherwise),
    maintained incrementally at every contact via a user → rows index.
    Owner sets only shrink inside the presumed-dark sweep, so that hook
    rebuilds the column wholesale; everywhere else owners are add-only
    and the running max stays exact.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._dispatch_curve = CachedCurve(self._dispatch_curve)
        self._r_deadlines = np.empty(0)
        self._r_sids: list[int] = []
        self._r_sales: list[Sale] = []
        self._r_shown = np.empty(0, dtype=bool)
        self._r_fresh = np.empty(0)
        self._r_row_of: dict[int, int] = {}
        self._r_head = 0
        self._rows_of_user: dict[str, list[int]] = {}

    # -- at-risk bookkeeping ------------------------------------------

    def plan_epoch(self, epoch_index: int, now: float):
        self._dispatch_curve.invalidate()
        cursor = len(self.all_sales)
        stats = super().plan_epoch(epoch_index, now)
        new = self.all_sales[cursor:]
        if new:
            if (self._r_sales
                    and new[0].deadline < float(self._r_deadlines[-1])):
                raise AssertionError(
                    "at-risk deadlines must be non-decreasing")
            base = len(self._r_sales)
            fresh_new = np.empty(len(new))
            last_contact = self._last_contact
            rows_of_user = self._rows_of_user
            for offset, sale in enumerate(new):
                row = base + offset
                self._r_row_of[sale.sale_id] = row
                self._r_sids.append(sale.sale_id)
                self._r_sales.append(sale)
                best = -math.inf
                for owner in self._sale_owners.get(sale.sale_id, ()):
                    rows_of_user.setdefault(owner, []).append(row)
                    contact = last_contact.get(owner, -1.0)
                    if contact > best:
                        best = contact
                fresh_new[offset] = best
            self._r_deadlines = np.concatenate(
                [self._r_deadlines, [s.deadline for s in new]])
            self._r_shown = np.concatenate(
                [self._r_shown, np.zeros(len(new), dtype=bool)])
            self._r_fresh = np.concatenate([self._r_fresh, fresh_new])
        return stats

    def _bump_fresh(self, user_id: str, now: float) -> None:
        """Raise the freshness of every live row ``user_id`` owns.

        Settled rows (behind the head, or already shown) can never
        re-enter the candidate window, so they are pruned from the
        user's row list on the way past — the lists stay at the user's
        live backlog size instead of growing for the whole run.
        """
        rows = self._rows_of_user.get(user_id)
        if not rows:
            return
        fresh = self._r_fresh
        shown = self._r_shown
        head = self._r_head
        keep: list[int] = []
        for row in rows:
            if row < head or shown[row]:
                continue
            keep.append(row)
            if fresh[row] < now:
                fresh[row] = now
        if len(keep) != len(rows):
            rows[:] = keep

    def sync(self, user_id: str, now: float,
             reports: list[tuple[int, float]]) -> SyncResponse:
        response = super().sync(user_id, now, reports)
        self._bump_fresh(user_id, now)
        return response

    def _rescue_presumed_dark(self, now: float) -> set[str]:
        dark = super()._rescue_presumed_dark(now)
        # The sweep discards owners (the running max may drop) and
        # redispatches orphans (new ownership): rebuild the freshness
        # column and the user -> rows index over the live window.
        last_contact = self._last_contact
        sale_owners = self._sale_owners
        fresh = self._r_fresh
        rows_of_user: dict[str, list[int]] = {}
        for row in range(self._r_head, len(self._r_sales)):
            best = -math.inf
            for owner in sale_owners.get(self._r_sids[row], ()):
                rows_of_user.setdefault(owner, []).append(row)
                contact = last_contact.get(owner, -1.0)
                if contact > best:
                    best = contact
            fresh[row] = best
        self._rows_of_user = rows_of_user
        return dark

    def report(self, user_id: str,
               reports: list[tuple[int, float]]) -> set[int]:
        invalidated = super().report(user_id, reports)
        row_of = self._r_row_of
        shown = self._r_shown
        for sale_id, _time in reports:
            row = row_of.get(sale_id)
            if row is not None:
                shown[row] = True
        return invalidated

    # -- rescue -------------------------------------------------------

    def rescue(self, user_id: str, now: float) -> list[Sale]:
        state = self._clients[user_id]
        self._last_contact[user_id] = now
        self._bump_fresh(user_id, now)
        fresh = self._r_fresh
        horizon = now + self.config.rescue_horizon
        epoch_start = (math.floor(now / self.config.epoch_s)
                       * self.config.epoch_s)
        quiet_since = min(epoch_start, now - self.config.report_delay_s)
        desperate_by = now + 0.25 * self.config.epoch_s
        deadlines = self._r_deadlines
        shown = self._r_shown
        n_rows = len(self._r_sales)
        # Advance past the permanently settled prefix.
        head = self._r_head
        while head < n_rows and (shown[head]
                                 or float(deadlines[head]) <= now):
            head += 1
        self._r_head = head
        picked: list[Sale] = []
        if head < n_rows:
            hi = int(np.searchsorted(deadlines, horizon, side="right"))
            window_dl = deadlines[head:hi]
            # The quiet-owner guard vectorized: a live row survives when
            # its deadline is desperate or every owner has been silent
            # since ``quiet_since`` (``any(contact >= quiet_since)`` ==
            # ``fresh >= quiet_since``; an ownerless row's -inf never
            # blocks it, matching ``any(()) == False``).
            pickable = head + np.flatnonzero(
                ~shown[head:hi] & (window_dl > now)
                & ((window_dl <= desperate_by)
                   | (fresh[head:hi] < quiet_since)))
            sale_owners = self._sale_owners
            batch = self.config.rescue_batch
            for row in pickable.tolist():
                sale = self._r_sales[row]
                sid = sale.sale_id
                owners = sale_owners.setdefault(sid, set())
                if user_id in owners:
                    continue
                for other in owners:
                    self._revoked.setdefault(other, set()).add(sid)
                    self._clients[other].delivered_unshown.pop(sid, None)
                owners.add(user_id)
                self._rows_of_user.setdefault(user_id, []).append(row)
                if fresh[row] < now:
                    fresh[row] = now
                state.delivered_unshown[sid] = sale.deadline
                picked.append(sale)
                if len(picked) >= batch:
                    break
        self.rescues += len(picked)
        self._rescue_counter.inc(len(picked))
        if picked and self._recorder.enabled:
            self._recorder.instant(now, "server", "rescue",
                                   args={"user": user_id,
                                         "n_sales": len(picked)})
        return picked


# ----------------------------------------------------------------------
# Equivalence contract
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True, slots=True)
class MetricTolerance:
    """Per-metric bound: ``|a - b| <= abs_tol + rel_tol * max(|a|, |b|)``."""

    rel_tol: float = 0.0
    abs_tol: float = 0.0

    def holds(self, a: float, b: float) -> bool:
        return abs(a - b) <= self.abs_tol + self.rel_tol * max(abs(a), abs(b))


#: Exact equality (integer counters and anything claimed bit-identical).
EXACT = MetricTolerance()

#: Float accumulators: the backends are bit-identical by construction,
#: but the contract grants a few ulp of headroom so an intentionally
#: re-associated future optimisation fails loudly in review (the digest
#: changes) rather than silently in CI.
FLOAT_SUM = MetricTolerance(rel_tol=1e-9)


@dataclasses.dataclass(frozen=True)
class ToleranceContract:
    """The documented per-metric equivalence bound between backends.

    ``digest()`` is recorded in the run manifest of every batched run,
    so two artifact directories are comparable exactly when their
    contract hashes agree. Metrics not named here must match exactly.
    """

    name: str = "batched-v1"
    metrics: tuple[tuple[str, MetricTolerance], ...] = (
        ("prefetch.energy.ad_joules", FLOAT_SUM),
        ("prefetch.energy.app_joules", FLOAT_SUM),
        ("prefetch.revenue.billed_prefetch", FLOAT_SUM),
        ("prefetch.revenue.billed_fallback", FLOAT_SUM),
        ("prefetch.revenue.voided", FLOAT_SUM),
        ("prefetch.sla.violation_rate", FLOAT_SUM),
        ("prefetch.mean_replication", FLOAT_SUM),
        ("realtime.energy.ad_joules", FLOAT_SUM),
        ("realtime.energy.app_joules", FLOAT_SUM),
        ("realtime.billed_revenue", FLOAT_SUM),
    )

    def tolerance_for(self, metric: str) -> MetricTolerance:
        for name, tolerance in self.metrics:
            if name == metric:
                return tolerance
        return EXACT

    def digest(self) -> str:
        payload = json.dumps(
            {"name": self.name,
             "metrics": {name: [t.rel_tol, t.abs_tol]
                         for name, t in self.metrics}},
            sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


DEFAULT_CONTRACT = ToleranceContract()


def _energy_metrics(prefix: str, energy) -> dict[str, float]:
    return {
        f"{prefix}.energy.ad_joules": energy.ad_joules,
        f"{prefix}.energy.app_joules": energy.app_joules,
        f"{prefix}.energy.wakeups": float(energy.wakeups),
        f"{prefix}.energy.ad_bytes": float(energy.ad_bytes),
        f"{prefix}.energy.app_bytes": float(energy.app_bytes),
    }


def prefetch_metrics(outcome) -> dict[str, float]:
    """Flatten a :class:`PrefetchOutcome` into contract-addressable metrics."""
    flat = _energy_metrics("prefetch", outcome.energy)
    flat.update({
        "prefetch.revenue.billed_prefetch": outcome.revenue.billed_prefetch,
        "prefetch.revenue.billed_fallback": outcome.revenue.billed_fallback,
        "prefetch.revenue.voided": outcome.revenue.voided,
        "prefetch.revenue.duplicate_impressions": float(
            outcome.revenue.duplicate_impressions),
        "prefetch.sla.violation_rate": outcome.sla.violation_rate,
        "prefetch.sla.n_sales": float(outcome.sla.n_sales),
        "prefetch.sla.n_violated": float(outcome.sla.n_violated),
        "prefetch.cached_displays": float(outcome.cached_displays),
        "prefetch.rescued_displays": float(outcome.rescued_displays),
        "prefetch.fallback_displays": float(outcome.fallback_displays),
        "prefetch.house_displays": float(outcome.house_displays),
        "prefetch.wasted_downloads": float(outcome.wasted_downloads),
        "prefetch.mean_replication": outcome.mean_replication,
        "prefetch.syncs": float(outcome.syncs),
    })
    return flat


def realtime_metrics(outcome) -> dict[str, float]:
    """Flatten a :class:`RealtimeOutcome` into contract-addressable metrics."""
    flat = _energy_metrics("realtime", outcome.energy)
    flat.update({
        "realtime.billed_revenue": outcome.billed_revenue,
        "realtime.impressions": float(outcome.impressions),
        "realtime.unfilled_slots": float(outcome.unfilled_slots),
    })
    return flat


def contract_violations(event: Mapping[str, float],
                        batched: Mapping[str, float],
                        contract: ToleranceContract = DEFAULT_CONTRACT
                        ) -> list[str]:
    """Human-readable list of metrics outside the contract (empty = pass)."""
    problems: list[str] = []
    for name in sorted(set(event) | set(batched)):
        a = event.get(name)
        b = batched.get(name)
        if a is None or b is None:
            problems.append(f"{name}: present in only one backend")
            continue
        if not contract.tolerance_for(name).holds(a, b):
            problems.append(
                f"{name}: event={a!r} batched={b!r} exceeds "
                f"{contract.tolerance_for(name)}")
    return problems


def assert_equivalent(event: Mapping[str, float],
                      batched: Mapping[str, float],
                      contract: ToleranceContract = DEFAULT_CONTRACT
                      ) -> None:
    """Raise ``AssertionError`` when the backends diverge past the contract."""
    problems = contract_violations(event, batched, contract)
    if problems:
        raise AssertionError(
            "backend equivalence violated:\n  " + "\n  ".join(problems))
