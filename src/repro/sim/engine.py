"""Discrete-event simulation engine.

The engine maintains a priority queue of :class:`~repro.sim.events.Event`
objects and advances a simulated clock from event to event. All simulated
components (clients, the ad server, the exchange) schedule work through a
shared engine instance, which makes runs fully deterministic for a fixed
master seed.

Example
-------
>>> eng = Engine()
>>> hits = []
>>> eng.schedule_at(5.0, hits.append, (5,))
>>> eng.schedule_at(1.0, hits.append, (1,))
>>> eng.run()
>>> hits
[1, 5]
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import current_obs

from .events import PRIORITY_NORMAL, Event, make_event

#: Signature of the optional :meth:`Engine.run` observer hook:
#: ``on_event(processed_count, sim_time_s)`` after each fired event.
EventHook = Callable[[int, float], None]


class SimulationError(RuntimeError):
    """Raised on scheduling misuse (e.g. scheduling into the past)."""


class Engine:
    """Single-threaded discrete-event scheduler.

    Parameters
    ----------
    start_time:
        Initial value of the simulated clock, in seconds.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: list[Event] = []
        self._running = False
        self._stop_requested = False
        self._processed = 0
        obs = current_obs()
        self._metrics = obs.metrics
        self._recorder = obs.recorder
        self._events_counter = obs.metrics.counter("engine.events")

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def metrics(self) -> MetricsRegistry:
        """The observability registry this engine counts into.

        Exposed so callbacks and harness code can read (or add)
        instruments mid-run — e.g. poll ``engine.events`` between
        epochs — without reaching for the process-global context.
        """
        return self._metrics

    @property
    def processed_events(self) -> int:
        """Number of (non-cancelled) events fired so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued, including cancelled ones."""
        return len(self._queue)

    def schedule_at(self, time: float, callback: Callable[..., Any],
                    args: tuple = (), priority: int = PRIORITY_NORMAL) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``.

        Returns the :class:`Event`, which callers may ``cancel()``.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time:.6f}, clock already at {self._now:.6f}")
        event = make_event(time, callback, args, priority)
        heapq.heappush(self._queue, event)
        return event

    def schedule_after(self, delay: float, callback: Callable[..., Any],
                       args: tuple = (), priority: int = PRIORITY_NORMAL) -> Event:
        """Schedule ``callback(*args)`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule_at(self._now + delay, callback, args, priority)

    def run(self, until: float | None = None,
            max_events: int | None = None,
            on_event: EventHook | None = None) -> float:
        """Process events in timestamp order.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time. Events scheduled at
            exactly ``until`` still fire; the clock is left at ``until``
            (or at the last event time if the queue drains first).
        max_events:
            Safety valve: stop after firing this many events.
        on_event:
            Optional observer called as ``on_event(processed, now_s)``
            after every fired event. Observers must not mutate
            simulation state — they exist for mid-run observability
            (progress meters, watchdogs calling :meth:`stop`).

        Returns
        -------
        float
            The simulated time at which the run stopped.
        """
        self._running = True
        self._stop_requested = False
        stopped = False
        fired = 0
        started_at = self._now
        try:
            while self._queue:
                if self._stop_requested:
                    stopped = True
                    break
                if max_events is not None and fired >= max_events:
                    break
                event = self._queue[0]
                if event.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._queue)
                self._now = event.time
                event.fire()
                self._processed += 1
                fired += 1
                if on_event is not None:
                    on_event(self._processed, self._now)
        finally:
            self._running = False
            self._stop_requested = False
        if not stopped and until is not None and self._now < until:
            self._now = until
        self._events_counter.inc(fired)
        if self._recorder.enabled:
            self._recorder.complete(started_at, self._now - started_at,
                                    "engine", "run",
                                    args={"n_events": fired})
        return self._now

    def stop(self) -> None:
        """Request that a :meth:`run` in progress return after the
        current event.

        Intended to be called from an event callback (or a watchdog
        event) to abort a long shard run cleanly: pending events stay
        queued, the clock stays at the last fired event, and a later
        ``run()`` resumes where the aborted one left off. A no-op when
        the engine is idle.
        """
        if self._running:
            self._stop_requested = True

    def step(self) -> bool:
        """Fire the single next pending event.

        Returns ``True`` if an event fired, ``False`` if the queue is
        empty (cancelled events are silently discarded).
        """
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.fire()
            self._processed += 1
            self._events_counter.inc()
            return True
        return False

    def peek_time(self) -> float | None:
        """Timestamp of the next live event, or ``None`` if drained."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None
