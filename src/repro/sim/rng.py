"""Deterministic random-number streams.

Every stochastic component draws from its own named stream derived from a
single master seed. Named derivation (rather than ``SeedSequence.spawn``
order) means adding a new component never perturbs the draws of existing
ones, which keeps experiment results stable as the codebase grows.
"""

from __future__ import annotations

import hashlib

import numpy as np


def _seed_for(master_seed: int, name: str) -> np.random.SeedSequence:
    digest = hashlib.sha256(f"{master_seed}:{name}".encode()).digest()
    # Four 32-bit words of entropy are plenty for PCG64.
    words = [int.from_bytes(digest[i:i + 4], "little") for i in range(0, 16, 4)]
    return np.random.SeedSequence(words)


class RngRegistry:
    """Factory for named, reproducible :class:`numpy.random.Generator` streams.

    >>> reg = RngRegistry(master_seed=7)
    >>> a = reg.stream("traces")
    >>> b = reg.stream("traces")
    >>> a is b
    True
    """

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = int(master_seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        if name not in self._streams:
            self._streams[name] = np.random.Generator(
                np.random.PCG64(_seed_for(self.master_seed, name)))
        return self._streams[name]

    def fresh(self, name: str) -> np.random.Generator:
        """Return a brand-new generator for ``name``, ignoring the cache.

        Useful in tests that need to replay a stream from its start.
        """
        return np.random.Generator(np.random.PCG64(_seed_for(self.master_seed, name)))

    def names(self) -> list[str]:
        """Names of streams created so far (sorted for determinism)."""
        return sorted(self._streams)
