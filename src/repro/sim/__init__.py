"""S1 — discrete-event simulation kernel (engine, events, RNG streams)."""

from .engine import Engine, SimulationError
from .events import PRIORITY_HIGH, PRIORITY_LOW, PRIORITY_NORMAL, Event, make_event
from .processes import Process, every, spawn
from .rng import RngRegistry

__all__ = [
    "Engine",
    "SimulationError",
    "Event",
    "make_event",
    "PRIORITY_HIGH",
    "PRIORITY_LOW",
    "PRIORITY_NORMAL",
    "RngRegistry",
    "Process",
    "spawn",
    "every",
]
