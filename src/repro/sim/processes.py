"""Coroutine-style processes on top of the event engine.

The end-to-end harness uses the flat epoch loop for speed, but several
smaller simulations (and downstream users of the kernel) are clearer as
processes that ``yield`` delays:

>>> eng = Engine()
>>> log = []
>>> def worker(name, period, count):
...     for i in range(count):
...         yield period
...         log.append((eng.now, name, i))
>>> _ = spawn(eng, worker("a", 2.0, 3))
>>> _ = spawn(eng, worker("b", 3.0, 2))
>>> _ = eng.run()
>>> log
[(2.0, 'a', 0), (3.0, 'b', 0), (4.0, 'a', 1), (6.0, 'b', 1), (6.0, 'a', 2)]
"""

from __future__ import annotations

from typing import Generator, Iterator

from .engine import Engine
from .events import PRIORITY_NORMAL

ProcessGenerator = Generator[float, None, None] | Iterator[float]


class Process:
    """A running generator whose yielded values are delays in seconds."""

    def __init__(self, engine: Engine, generator: ProcessGenerator,
                 priority: int = PRIORITY_NORMAL) -> None:
        self._engine = engine
        self._generator = generator
        self._priority = priority
        self.alive = True
        self.steps = 0

    def _step(self) -> None:
        if not self.alive:
            return
        try:
            delay = next(self._generator)
        except StopIteration:
            self.alive = False
            return
        if delay is None or delay < 0:
            raise ValueError(
                f"process yielded invalid delay {delay!r}; yield a "
                "non-negative number of seconds")
        self.steps += 1
        self._engine.schedule_after(float(delay), self._step,
                                    priority=self._priority)

    def interrupt(self) -> None:
        """Stop the process; its pending event becomes a no-op."""
        self.alive = False
        self._generator.close()


def spawn(engine: Engine, generator: ProcessGenerator,
          start_delay: float = 0.0,
          priority: int = PRIORITY_NORMAL) -> Process:
    """Register ``generator`` as a process starting ``start_delay`` from now."""
    process = Process(engine, generator, priority)
    engine.schedule_after(start_delay, process._step, priority=priority)
    return process


def every(engine: Engine, period: float, callback, *args,
          until: float | None = None) -> Process:
    """Convenience: run ``callback(*args)`` every ``period`` seconds.

    Stops (if ``until`` is given) once the next tick would pass it.
    """
    if period <= 0:
        raise ValueError("period must be positive")

    def ticker():
        while True:
            yield period
            if until is not None and engine.now > until:
                return
            callback(*args)

    return spawn(engine, ticker())
