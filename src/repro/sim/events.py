"""Event primitives for the discrete-event simulation kernel.

Events carry an absolute firing time (simulated seconds), a priority used
to order simultaneous events deterministically, and a callback. A
monotonically increasing sequence number breaks remaining ties so that
runs are reproducible regardless of heap internals.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

#: Default priority for ordinary events.
PRIORITY_NORMAL = 100
#: Priority for bookkeeping that must run before normal events at the
#: same timestamp (e.g. deadline expiry checks).
PRIORITY_HIGH = 10
#: Priority for events that must observe the effects of everything else
#: scheduled at the same timestamp (e.g. metric snapshots).
PRIORITY_LOW = 1000

_sequence = itertools.count()


@dataclass(order=True, slots=True)
class Event:
    """A single scheduled callback.

    Ordering is (time, priority, seq); the callback and its arguments do
    not participate in comparisons.
    """

    time: float
    priority: int
    seq: int = field(compare=True)
    callback: Callable[..., Any] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped.

        Cancellation is O(1); the heap entry is lazily discarded.
        """
        self.cancelled = True

    def fire(self) -> None:
        """Invoke the callback unless the event was cancelled."""
        if not self.cancelled:
            self.callback(*self.args)


def make_event(time: float, callback: Callable[..., Any], args: tuple = (),
               priority: int = PRIORITY_NORMAL) -> Event:
    """Build an :class:`Event` with a fresh global sequence number."""
    return Event(time=time, priority=priority, seq=next(_sequence),
                 callback=callback, args=args)
