"""The coordinator: lease-based dispatch with stealing and retries.

One :class:`Coordinator` drives one run's shard set to completion over
an unreliable worker fleet, without ever touching a simulation object:

* **Dispatch** — every shard is offered on the transport as a
  :class:`~repro.dist.protocol.JobEnvelope` with a lease window; the
  shared jobs queue makes claiming self-balancing.
* **Work-stealing** — a claimed job whose lease expires (no result, no
  heartbeat) is re-offered with ``attempt + 1``; whichever idle worker
  claims it steals the work. The original execution, if it ever
  delivers, is discarded as a duplicate by shard index.
* **Heartbeat-driven retry** — shard heartbeats flow through the
  existing :class:`~repro.obs.live.LivePlane`; its
  :class:`~repro.obs.live.LiveAggregator` watchdog's stall events
  (wall-clock beat silence) expire the lease *early*, so a hung worker
  is stolen from long before the full lease elapses.
* **Worker loss** — a dead worker process (chaos kill, OOM, SIGKILL)
  has its leased shards requeued immediately, a ``lost`` postmortem
  written per shard, and a replacement spawned while work remains.
* **Bounded retry** — each shard is dispatched at most
  ``max_attempts`` times; exhaustion raises :class:`DistError` rather
  than silently dropping a shard from the merge.
* **Deterministic merge** — :meth:`Coordinator.run` returns exactly
  one :class:`~repro.runner.ShardResult` per shard index, in shard
  order, regardless of arrival order, duplicates, or which attempt
  won. Shard execution is pure (RPR006), so every attempt of a shard
  yields the same bits and the merged run equals the pool run.

The coordinator is an execution-plane component: wall clocks are fair
game here (leases, joins, polls) because nothing in this module feeds
into simulation results.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

from repro.faults.chaos import CoordinatorChaos
from repro.obs import log as obs_log
from repro.obs.flightrec import Postmortem
from repro.obs.live import LiveOptions, LivePlane, StragglerEvent

from .protocol import (
    PROTOCOL_VERSION,
    JobAck,
    JobEnvelope,
    JobNack,
    ResultEnvelope,
    WorkerBeat,
    WorkerHello,
)
from .transport import ManagerTransport, Transport

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    import multiprocessing.process

    from repro.runner import ShardResult, ShardTask

_log = obs_log.get_logger("dist.coordinator")


class DistError(RuntimeError):
    """A shard could not be completed within the retry budget."""


@dataclass(frozen=True, slots=True)
class DistStats:
    """Execution-plane accounting for one distributed run.

    Deliberately kept *out* of the merged
    :class:`~repro.obs.metrics.MetricsSnapshot`: retries and duplicate
    discards are properties of the unreliable substrate, not of the
    simulation, and folding them in would break the bit-identity
    contract between executors.
    """

    workers: int
    workers_spawned: int = 0
    workers_lost: int = 0
    requeues: int = 0
    stall_steals: int = 0
    duplicates_discarded: int = 0
    nacks: int = 0
    attempts: int = 0


@dataclass(slots=True)
class _ShardState:
    """Coordinator-side lifecycle of one shard."""

    task: "ShardTask"
    job_id: str
    attempt: int = 0
    worker_id: str = ""
    deadline: float = 0.0
    done: bool = False
    last_reason: str = ""


@dataclass(slots=True)
class _WorkerHandle:
    """One spawned worker process and what it currently holds."""

    worker_id: str
    process: "multiprocessing.process.BaseProcess"
    lost_handled: bool = False
    jobs_done: int = 0


def _job_id(shard_index: int) -> str:
    """Stable job id for a shard (attempts ride the envelope)."""
    return f"shard-{shard_index:03d}"


@dataclass(slots=True)
class _Hooks:
    """Thread-safe mailbox for watchdog events (drain-thread → loop)."""

    lock: threading.Lock = field(default_factory=threading.Lock)
    stalled: list[int] = field(default_factory=list)

    def on_straggler(self, event: StragglerEvent) -> None:
        if event.kind != "stall":
            return
        with self.lock:
            self.stalled.append(event.shard_index)

    def drain(self) -> list[int]:
        with self.lock:
            out, self.stalled = self.stalled, []
        return out


class Coordinator:
    """Drives one run's shards to completion over worker processes.

    Parameters
    ----------
    tasks:
        The run's :class:`~repro.runner.ShardTask` list (one per shard
        index, as built by :meth:`repro.runner.Runner._tasks`).
    workers:
        Worker processes to keep alive while undone shards remain
        (clamped to the shard count; lost workers are respawned).
    live:
        :class:`~repro.obs.live.LiveOptions` for the telemetry plane
        the coordinator always runs — heartbeats are its failure
        detector, not an optional nicety. ``None`` uses quiet
        defaults.
    chaos:
        Optional :class:`~repro.faults.CoordinatorChaos` plan shipped
        to workers (seeded kills / duplicates / delays).
    transport:
        Transport backend; ``None`` builds a
        :class:`~repro.dist.transport.ManagerTransport`. An injected
        transport is not closed by the coordinator.
    lease_s:
        Lease window per dispatch; an expired lease is requeued.
    max_attempts:
        Dispatch budget per shard; exhaustion raises
        :class:`DistError`.
    """

    def __init__(self, tasks: Sequence["ShardTask"], *, workers: int,
                 live: LiveOptions | None = None,
                 chaos: CoordinatorChaos | None = None,
                 transport: Transport | None = None,
                 system: str = "", backend: str = "",
                 lease_s: float = 120.0, max_attempts: int = 3,
                 poll_s: float = 0.05) -> None:
        if not tasks:
            raise ValueError("tasks must be non-empty")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.tasks = list(tasks)
        self.workers = min(int(workers), len(self.tasks))
        self.live = live if live is not None else LiveOptions()
        self.chaos = chaos if chaos is not None and not chaos.is_empty \
            else None
        self._transport = transport
        self._owns_transport = transport is None
        self.system = system
        self.backend = backend
        self.lease_s = float(lease_s)
        self.max_attempts = int(max_attempts)
        self.poll_s = float(poll_s)
        self._hooks = _Hooks()
        self._shards: dict[int, _ShardState] = {}
        self._handles: dict[str, _WorkerHandle] = {}
        self._results: dict[int, "ShardResult"] = {}
        self._worker_seq = 0
        self._spawned = 0
        self._lost = 0
        self._requeues = 0
        self._stall_steals = 0
        self._duplicates = 0
        self._nacks = 0
        self._attempts = 0
        self.postmortems: list[Path] = []
        self.plane: LivePlane | None = None

    # -- public API ---------------------------------------------------

    def run(self) -> list["ShardResult"]:
        """Execute every shard; results in shard-index order.

        Raises :class:`DistError` when any shard exhausts its retry
        budget or the worker fleet cannot make progress. Always tears
        down workers, the live plane, and an owned transport.
        """
        transport = self._transport
        if transport is None:
            transport = self._transport = ManagerTransport()
        plane = LivePlane(self.live, n_shards=len(self.tasks),
                          system=self.system, backend=self.backend,
                          parallel=True,
                          on_straggler=self._hooks.on_straggler)
        self.plane = plane
        plane.start()
        failed = False
        try:
            for task in self.tasks:
                index = task.shard_index
                self._shards[index] = _ShardState(
                    task=task, job_id=_job_id(index))
                self._offer(self._shards[index])
            for _ in range(self.workers):
                self._spawn_worker(transport, plane)
            while len(self._results) < len(self._shards):
                item = transport.collect(self.poll_s)
                if item is not None:
                    self._handle(item)
                self._steal_stalled()
                self._check_leases()
                self._check_workers(transport, plane)
        except BaseException:
            failed = True
            raise
        finally:
            self._shutdown(transport, plane, failed=failed)
        return [self._results[i] for i in sorted(self._results)]

    @property
    def stats(self) -> DistStats:
        """Execution-plane accounting (after :meth:`run`)."""
        return DistStats(
            workers=self.workers,
            workers_spawned=self._spawned,
            workers_lost=self._lost,
            requeues=self._requeues,
            stall_steals=self._stall_steals,
            duplicates_discarded=self._duplicates,
            nacks=self._nacks,
            attempts=self._attempts,
        )

    # -- dispatch -----------------------------------------------------

    def _offer(self, state: _ShardState) -> None:
        assert self._transport is not None
        envelope = JobEnvelope(
            job_id=state.job_id,
            shard_index=state.task.shard_index,
            n_shards=state.task.n_shards,
            attempt=state.attempt,
            lease_s=self.lease_s,
        )
        state.worker_id = ""
        state.deadline = time.monotonic() + self.lease_s
        self._attempts += 1
        self._transport.offer(envelope, state.task)

    def _requeue(self, state: _ShardState, reason: str, *,
                 stolen: bool = False) -> None:
        """Re-dispatch one undone shard with the next attempt number."""
        if state.done:
            return
        if state.attempt + 1 >= self.max_attempts:
            raise DistError(
                f"shard {state.task.shard_index} failed after "
                f"{state.attempt + 1} attempt(s): {reason}")
        state.attempt += 1
        state.last_reason = reason
        self._requeues += 1
        if stolen:
            self._stall_steals += 1
        if self.plane is not None:
            self.plane.aggregator.reset_shard(state.task.shard_index)
        _log.warning("re-dispatching shard %d (attempt %d): %s",
                     state.task.shard_index, state.attempt, reason)
        self._offer(state)

    def _spawn_worker(self, transport: Transport, plane: LivePlane) -> None:
        import multiprocessing

        worker_id = f"w{self._worker_seq}"
        self._worker_seq += 1
        from .worker import worker_main

        process = multiprocessing.Process(
            target=worker_main,
            args=(transport.worker_endpoint(), worker_id),
            kwargs={"live": plane.worker_setup(), "chaos": self.chaos},
            name=f"repro-dist-{worker_id}",
            daemon=True,
        )
        process.start()
        self._handles[worker_id] = _WorkerHandle(worker_id=worker_id,
                                                 process=process)
        self._spawned += 1

    # -- control-plane handling ---------------------------------------

    def _handle(self, item: tuple[object, object]) -> None:
        message, payload = item
        if isinstance(message, WorkerHello):
            if message.protocol != PROTOCOL_VERSION:
                raise DistError(
                    f"worker {message.worker_id} speaks protocol "
                    f"{message.protocol}, coordinator speaks "
                    f"{PROTOCOL_VERSION}")
            return
        if isinstance(message, WorkerBeat):
            handle = self._handles.get(message.worker_id)
            if handle is not None:
                handle.jobs_done = message.jobs_done
            return
        if isinstance(message, JobAck):
            state = self._shards.get(message.shard_index)
            if state is None or state.done or \
                    message.attempt != state.attempt:
                return  # stale claim of a finished or superseded attempt
            state.worker_id = message.worker_id
            state.deadline = time.monotonic() + self.lease_s
            return
        if isinstance(message, JobNack):
            self._nacks += 1
            state = self._shards.get(message.shard_index)
            if state is None or state.done or \
                    message.attempt != state.attempt:
                return
            self._requeue(state, f"worker {message.worker_id} nacked: "
                                 f"{message.reason}")
            return
        if isinstance(message, ResultEnvelope):
            self._handle_result(message, payload)

    def _handle_result(self, message: ResultEnvelope,
                       payload: object) -> None:
        from repro.runner import ShardResult

        state = self._shards.get(message.shard_index)
        if state is None:
            return
        if state.done:
            # A stolen lease's original execution (or a chaos
            # duplicate) delivered late: pure-function shards make the
            # copy bit-identical, so dropping it is free.
            self._duplicates += 1
            _log.info("discarding duplicate result for shard %d "
                      "(attempt %d from %s)", message.shard_index,
                      message.attempt, message.worker_id)
            return
        if not isinstance(payload, ShardResult):
            self._requeue(state, f"worker {message.worker_id} delivered a "
                                 f"malformed result payload "
                                 f"({type(payload).__name__})")
            return
        state.done = True
        state.worker_id = ""
        self._results[message.shard_index] = payload

    # -- failure detection --------------------------------------------

    def _steal_stalled(self) -> None:
        """Expire leases of shards the heartbeat watchdog flagged."""
        for shard_index in self._hooks.drain():
            state = self._shards.get(shard_index)
            if state is None or state.done:
                continue
            self._requeue(state,
                          f"heartbeat silence > "
                          f"{self.live.stall_after_s:.1f}s; stealing lease "
                          f"from {state.worker_id or 'unclaimed'}",
                          stolen=True)

    def _check_leases(self) -> None:
        now = time.monotonic()
        for state in self._shards.values():
            if state.done or now < state.deadline:
                continue
            self._requeue(state,
                          f"lease expired after {self.lease_s:.1f}s "
                          f"(held by {state.worker_id or 'nobody'})",
                          stolen=bool(state.worker_id))

    def _check_workers(self, transport: Transport,
                       plane: LivePlane) -> None:
        undone = any(not s.done for s in self._shards.values())
        for handle in list(self._handles.values()):
            if handle.lost_handled or handle.process.is_alive():
                continue
            handle.lost_handled = True
            self._lost += 1
            code = handle.process.exitcode
            _log.warning("worker %s exited (code %s)", handle.worker_id,
                         code)
            for state in self._shards.values():
                if state.done or state.worker_id != handle.worker_id:
                    continue
                self._write_lost_postmortem(state, handle, plane)
                self._requeue(state,
                              f"worker {handle.worker_id} lost "
                              f"(exit code {code}) holding attempt "
                              f"{state.attempt}")
            if undone:
                self._spawn_worker(transport, plane)
        if undone and not any(h.process.is_alive()
                              for h in self._handles.values()):
            raise DistError("no live workers remain and shards are "
                            "still undone")

    def _write_lost_postmortem(self, state: _ShardState,
                               handle: _WorkerHandle,
                               plane: LivePlane) -> None:
        view = plane.aggregator.view(state.task.shard_index)
        postmortem = Postmortem(
            kind="lost",
            shard_index=state.task.shard_index,
            n_shards=state.task.n_shards,
            system=self.system,
            backend=self.backend,
            reason=(f"worker {handle.worker_id} exited (code "
                    f"{handle.process.exitcode}) holding shard "
                    f"{state.task.shard_index} attempt {state.attempt}; "
                    "re-dispatching"),
            last_beat=(view.last_beat.to_jsonable()
                       if view.last_beat is not None else None),
        )
        path = postmortem.write_to(plane.postmortem_dir)
        plane.note_postmortem(path)
        if path not in self.postmortems:
            self.postmortems.append(path)

    # -- teardown -----------------------------------------------------

    def _shutdown(self, transport: Transport, plane: LivePlane,
                  failed: bool) -> None:
        for _ in self._handles:
            try:
                transport.offer_stop()
            except (OSError, EOFError, BrokenPipeError):
                break
        for handle in self._handles.values():
            handle.process.join(timeout=2.0)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=1.0)
        # Workers are gone, so every send has landed: drain the
        # farewell traffic so duplicate accounting is complete. Pure
        # bookkeeping — a teardown drain must never raise.
        while True:
            item = transport.collect(0.0)
            if item is None:
                break
            message = item[0]
            if isinstance(message, ResultEnvelope):
                state = self._shards.get(message.shard_index)
                if state is not None and state.done:
                    self._duplicates += 1
        plane.finish(failed=failed)
        for path in plane.postmortems:
            if path not in self.postmortems:
                self.postmortems.append(path)
        if self._owns_transport:
            transport.close()
