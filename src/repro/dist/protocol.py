"""The coordinator/worker wire contract.

Every control message that crosses the transport is one of the frozen
keyword-only dataclasses below, each carrying plain scalar fields only
— so a message both pickles across a ``multiprocessing`` queue *and*
round-trips through JSON (:meth:`to_jsonable` / :func:`message_from_
jsonable`), which is what a future socket/multi-host transport needs.
The messages sit inside the repro-lint RPR007 serialization closure
next to :class:`~repro.experiments.harness.ShardJob`: no callables,
handles, locks, or lambda defaults may ever creep into their fields.

Payloads (the :class:`~repro.runner.ShardTask` a job carries, the
:class:`~repro.runner.ShardResult` a result delivers) deliberately ride
*beside* the envelope as a transport-level pair, not inside it: the
envelope is the routable header — small, versioned, JSON-clean — and
the payload is whatever the executor's serializer (pickle today)
moves. A multi-host transport swaps the payload codec without touching
the protocol.

Wire compatibility is versioned by :data:`PROTOCOL_VERSION`, stamped
into every :class:`WorkerHello`; the coordinator rejects a worker whose
protocol differs rather than guessing.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Mapping

#: Wire-format version; bump on any message shape change.
PROTOCOL_VERSION = 1

#: ``type`` tag → message class (filled by ``_register``).
MESSAGE_TYPES: dict[str, type] = {}


def _register(cls: type) -> type:
    MESSAGE_TYPES[cls.__name__] = cls
    return cls


class _Jsonable:
    """Shared JSON round-trip for the flat scalar message dataclasses."""

    def to_jsonable(self) -> dict[str, object]:
        """Plain-JSON form, tagged with the message ``type``."""
        payload: dict[str, object] = {"type": type(self).__name__}
        for spec in fields(self):  # type: ignore[arg-type]
            payload[spec.name] = getattr(self, spec.name)
        return payload

    @classmethod
    def from_jsonable(cls, payload: Mapping[str, object]) -> "_Jsonable":
        """Inverse of :meth:`to_jsonable`; one-line errors on junk."""
        tag = payload.get("type", cls.__name__)
        if tag != cls.__name__:
            raise ValueError(
                f"message type {tag!r} is not a {cls.__name__}")
        known = {spec.name for spec in fields(cls)}  # type: ignore[arg-type]
        unknown = sorted(set(payload) - known - {"type"})
        if unknown:
            raise ValueError(
                f"unknown {cls.__name__} field(s): {unknown}")
        kwargs = {key: value for key, value in payload.items()
                  if key != "type"}
        return cls(**kwargs)  # type: ignore[arg-type]


@_register
@dataclass(frozen=True, slots=True, kw_only=True)
class WorkerHello(_Jsonable):
    """First message a worker sends: identity + wire version."""

    worker_id: str
    pid: int = 0
    protocol: int = PROTOCOL_VERSION


@_register
@dataclass(frozen=True, slots=True, kw_only=True)
class WorkerBeat(_Jsonable):
    """Worker-level liveness (distinct from per-shard ShardBeats).

    Sent when a worker is idle between claims, so the coordinator can
    tell "alive but starved" from "gone" even when no shard is
    executing on it.
    """

    worker_id: str
    busy: bool = False
    job_id: str = ""
    jobs_done: int = 0


@_register
@dataclass(frozen=True, slots=True, kw_only=True)
class JobEnvelope(_Jsonable):
    """The routable header of one dispatched shard job.

    ``job_id`` names the shard (stable across attempts); ``attempt``
    counts dispatches of that shard, so a stolen lease's re-dispatch is
    distinguishable from the original on the wire. ``lease_s`` is the
    coordinator's promise window: a claimed job with no result and no
    heartbeat for that long is requeued for any other worker to steal.
    """

    job_id: str
    shard_index: int
    n_shards: int
    attempt: int = 0
    lease_s: float = 120.0


@_register
@dataclass(frozen=True, slots=True, kw_only=True)
class JobAck(_Jsonable):
    """A worker claimed a job: the lease now has an owner and a clock."""

    worker_id: str
    job_id: str
    shard_index: int
    attempt: int


@_register
@dataclass(frozen=True, slots=True, kw_only=True)
class JobNack(_Jsonable):
    """A worker gave a job back: the shard raised (reason says why).

    A nack is an *orderly* failure — the worker survives and keeps
    claiming. Worker loss has no message at all; the coordinator infers
    it from heartbeat silence and process death.
    """

    worker_id: str
    job_id: str
    shard_index: int
    attempt: int
    reason: str = ""


@_register
@dataclass(frozen=True, slots=True, kw_only=True)
class ResultEnvelope(_Jsonable):
    """A completed job's header; the ShardResult payload rides beside.

    ``ok`` is redundant with the presence of a payload today but keeps
    the header self-describing for transports whose payload channel is
    separate (a multi-host backend shipping results out of band).
    """

    worker_id: str
    job_id: str
    shard_index: int
    attempt: int
    ok: bool = True
    elapsed_s: float = 0.0


def message_from_jsonable(payload: Mapping[str, object]) -> object:
    """Decode any protocol message from its tagged plain-JSON form."""
    tag = payload.get("type")
    cls = MESSAGE_TYPES.get(str(tag))
    if cls is None:
        raise ValueError(
            f"unknown dist protocol message type {tag!r} "
            f"(expected one of {sorted(MESSAGE_TYPES)})")
    return cls.from_jsonable(payload)  # type: ignore[attr-defined]
