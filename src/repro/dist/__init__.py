"""repro.dist — coordinator/worker distributed shard runner.

Promotes the :class:`repro.runner.Runner` from a single-host process
pool to a **coordinator** that dispatches
:class:`~repro.runner.ShardTask`\\ s to worker processes over a
pluggable :class:`~repro.dist.transport.Transport`, with lease-based
work-stealing, heartbeat-silence retry, bounded requeue on worker
loss, and duplicate-result discard — all without changing a single
merged bit: shard execution is a pure function of the job (repro-lint
RPR006), so a dropped worker is just a re-executed pure function.

Layering (modelled on a coordinator-core / coordinator-node split):

* :mod:`~repro.dist.protocol` — the versioned wire contract: frozen
  keyword-only message dataclasses, all JSON-round-trippable.
* :mod:`~repro.dist.transport` — where envelopes travel: a
  ``multiprocessing.Manager`` queue backend today, with the seam
  documented for a socket/multi-host backend.
* :mod:`~repro.dist.worker` — the worker loop: claim → execute →
  stream :class:`~repro.obs.live.ShardBeat`\\ s → deliver.
* :mod:`~repro.dist.coordinator` — dispatch, leases, retries, and the
  deterministic shard-index-ordered result fold.

Select it with ``Runner(config, executor="dist", workers=N)`` or
``adprefetch ... --executor dist --workers N``; chaos-test it with a
:class:`repro.faults.CoordinatorChaos` plan (``--chaos plan.json``).
See DESIGN.md §13 for the lease/steal/retry state machine and the
bit-identity argument.
"""

from .coordinator import Coordinator, DistError, DistStats
from .protocol import (
    PROTOCOL_VERSION,
    JobAck,
    JobEnvelope,
    JobNack,
    ResultEnvelope,
    WorkerBeat,
    WorkerHello,
    message_from_jsonable,
)
from .transport import ManagerTransport, Transport, WorkerEndpoint

__all__ = [
    "Coordinator",
    "DistError",
    "DistStats",
    "JobAck",
    "JobEnvelope",
    "JobNack",
    "ManagerTransport",
    "PROTOCOL_VERSION",
    "ResultEnvelope",
    "Transport",
    "WorkerBeat",
    "WorkerEndpoint",
    "WorkerHello",
    "message_from_jsonable",
]
