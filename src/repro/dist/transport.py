"""Transports: where job and control envelopes travel.

The coordinator sees a :class:`Transport` (offer jobs, collect control
traffic); each worker sees the picklable :class:`WorkerEndpoint` the
transport hands out (claim jobs, send control messages). Every item on
the wire is an ``(envelope, payload)`` pair: the envelope is one of the
JSON-round-trippable :mod:`~repro.dist.protocol` messages, the payload
is the executor-serialized job or result body (pickle on the queue
backend), or ``None`` for pure control messages.

Backends
--------
:class:`ManagerTransport` — the in-tree backend: two
``multiprocessing.Manager`` queues (jobs down, control up) whose
proxies pickle across the process boundary. Work-stealing falls out of
the shared jobs queue: a requeued lease is claimed by whichever worker
is idle first.

The socket seam
---------------
A multi-host backend implements the same four methods with envelopes
as JSON lines (they already round-trip via ``to_jsonable`` /
``message_from_jsonable``) and payloads as length-prefixed blobs; the
coordinator and worker loops never touch queue types directly, so the
swap is a constructor argument — ``Coordinator(...,
transport=SocketTransport(...))`` — not a redesign. Keep any new
backend's :meth:`WorkerEndpoint.claim` a *blocking-with-timeout* call:
both loops are written against that contract.
"""

from __future__ import annotations

import queue as queue_mod
from abc import ABC, abstractmethod
from typing import Any

from .protocol import JobEnvelope

#: Sentinel offered once per worker at shutdown to end its claim loop.
STOP = "stop"


class WorkerEndpoint(ABC):
    """A worker's picklable handle onto the transport."""

    @abstractmethod
    def claim(self, timeout_s: float) -> tuple[Any, Any] | None:
        """Next ``(envelope, payload)`` job pair, or ``None`` on timeout.

        The envelope is a :class:`~repro.dist.protocol.JobEnvelope`, or
        the :data:`STOP` sentinel telling this worker to exit its loop.
        """

    @abstractmethod
    def send(self, message: object, payload: object = None) -> None:
        """Deliver one control message (+ optional payload) upstream."""


class Transport(ABC):
    """The coordinator's side of the channel."""

    @abstractmethod
    def offer(self, envelope: JobEnvelope, task: object) -> None:
        """Make one job claimable by any worker."""

    @abstractmethod
    def offer_stop(self) -> None:
        """Enqueue one :data:`STOP` sentinel (one per worker to stop)."""

    @abstractmethod
    def collect(self, timeout_s: float) -> tuple[Any, Any] | None:
        """Next upstream ``(message, payload)`` pair, or ``None``."""

    @abstractmethod
    def worker_endpoint(self) -> WorkerEndpoint:
        """A picklable endpoint to ship into a worker process."""

    def close(self) -> None:
        """Tear the channel down (base class: nothing to do)."""


class QueueWorkerEndpoint(WorkerEndpoint):
    """Endpoint over two ``multiprocessing.Manager`` queue proxies.

    Send failures are swallowed the same way the live plane's
    :class:`~repro.obs.live.QueueTransport` swallows them: if the
    coordinator is gone, a worker's farewell traffic must not turn
    into a crash loop.
    """

    def __init__(self, jobs: Any, control: Any) -> None:
        self._jobs = jobs
        self._control = control

    def claim(self, timeout_s: float) -> tuple[Any, Any] | None:
        try:
            item = self._jobs.get(timeout=max(0.0, timeout_s))
        except (queue_mod.Empty, OSError, EOFError, BrokenPipeError):
            return None
        return item  # type: ignore[no-any-return]

    def send(self, message: object, payload: object = None) -> None:
        try:
            self._control.put((message, payload))
        except (OSError, ValueError, EOFError, BrokenPipeError):
            pass  # coordinator gone: nothing useful left to say


class ManagerTransport(Transport):
    """Single-host backend over a ``multiprocessing.Manager``.

    The manager process owns both queues, so they survive any worker's
    death — including a chaos ``os._exit`` mid-protocol — and the
    queue proxies pickle into spawned worker processes.
    """

    def __init__(self) -> None:
        import multiprocessing

        self._manager = multiprocessing.Manager()
        self._jobs = self._manager.Queue()
        self._control = self._manager.Queue()

    def offer(self, envelope: JobEnvelope, task: object) -> None:
        self._jobs.put((envelope, task))

    def offer_stop(self) -> None:
        self._jobs.put((STOP, None))

    def collect(self, timeout_s: float) -> tuple[Any, Any] | None:
        try:
            if timeout_s > 0:
                item = self._control.get(timeout=timeout_s)
            else:
                item = self._control.get_nowait()
        except (queue_mod.Empty, OSError, EOFError, BrokenPipeError):
            return None
        return item  # type: ignore[no-any-return]

    def worker_endpoint(self) -> QueueWorkerEndpoint:
        return QueueWorkerEndpoint(self._jobs, self._control)

    def close(self) -> None:
        shutdown = getattr(self._manager, "shutdown", None)
        if shutdown is not None:
            shutdown()
