"""The worker loop: claim a job, execute the shard, deliver the result.

A worker is deliberately thin: all simulation work goes through
:func:`repro.runner.run_shard_task`, the same entry point the process
pool uses — so a shard computes bit-for-bit the same result on either
executor, live telemetry (:class:`~repro.obs.live.ShardBeat` streams)
flows through the same :class:`~repro.obs.live.BeatTransport`, and a
crashing shard writes the same flight-recorder postmortem via
:func:`repro.obs.flightrec.capture_shard_crash`.

Failure semantics:

* A shard that **raises** is an orderly failure: the worker sends a
  :class:`~repro.dist.protocol.JobNack` (the crash postmortem is
  already on disk) and keeps claiming.
* A worker that **dies** (chaos ``os._exit``, OOM kill, SIGKILL) sends
  nothing; the coordinator infers the loss from process death and
  heartbeat silence and re-dispatches the lease.

Chaos (:class:`repro.faults.CoordinatorChaos`) is evaluated *here*, on
the worker, after the result is computed — kills model the worst case
(work done, nothing delivered), duplicates exercise the coordinator's
discard-by-shard-index, and delays widen the steal window. Every
decision is a pure function of ``(plan, job_id, attempt)``, so chaos
runs replay exactly.
"""

from __future__ import annotations

import os
import time

from repro.faults.chaos import CoordinatorChaos, chaos_decision
from repro.obs.live import WorkerLiveSetup

from .protocol import JobAck, JobEnvelope, JobNack, ResultEnvelope, WorkerBeat, WorkerHello
from .transport import STOP, WorkerEndpoint

#: Exit code of a chaos-killed worker (distinguishable from crashes).
CHAOS_EXIT_CODE = 17

#: How long one claim call blocks before the worker idles/beats.
CLAIM_TIMEOUT_S = 0.25


def worker_main(endpoint: WorkerEndpoint, worker_id: str, *,
                live: WorkerLiveSetup | None = None,
                chaos: CoordinatorChaos | None = None,
                idle_beat_interval_s: float = 1.0) -> None:
    """Run one worker until a :data:`~repro.dist.transport.STOP` arrives.

    The process entry point the coordinator spawns (top-level, so it
    pickles under any ``multiprocessing`` start method). ``live`` is
    the same :class:`~repro.obs.live.WorkerLiveSetup` the pool path
    ships beside its tasks; it carries the beat transport, the flight
    recorder ring size, and the postmortem directory.
    """
    from repro.runner import run_shard_task

    endpoint.send(WorkerHello(worker_id=worker_id, pid=os.getpid()))
    jobs_done = 0
    last_idle_beat = -float("inf")
    while True:
        item = endpoint.claim(CLAIM_TIMEOUT_S)
        if item is None:
            now = time.monotonic()
            if now - last_idle_beat >= idle_beat_interval_s:
                endpoint.send(WorkerBeat(worker_id=worker_id,
                                         jobs_done=jobs_done))
                last_idle_beat = now
            continue
        envelope, task = item
        if envelope == STOP:
            return
        assert isinstance(envelope, JobEnvelope)
        endpoint.send(JobAck(worker_id=worker_id, job_id=envelope.job_id,
                             shard_index=envelope.shard_index,
                             attempt=envelope.attempt))
        started = time.perf_counter()
        try:
            result = run_shard_task(task, live)
        except Exception as exc:
            # run_shard_task already wrote the crash postmortem.
            endpoint.send(JobNack(
                worker_id=worker_id, job_id=envelope.job_id,
                shard_index=envelope.shard_index, attempt=envelope.attempt,
                reason=f"{type(exc).__name__}: {exc}"))
            continue
        decision = chaos_decision(chaos, envelope.job_id, envelope.attempt)
        if decision.delay_s > 0:
            time.sleep(decision.delay_s)
        if decision.kill:
            # The worst-case loss: the shard is fully computed, the
            # worker dies before a single byte of result is sent.
            os._exit(CHAOS_EXIT_CODE)
        reply = ResultEnvelope(
            worker_id=worker_id, job_id=envelope.job_id,
            shard_index=envelope.shard_index, attempt=envelope.attempt,
            elapsed_s=time.perf_counter() - started)
        endpoint.send(reply, result)
        if decision.duplicate:
            endpoint.send(reply, result)
        jobs_done += 1
