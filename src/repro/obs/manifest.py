"""Run manifests: the provenance record written next to every traced run.

A manifest pins everything needed to reproduce or compare a run: the
config (and its content hash), the master seed, the RNG stream-manifest
hash (``analysis/streams.json`` — a different hash means components
were re-seeded, see DESIGN.md §7), the shard layout, and the run's
counter totals. ``python -m repro obs summarize`` renders it back.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.experiments.config import ExperimentConfig

#: Manifest payload layout version.
MANIFEST_SCHEMA_VERSION = 1

#: File name a run directory is recognised by.
MANIFEST_FILENAME = "manifest.json"


def config_jsonable(config: "ExperimentConfig") -> dict[str, object]:
    """The config as a plain-JSON dict (stable field order).

    Round-trips through ``json`` so nested tuples (e.g. the fault
    plan's ``server_outages``) normalise to lists — a manifest read
    back from disk compares equal to the one that was written.
    """
    raw = json.loads(json.dumps(dataclasses.asdict(config), default=str))
    return {name: raw[name] for name in sorted(raw)}


def config_digest(config: "ExperimentConfig") -> str:
    """Content hash of the full config (sha256 over sorted JSON)."""
    payload = json.dumps(config_jsonable(config), sort_keys=True,
                         default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def streams_manifest_path() -> Path | None:
    """Locate ``analysis/streams.json`` (env override, then repo root).

    Returns ``None`` when the manifest is absent (e.g. an installed
    package outside the repository).
    """
    override = os.environ.get("REPRO_STREAMS_MANIFEST")
    if override:
        path = Path(override)
        return path if path.exists() else None
    candidate = Path(__file__).resolve().parents[3] / "analysis" / "streams.json"
    return candidate if candidate.exists() else None


def streams_manifest_hash() -> str | None:
    """sha256 of the committed RNG stream manifest, or ``None`` if absent."""
    path = streams_manifest_path()
    if path is None:
        return None
    return hashlib.sha256(path.read_bytes()).hexdigest()


@dataclasses.dataclass(frozen=True, slots=True)
class RunManifest:
    """Provenance record of one :meth:`repro.runner.Runner.run` call."""

    system: str
    seed: int
    config_hash: str
    n_shards: int
    parallelism: int
    trace_enabled: bool
    elapsed_s: float
    counter_totals: dict[str, float] = dataclasses.field(default_factory=dict)
    rng_stream_manifest_hash: str | None = None
    #: sha256 of the fault plan (``FaultPlan.digest()``); ``None`` for a
    #: fault-free run. Two runs are comparable exactly when their
    #: (config_hash, seed, fault_plan_hash) triples agree.
    fault_plan_hash: str | None = None
    #: Shard execution backend ("event" or "batched").
    backend: str = "event"
    #: ``ToleranceContract.digest()`` under which a batched run claims
    #: equivalence to the event engine; ``None`` for event runs.
    equivalence_contract_hash: str | None = None
    config: dict[str, object] = dataclasses.field(default_factory=dict)
    schema_version: int = MANIFEST_SCHEMA_VERSION

    def to_jsonable(self) -> dict[str, object]:
        """Plain-JSON form with sorted counter names."""
        return {
            "schema_version": self.schema_version,
            "system": self.system,
            "seed": self.seed,
            "config_hash": self.config_hash,
            "n_shards": self.n_shards,
            "parallelism": self.parallelism,
            "trace_enabled": self.trace_enabled,
            "elapsed_s": self.elapsed_s,
            "rng_stream_manifest_hash": self.rng_stream_manifest_hash,
            "fault_plan_hash": self.fault_plan_hash,
            "backend": self.backend,
            "equivalence_contract_hash": self.equivalence_contract_hash,
            "counter_totals": {name: self.counter_totals[name]
                               for name in sorted(self.counter_totals)},
            "config": self.config,
        }

    @classmethod
    def from_jsonable(cls, payload: dict[str, object]) -> "RunManifest":
        """Inverse of :meth:`to_jsonable` (tolerant of missing keys)."""
        def _i(key: str, default: int = 0) -> int:
            value = payload.get(key, default)
            return value if isinstance(value, int) else default

        def _f(key: str) -> float:
            value = payload.get(key, 0.0)
            return float(value) if isinstance(value, (int, float)) else 0.0

        totals_raw = payload.get("counter_totals", {})
        totals = ({str(k): float(v) for k, v in totals_raw.items()}
                  if isinstance(totals_raw, dict) else {})
        config_raw = payload.get("config", {})
        streams_raw = payload.get("rng_stream_manifest_hash")
        faults_raw = payload.get("fault_plan_hash")
        backend_raw = payload.get("backend")
        contract_raw = payload.get("equivalence_contract_hash")
        return cls(
            system=str(payload.get("system", "")),
            seed=_i("seed"),
            config_hash=str(payload.get("config_hash", "")),
            n_shards=_i("n_shards"),
            parallelism=_i("parallelism"),
            trace_enabled=bool(payload.get("trace_enabled", False)),
            elapsed_s=_f("elapsed_s"),
            counter_totals=totals,
            rng_stream_manifest_hash=(str(streams_raw)
                                      if isinstance(streams_raw, str)
                                      else None),
            fault_plan_hash=(str(faults_raw)
                             if isinstance(faults_raw, str) else None),
            backend=(str(backend_raw)
                     if isinstance(backend_raw, str) else "event"),
            equivalence_contract_hash=(str(contract_raw)
                                       if isinstance(contract_raw, str)
                                       else None),
            config=dict(config_raw) if isinstance(config_raw, dict) else {},
            schema_version=_i("schema_version", MANIFEST_SCHEMA_VERSION),
        )

    def write(self, path: str | Path) -> None:
        """Write the manifest as pretty JSON to ``path``."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.to_jsonable(), indent=2,
                                     sort_keys=True) + "\n",
                          encoding="utf-8")

    @classmethod
    def read(cls, path: str | Path) -> "RunManifest":
        """Load a manifest written by :meth:`write`."""
        loaded = json.loads(Path(path).read_text(encoding="utf-8"))
        if not isinstance(loaded, dict):
            raise ValueError(f"{path}: manifest is not a JSON object")
        return cls.from_jsonable(loaded)


def build_manifest(config: "ExperimentConfig", *, system: str,
                   n_shards: int, parallelism: int, trace_enabled: bool,
                   elapsed_s: float,
                   counter_totals: dict[str, float] | None = None,
                   backend: str = "event",
                   equivalence_contract_hash: str | None = None
                   ) -> RunManifest:
    """Assemble the manifest for one completed run."""
    return RunManifest(
        system=system,
        seed=config.seed,
        config_hash=config_digest(config),
        n_shards=n_shards,
        parallelism=parallelism,
        trace_enabled=trace_enabled,
        elapsed_s=elapsed_s,
        counter_totals=dict(counter_totals or {}),
        rng_stream_manifest_hash=streams_manifest_hash(),
        fault_plan_hash=(config.faults.digest()
                         if not config.faults.is_empty else None),
        backend=backend,
        equivalence_contract_hash=equivalence_contract_hash,
        config=config_jsonable(config),
    )
