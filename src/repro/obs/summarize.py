"""Render observability artifacts back into terminal tables.

``python -m repro obs summarize <dir>`` loads the ``run-NNN-*``
directories a traced (or metrics-enabled) command produced and prints,
per run: the manifest header, the per-component counters (auctions
held, ads dispatched, rescues, beacons, radio wakeups, ...), gauge
high-water marks, histogram summaries, and the per-phase wall-clock
profile including each shard's execution time.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from .manifest import MANIFEST_FILENAME, RunManifest
from .metrics import MetricsSnapshot
from .profile import RunProfile

#: File names inside one run directory.
METRICS_FILENAME = "metrics.json"
PROFILE_FILENAME = "profile.json"
TRACE_FILENAME = "trace.jsonl"
CHROME_FILENAME = "trace.chrome.json"


@dataclass(frozen=True, slots=True)
class RunRecord:
    """Everything loadable from one run directory."""

    path: Path
    manifest: RunManifest
    metrics: MetricsSnapshot | None
    profile: RunProfile | None

    @property
    def trace_path(self) -> Path | None:
        """The JSONL trace, when the run recorded one."""
        candidate = self.path / TRACE_FILENAME
        return candidate if candidate.exists() else None


def find_run_dirs(root: str | Path) -> list[Path]:
    """Run directories under ``root`` (or ``root`` itself), sorted.

    A run directory is recognised by its ``manifest.json``.
    """
    base = Path(root)
    if (base / MANIFEST_FILENAME).exists():
        return [base]
    if not base.is_dir():
        return []
    return sorted(child for child in base.iterdir()
                  if child.is_dir() and (child / MANIFEST_FILENAME).exists())


def load_run(path: str | Path) -> RunRecord:
    """Load one run directory's artifacts."""
    import json

    base = Path(path)
    manifest = RunManifest.read(base / MANIFEST_FILENAME)
    metrics: MetricsSnapshot | None = None
    metrics_path = base / METRICS_FILENAME
    if metrics_path.exists():
        loaded = json.loads(metrics_path.read_text(encoding="utf-8"))
        if isinstance(loaded, dict):
            metrics = MetricsSnapshot.from_jsonable(loaded)
    profile: RunProfile | None = None
    profile_path = base / PROFILE_FILENAME
    if profile_path.exists():
        loaded = json.loads(profile_path.read_text(encoding="utf-8"))
        if isinstance(loaded, dict):
            profile = RunProfile.from_jsonable(loaded)
    return RunRecord(path=base, manifest=manifest, metrics=metrics,
                     profile=profile)


def _fmt_num(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.4g}"


def render_run(record: RunRecord) -> str:
    """One run's full terminal rendering."""
    # Imported lazily: repro.metrics pulls simulator modules that
    # themselves import repro.obs at module load.
    from repro.metrics.summary import format_table

    manifest = record.manifest
    sections: list[str] = []
    streams = manifest.rng_stream_manifest_hash
    sections.append(
        f"## {record.path.name}\n"
        f"system={manifest.system} seed={manifest.seed} "
        f"shards={manifest.n_shards} parallelism={manifest.parallelism} "
        f"trace={'on' if manifest.trace_enabled else 'off'} "
        f"elapsed={manifest.elapsed_s:.2f}s\n"
        f"config_hash={manifest.config_hash[:16]} "
        f"streams_hash={streams[:16] if streams else 'n/a'}")
    if record.metrics is not None:
        snapshot = record.metrics
        if snapshot.counters:
            sections.append(format_table(
                ["counter", "total"],
                [(name, _fmt_num(value))
                 for name, value in sorted(snapshot.counters.items())],
                title="counters (component.event)"))
        if snapshot.gauges:
            sections.append(format_table(
                ["gauge", "high-water"],
                [(name, _fmt_num(value))
                 for name, value in sorted(snapshot.gauges.items())],
                title="gauges"))
        if snapshot.histograms:
            sections.append(format_table(
                ["histogram", "count", "mean", "min", "max"],
                [(name, str(h.count), f"{h.mean:.4g}",
                  "-" if h.min_value is None else f"{h.min_value:.4g}",
                  "-" if h.max_value is None else f"{h.max_value:.4g}")
                 for name, h in sorted(snapshot.histograms.items())],
                title="histograms (fixed log-scale bins)"))
    if record.profile is not None and record.profile.phases:
        rows = []
        for name, stats in sorted(record.profile.phases.items()):
            rows.append((name, str(stats.calls), f"{stats.total_s:.3f}s",
                         f"{stats.mean_s:.3f}s", f"{stats.max_s:.3f}s"))
        sections.append(format_table(
            ["phase", "calls", "total", "mean", "max"],
            rows, title="wall-clock profile"))
    if record.trace_path is not None:
        sections.append(f"trace: {record.trace_path} "
                        f"(Chrome export: {record.path / CHROME_FILENAME})")
    return "\n\n".join(sections)


def summarize(root: str | Path) -> str:
    """Render every run directory found under ``root``."""
    runs = find_run_dirs(root)
    if not runs:
        return (f"no run directories under {root} "
                f"(expected {MANIFEST_FILENAME} files)")
    return "\n\n".join(render_run(load_run(path)) for path in runs)
