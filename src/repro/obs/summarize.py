"""Render observability artifacts back into terminal tables.

``python -m repro obs summarize <dir>`` loads the ``run-NNN-*``
directories a traced (or metrics-enabled) command produced and prints,
per run: the manifest header, the per-component counters (auctions
held, ads dispatched, rescues, beacons, radio wakeups, ...), gauge
high-water marks, histogram summaries, and the per-phase wall-clock
profile including each shard's execution time.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from .manifest import MANIFEST_FILENAME, RunManifest
from .metrics import MetricsSnapshot
from .profile import RunProfile


class SummarizeError(ValueError):
    """A run artifact is missing, empty, or fails the expected schema.

    The CLI turns this into a one-line stderr message (no traceback):
    artifact directories are user-supplied paths, and a corrupt
    ``metrics.json`` should read as a diagnosis, not a crash.
    """

#: File names inside one run directory.
METRICS_FILENAME = "metrics.json"
PROFILE_FILENAME = "profile.json"
TRACE_FILENAME = "trace.jsonl"
CHROME_FILENAME = "trace.chrome.json"


@dataclass(frozen=True, slots=True)
class RunRecord:
    """Everything loadable from one run directory."""

    path: Path
    manifest: RunManifest
    metrics: MetricsSnapshot | None
    profile: RunProfile | None

    @property
    def trace_path(self) -> Path | None:
        """The JSONL trace, when the run recorded one."""
        candidate = self.path / TRACE_FILENAME
        return candidate if candidate.exists() else None


def find_run_dirs(root: str | Path) -> list[Path]:
    """Run directories under ``root`` (or ``root`` itself), sorted.

    A run directory is recognised by its ``manifest.json``.
    """
    base = Path(root)
    if (base / MANIFEST_FILENAME).exists():
        return [base]
    if not base.is_dir():
        return []
    return sorted(child for child in base.iterdir()
                  if child.is_dir() and (child / MANIFEST_FILENAME).exists())


def _load_json_object(path: Path, what: str) -> dict[str, object]:
    """Read ``path`` as a JSON object, or raise :class:`SummarizeError`."""
    if not path.exists():
        raise SummarizeError(f"{path}: missing {what} file")
    text = path.read_text(encoding="utf-8")
    if not text.strip():
        raise SummarizeError(f"{path}: empty {what} file")
    try:
        loaded = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SummarizeError(
            f"{path}: {what} file is not valid JSON ({exc})") from exc
    if not isinstance(loaded, dict):
        raise SummarizeError(
            f"{path}: {what} file is not a JSON object "
            f"(got {type(loaded).__name__}) — schema mismatch")
    return loaded


def load_run(path: str | Path) -> RunRecord:
    """Load one run directory's artifacts.

    Raises :class:`SummarizeError` (a ``ValueError``) with a one-line
    diagnosis when the manifest is unreadable or a present
    ``metrics.json``/``profile.json`` is empty, malformed, or not the
    expected schema. Absent optional artifacts simply load as ``None``.
    """
    base = Path(path)
    manifest_payload = _load_json_object(base / MANIFEST_FILENAME,
                                         "manifest")
    manifest = RunManifest.from_jsonable(manifest_payload)
    metrics: MetricsSnapshot | None = None
    metrics_path = base / METRICS_FILENAME
    if metrics_path.exists():
        loaded = _load_json_object(metrics_path, "metrics")
        if not ({"counters", "gauges", "histograms"} & set(loaded)):
            raise SummarizeError(
                f"{metrics_path}: metrics file lacks the "
                "counters/gauges/histograms sections — schema mismatch "
                "(was this written by repro.obs?)")
        metrics = MetricsSnapshot.from_jsonable(loaded)
    profile: RunProfile | None = None
    profile_path = base / PROFILE_FILENAME
    if profile_path.exists():
        loaded = _load_json_object(profile_path, "profile")
        profile = RunProfile.from_jsonable(loaded)
    return RunRecord(path=base, manifest=manifest, metrics=metrics,
                     profile=profile)


def _fmt_num(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.4g}"


def render_run(record: RunRecord) -> str:
    """One run's full terminal rendering."""
    # Imported lazily: repro.metrics pulls simulator modules that
    # themselves import repro.obs at module load.
    from repro.metrics.summary import format_table

    manifest = record.manifest
    sections: list[str] = []
    streams = manifest.rng_stream_manifest_hash
    sections.append(
        f"## {record.path.name}\n"
        f"system={manifest.system} seed={manifest.seed} "
        f"shards={manifest.n_shards} parallelism={manifest.parallelism} "
        f"trace={'on' if manifest.trace_enabled else 'off'} "
        f"elapsed={manifest.elapsed_s:.2f}s\n"
        f"config_hash={manifest.config_hash[:16]} "
        f"streams_hash={streams[:16] if streams else 'n/a'}")
    if record.metrics is not None:
        snapshot = record.metrics
        if snapshot.counters:
            sections.append(format_table(
                ["counter", "total"],
                [(name, _fmt_num(value))
                 for name, value in sorted(snapshot.counters.items())],
                title="counters (component.event)"))
        if snapshot.gauges:
            sections.append(format_table(
                ["gauge", "high-water"],
                [(name, _fmt_num(value))
                 for name, value in sorted(snapshot.gauges.items())],
                title="gauges"))
        if snapshot.histograms:
            sections.append(format_table(
                ["histogram", "count", "mean", "min", "max"],
                [(name, str(h.count), f"{h.mean:.4g}",
                  "-" if h.min_value is None else f"{h.min_value:.4g}",
                  "-" if h.max_value is None else f"{h.max_value:.4g}")
                 for name, h in sorted(snapshot.histograms.items())],
                title="histograms (fixed log-scale bins)"))
    if record.profile is not None and record.profile.phases:
        rows = []
        for name, stats in sorted(record.profile.phases.items()):
            rows.append((name, str(stats.calls), f"{stats.total_s:.3f}s",
                         f"{stats.mean_s:.3f}s", f"{stats.max_s:.3f}s"))
        sections.append(format_table(
            ["phase", "calls", "total", "mean", "max"],
            rows, title="wall-clock profile"))
    if record.trace_path is not None:
        sections.append(f"trace: {record.trace_path} "
                        f"(Chrome export: {record.path / CHROME_FILENAME})")
    return "\n\n".join(sections)


def summarize(root: str | Path) -> str:
    """Render every run directory found under ``root``."""
    runs = find_run_dirs(root)
    if not runs:
        return (f"no run directories under {root} "
                f"(expected {MANIFEST_FILENAME} files)")
    return "\n\n".join(render_run(load_run(path)) for path in runs)
