"""Wall-clock phase profiling for the run harness.

This is the **only** observability module allowed to read a clock, and
it reads only the monotonic ``time.perf_counter`` (repro-lint's RPR001
allowlist; the rule additionally pins all of ``repro.obs`` outside this
module to zero clock reads). Profiles measure where real time goes —
world build, shard execution, merging — and never feed back into
simulated quantities, so they are free to vary run to run while the
simulation output stays bit-for-bit stable.

:class:`PhaseStats` values are mergeable (associative ``merge``), so
per-shard wall-clock measurements fold into a per-run profile exactly
like metric snapshots do.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass(frozen=True, slots=True)
class PhaseStats:
    """Aggregated wall-clock cost of one named phase."""

    calls: int = 0
    total_s: float = 0.0
    min_s: float = 0.0
    max_s: float = 0.0

    @classmethod
    def from_duration(cls, seconds: float) -> "PhaseStats":
        """Lift one measured duration into a stats value."""
        s = float(seconds)
        return cls(calls=1, total_s=s, min_s=s, max_s=s)

    def merge(self, other: "PhaseStats") -> "PhaseStats":
        """Associative pairwise combination."""
        if self.calls == 0:
            return other
        if other.calls == 0:
            return self
        return PhaseStats(
            calls=self.calls + other.calls,
            total_s=self.total_s + other.total_s,
            min_s=min(self.min_s, other.min_s),
            max_s=max(self.max_s, other.max_s),
        )

    @property
    def mean_s(self) -> float:
        """Mean seconds per call (0.0 when the phase never ran)."""
        return self.total_s / self.calls if self.calls else 0.0

    def to_jsonable(self) -> dict[str, object]:
        """Plain-JSON form."""
        return {"calls": self.calls, "total_s": self.total_s,
                "min_s": self.min_s, "max_s": self.max_s}

    @classmethod
    def from_jsonable(cls, payload: dict[str, object]) -> "PhaseStats":
        """Inverse of :meth:`to_jsonable`."""
        def _f(key: str) -> float:
            value = payload.get(key, 0.0)
            return float(value) if isinstance(value, (int, float)) else 0.0
        raw_calls = payload.get("calls", 0)
        calls = raw_calls if isinstance(raw_calls, int) else 0
        return cls(calls=calls, total_s=_f("total_s"),
                   min_s=_f("min_s"), max_s=_f("max_s"))


@dataclass(frozen=True, slots=True)
class RunProfile:
    """Per-run wall-clock profile: phase name → :class:`PhaseStats`."""

    phases: dict[str, PhaseStats] = field(default_factory=dict)

    def merge(self, other: "RunProfile") -> "RunProfile":
        """Associative key-wise combination (sorted keys)."""
        empty = PhaseStats()
        return RunProfile(phases={
            name: self.phases.get(name, empty).merge(
                other.phases.get(name, empty))
            for name in sorted(set(self.phases) | set(other.phases))
        })

    @property
    def total_s(self) -> float:
        """Sum of all phase totals (phases may overlap; see docstring)."""
        return sum(stats.total_s for stats in self.phases.values())

    def to_jsonable(self) -> dict[str, object]:
        """Plain-JSON form with sorted phase names."""
        return {name: self.phases[name].to_jsonable()
                for name in sorted(self.phases)}

    @classmethod
    def from_jsonable(cls, payload: dict[str, object]) -> "RunProfile":
        """Inverse of :meth:`to_jsonable`."""
        phases: dict[str, PhaseStats] = {}
        for name, stats in payload.items():
            if isinstance(stats, dict):
                phases[str(name)] = PhaseStats.from_jsonable(stats)
        return cls(phases=phases)


class PhaseProfiler:
    """Collects :class:`PhaseStats` per named phase via ``perf_counter``."""

    def __init__(self) -> None:
        self._phases: dict[str, PhaseStats] = {}

    def add(self, name: str, seconds: float) -> None:
        """Fold one externally measured duration into ``name``."""
        current = self._phases.get(name, PhaseStats())
        self._phases[name] = current.merge(PhaseStats.from_duration(seconds))

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time the ``with`` body as one call of phase ``name``."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - started)

    def snapshot(self) -> RunProfile:
        """Freeze the collected phases into a mergeable profile."""
        return RunProfile(phases={name: self._phases[name]
                                  for name in sorted(self._phases)})
