"""Uniform, silenceable diagnostics for the whole stack.

Ad-hoc ``print`` calls (and per-module ``logging`` setups) are
deprecated in favour of this helper: every component asks for a logger
under the shared ``repro`` hierarchy, which carries a ``NullHandler``
by default — **silent unless the user opts in** with :func:`enable`
(the CLI's ``--verbose`` flag). Diagnostic *content* must still be
deterministic-friendly: log simulated times and counts, never wall
clock timestamps, so enabling verbosity cannot change results and the
output is comparable across runs.

Example
-------
>>> from repro.obs import log
>>> logger = log.get_logger("traces.generator")
>>> logger.debug("dropped %d sessions at the horizon", 3)
"""

from __future__ import annotations

import logging
import sys
from typing import IO

#: Root of the shared logger hierarchy.
ROOT_LOGGER_NAME = "repro"

# Silence by default: without a handler the logging module warns on
# first use; the NullHandler keeps the tree quiet until enable().
logging.getLogger(ROOT_LOGGER_NAME).addHandler(logging.NullHandler())

_HANDLER: logging.Handler | None = None


def get_logger(name: str) -> logging.Logger:
    """A logger under the shared ``repro`` hierarchy.

    ``name`` may be a bare component path (``"traces.generator"``) or
    already rooted (``"repro.traces.generator"``).
    """
    if name == ROOT_LOGGER_NAME or name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def enable(level: int = logging.INFO, stream: IO[str] | None = None) -> None:
    """Turn diagnostics on (idempotent): attach one stderr handler.

    The format deliberately omits wall-clock timestamps — diagnostic
    lines stay comparable between runs of the same config.
    """
    global _HANDLER
    root = logging.getLogger(ROOT_LOGGER_NAME)
    if _HANDLER is not None:
        root.removeHandler(_HANDLER)
    handler = logging.StreamHandler(stream if stream is not None
                                    else sys.stderr)
    handler.setFormatter(logging.Formatter(
        "%(levelname)s %(name)s: %(message)s"))
    root.addHandler(handler)
    root.setLevel(level)
    _HANDLER = handler


def disable() -> None:
    """Silence diagnostics again (back to the NullHandler default)."""
    global _HANDLER
    root = logging.getLogger(ROOT_LOGGER_NAME)
    if _HANDLER is not None:
        root.removeHandler(_HANDLER)
        _HANDLER = None
    root.setLevel(logging.WARNING)
