"""Process resource telemetry: peak RSS, CPU time, throughput rates.

The run ledger (:mod:`repro.obs.ledger`) records *how much hardware* a
run consumed next to *what the run computed*. Everything in this module
is timing-bearing by nature — peak resident set size via
``resource.getrusage``, cumulative CPU seconds via
``time.process_time`` — so telemetry never enters the deterministic
side of a ledger record; it rides the gitignored timings sibling (the
same split as the committed ``.txt`` vs gitignored ``.json`` benchmark
artifacts).

Together with :mod:`repro.obs.profile` this is the only
:mod:`repro.obs` module allowed to read a clock (repro-lint RPR001
allowlist): resource accounting is wall-clock territory, and keeping it
here preserves the one-audit-surface property — everywhere else in
``repro.obs``, time means *simulated* time.

Throughput rates divide the deterministic ``throughput.users_total`` /
``throughput.events_total`` counters (threaded through both execution
backends; identical by the backend-parity contract) by the measured
wall-clock, so users/sec and events/sec are comparable across machines
while the numerators stay bit-stable.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass

try:
    import resource
    _HAVE_RUSAGE = hasattr(resource, "getrusage")
except ImportError:  # pragma: no cover - non-POSIX platforms
    _HAVE_RUSAGE = False


def peak_rss_bytes() -> int:
    """Peak resident set size of this process tree, in bytes.

    Takes the max over ``RUSAGE_SELF`` and ``RUSAGE_CHILDREN`` so runs
    that farm shards out to worker processes report the largest peak
    seen anywhere. Returns 0 on platforms without ``getrusage``.
    ``ru_maxrss`` is kibibytes on Linux and bytes on macOS; both
    normalise to bytes here.
    """
    if not _HAVE_RUSAGE:  # pragma: no cover - non-POSIX platforms
        return 0
    own = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    children = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    peak = max(int(own), int(children))
    if sys.platform == "darwin":  # pragma: no cover - exercised on macOS
        return peak
    return peak * 1024


def cpu_time_s() -> float:
    """Cumulative CPU seconds of this process (``time.process_time``)."""
    return time.process_time()


@dataclass(frozen=True, slots=True)
class ResourceTelemetry:
    """Resource footprint of one run (all fields timing-bearing).

    ``users_total``/``events_total`` mirror the deterministic
    throughput counters so the rates below are self-contained; the
    counters of record live in the run's metrics snapshot.
    """

    peak_rss_bytes: int = 0
    cpu_time_s: float = 0.0
    elapsed_s: float = 0.0
    users_total: float = 0.0
    events_total: float = 0.0

    @property
    def users_per_sec(self) -> float:
        """Users simulated per wall-clock second (0.0 when untimed)."""
        return self.users_total / self.elapsed_s if self.elapsed_s else 0.0

    @property
    def events_per_sec(self) -> float:
        """Timeline events replayed per wall-clock second."""
        return self.events_total / self.elapsed_s if self.elapsed_s else 0.0

    def to_jsonable(self) -> dict[str, object]:
        """Plain-JSON form (rates included for human readers)."""
        return {
            "peak_rss_bytes": self.peak_rss_bytes,
            "cpu_time_s": self.cpu_time_s,
            "elapsed_s": self.elapsed_s,
            "users_total": self.users_total,
            "events_total": self.events_total,
            "users_per_sec": self.users_per_sec,
            "events_per_sec": self.events_per_sec,
        }

    @classmethod
    def from_jsonable(cls, payload: dict[str, object]) -> "ResourceTelemetry":
        """Inverse of :meth:`to_jsonable` (derived rates recomputed).

        Missing keys keep their defaults (old timings files stay
        readable), but a key that is *present* with a wrong-typed value
        raises a one-line ``ValueError`` — silently coercing malformed
        telemetry to 0.0 made corrupt timings files indistinguishable
        from idle runs.
        """
        def _f(key: str) -> float:
            value = payload.get(key, 0.0)
            if isinstance(value, bool) or not isinstance(value,
                                                         (int, float)):
                raise ValueError(
                    f"telemetry field {key!r} must be a number, "
                    f"got {type(value).__name__}")
            return float(value)

        raw_rss = payload.get("peak_rss_bytes", 0)
        if isinstance(raw_rss, bool) or not isinstance(raw_rss, int):
            raise ValueError(
                "telemetry field 'peak_rss_bytes' must be an int, "
                f"got {type(raw_rss).__name__}")
        return cls(peak_rss_bytes=raw_rss,
                   cpu_time_s=_f("cpu_time_s"),
                   elapsed_s=_f("elapsed_s"),
                   users_total=_f("users_total"),
                   events_total=_f("events_total"))


def collect_telemetry(*, elapsed_s: float, users_total: float = 0.0,
                      events_total: float = 0.0) -> ResourceTelemetry:
    """Sample the process and assemble one :class:`ResourceTelemetry`."""
    return ResourceTelemetry(
        peak_rss_bytes=peak_rss_bytes(),
        cpu_time_s=cpu_time_s(),
        elapsed_s=float(elapsed_s),
        users_total=float(users_total),
        events_total=float(events_total),
    )
