"""Process-local observability context.

Components (the ad server, the client SDK, the exchange, devices) bind
their instruments from :func:`current_obs` at construction time. The
sharded Runner activates a fresh :class:`Obs` bundle around each shard
run — serially in-process, or one at a time inside each worker process
— so instruments are always shard-local and merge back deterministically
(see :mod:`repro.obs.metrics`).

Outside any activation, a process-default bundle with a real metrics
registry and the :data:`~repro.obs.trace.NULL_RECORDER` is used, so
ad-hoc harness calls still count events and tracing stays zero-cost.

:class:`ObsOptions` is the user-facing knob (CLI ``--trace`` /
``--metrics-out``): where to write run artifacts and whether to record
the per-event trace. The CLI installs a process default via
:func:`set_default_obs_options`; :class:`repro.runner.Runner` consults
it when no explicit options are passed.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from .live import NULL_EMITTER, BeatEmitter, LiveOptions
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .trace import NULL_RECORDER, TraceRecorder


@dataclass(slots=True)
class Obs:
    """One observability bundle: metrics registry, recorder, beats.

    ``beats`` is the live-telemetry emitter (:mod:`repro.obs.live`);
    it defaults to the disabled :data:`~repro.obs.live.NULL_EMITTER`
    so hot paths can guard on ``obs.beats.enabled`` exactly like they
    guard on ``recorder.enabled``.
    """

    metrics: MetricsRegistry
    recorder: TraceRecorder
    beats: BeatEmitter = NULL_EMITTER

    @classmethod
    def create(cls, recorder: TraceRecorder | None = None,
               beats: BeatEmitter | None = None) -> "Obs":
        """A new bundle with an empty registry (Null recorder default)."""
        obs = cls(metrics=MetricsRegistry(),
                  recorder=recorder if recorder is not None
                  else NULL_RECORDER,
                  beats=beats if beats is not None else NULL_EMITTER)
        if beats is not None:
            beats.bind_registry(obs.metrics)
        return obs


_DEFAULT_OBS = Obs(metrics=MetricsRegistry(), recorder=NULL_RECORDER)
_ACTIVE_OBS: Obs | None = None


def current_obs() -> Obs:
    """The active observability bundle (process default when idle)."""
    return _ACTIVE_OBS if _ACTIVE_OBS is not None else _DEFAULT_OBS


@contextmanager
def activate(obs: Obs) -> Iterator[Obs]:
    """Make ``obs`` the current bundle for the ``with`` body.

    Activations nest (the previous bundle is restored on exit), which
    keeps serial multi-shard execution shard-local.
    """
    global _ACTIVE_OBS
    previous = _ACTIVE_OBS
    _ACTIVE_OBS = obs
    try:
        yield obs
    finally:
        _ACTIVE_OBS = previous


def counter(name: str) -> Counter:
    """Shorthand for ``current_obs().metrics.counter(name)``."""
    return current_obs().metrics.counter(name)


def gauge(name: str) -> Gauge:
    """Shorthand for ``current_obs().metrics.gauge(name)``."""
    return current_obs().metrics.gauge(name)


def histogram(name: str) -> Histogram:
    """Shorthand for ``current_obs().metrics.histogram(name)``."""
    return current_obs().metrics.histogram(name)


def recorder() -> TraceRecorder:
    """Shorthand for ``current_obs().recorder``."""
    return current_obs().recorder


# ----------------------------------------------------------------------
# User-facing options (CLI --trace / --metrics-out)
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ObsOptions:
    """What a run should emit and where.

    ``out_dir`` is the parent directory; every traced ``Runner.run``
    writes one ``run-NNN-<label>`` subdirectory under it containing
    ``manifest.json``, ``metrics.json``, ``profile.json``,
    ``resources.json`` and — when ``trace`` is set — ``trace.jsonl``
    plus ``trace.chrome.json``. ``ledger`` (CLI ``--ledger PATH``)
    additionally appends one :class:`repro.obs.ledger.RunRecord` per
    run to that JSONL ledger, with the timing-bearing telemetry going
    to the gitignored timings sibling. ``live`` (CLI ``--progress`` /
    ``--beat-interval``) switches on the live telemetry plane
    (:mod:`repro.obs.live`): streamed shard heartbeats, the straggler
    watchdog, and the crash flight recorder — observation only, never
    affecting results.
    """

    out_dir: Path | None = None
    trace: bool = False
    label: str = ""
    ledger: Path | None = None
    live: LiveOptions | None = None


_DEFAULT_OPTIONS: ObsOptions | None = None

#: Monotone per-process run-directory sequence (run-000, run-001, ...).
_RUN_SEQUENCE = itertools.count()


def set_default_obs_options(options: ObsOptions | None) -> None:
    """Install (or clear, with ``None``) the process-default options."""
    global _DEFAULT_OPTIONS
    _DEFAULT_OPTIONS = options


def default_obs_options() -> ObsOptions | None:
    """The process-default :class:`ObsOptions`, if any."""
    return _DEFAULT_OPTIONS


def next_run_dir(options: ObsOptions, system: str) -> Path:
    """Allocate the next ``run-NNN-<label>`` directory for ``options``.

    The sequence is process-local and monotone, so successive runs of
    one experiment command land in lexicographically ordered
    subdirectories.
    """
    if options.out_dir is None:
        raise ValueError("ObsOptions.out_dir is not set")
    label = options.label or system
    index = next(_RUN_SEQUENCE)
    return Path(options.out_dir) / f"run-{index:03d}-{label}"
