"""Live telemetry plane: streamed shard heartbeats and the watchdog.

Everything else in :mod:`repro.obs` is post-hoc — the parent process
learns nothing about a shard until the shard *returns*. This module is
the out-of-band channel that closes that gap without touching the
deterministic side: shard workers periodically publish compact
:class:`ShardBeat` records (sim-time watermark, progress counts,
counter deltas, peak RSS) over a pluggable transport, and the parent's
:class:`LiveAggregator` folds them into a run-wide progress view with a
straggler/stall **watchdog** and an optional terminal renderer
(CLI ``--progress``).

Hard invariant (tested, CI-smoked): **beats are observation only**.
They read shard-local instruments and never feed anything back into the
simulation, so a run with live telemetry on is bit-identical to the
same run with it off, at any parallelism. Beat *emission timing* is
wall-clock-throttled and therefore nondeterministic — which is fine,
because beats never enter metrics, traces, manifests, or the ledger.

Together with :mod:`repro.obs.profile` and :mod:`repro.obs.resources`
this is one of the three modules allowed to read a real clock
(repro-lint RPR001 allowlist): heartbeat pacing, silence detection, and
arrival stamping are wall-clock territory by definition. The *trace*
heartbeat instant (:func:`shard_heartbeat`) stays sim-time-stamped and
deterministic; only the out-of-band beat stream carries wall-clock
pacing.

Transports
----------
* :class:`QueueTransport` — a ``multiprocessing.Manager`` queue proxy
  for ``ProcessPoolExecutor`` runs (picklable, crosses the worker
  boundary).
* :class:`CallbackTransport` — a direct in-process callback for serial
  runs (and tests).

See DESIGN.md §12 for the full plane architecture and the determinism
argument.
"""

from __future__ import annotations

import statistics
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Callable, Iterator, Mapping

from .flightrec import Postmortem, postmortem_filename
from .log import get_logger
from .metrics import MetricsRegistry
from .resources import peak_rss_bytes

#: Schema version stamped into every serialized beat / live snapshot.
LIVE_SCHEMA_VERSION = 1

#: Default postmortem directory when no artifact dir is configured.
DEFAULT_POSTMORTEM_DIR = Path("obs-runs") / "postmortems"

_log = get_logger("obs.live")


# ----------------------------------------------------------------------
# The beat record
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ShardBeat:
    """One out-of-band liveness/progress record from a shard worker.

    ``watermark_s`` is the shard's **sim-time** high-water mark — the
    simulated clock it has executed up to — so the parent can compare
    shard progress on the simulation's own axis. Everything else is
    plain progress accounting. Beats never carry wall-clock stamps;
    the *receiver* stamps arrival with its own clock (cross-process
    monotonic clocks are not comparable).
    """

    shard_index: int
    n_shards: int
    seq: int
    watermark_s: float
    done: int = 0
    total: int = 0
    users: int = 0
    events_done: int = 0
    #: Counter *deltas* since the previous beat (bounded payload).
    counters: dict[str, float] = field(default_factory=dict)
    rss_bytes: int = 0
    final: bool = False
    failed: bool = False

    def to_jsonable(self) -> dict[str, object]:
        """Plain-JSON form (postmortems embed the last beat)."""
        return {
            "shard_index": self.shard_index,
            "n_shards": self.n_shards,
            "seq": self.seq,
            "watermark_s": self.watermark_s,
            "done": self.done,
            "total": self.total,
            "users": self.users,
            "events_done": self.events_done,
            "counters": dict(self.counters),
            "rss_bytes": self.rss_bytes,
            "final": self.final,
            "failed": self.failed,
        }

    @classmethod
    def from_jsonable(cls, payload: Mapping[str, object]) -> "ShardBeat":
        """Inverse of :meth:`to_jsonable`; raises ``ValueError`` on junk."""
        def _int(key: str, default: int = 0) -> int:
            value = payload.get(key, default)
            if isinstance(value, bool) or not isinstance(value, int):
                raise ValueError(
                    f"beat field {key!r} must be an int, "
                    f"got {type(value).__name__}")
            return value

        raw_mark = payload.get("watermark_s", 0.0)
        if isinstance(raw_mark, bool) or not isinstance(raw_mark,
                                                        (int, float)):
            raise ValueError("beat field 'watermark_s' must be a number, "
                             f"got {type(raw_mark).__name__}")
        counters = payload.get("counters", {})
        if not isinstance(counters, dict):
            raise ValueError("beat field 'counters' must be an object, "
                             f"got {type(counters).__name__}")
        return cls(
            shard_index=_int("shard_index"),
            n_shards=_int("n_shards", 1),
            seq=_int("seq"),
            watermark_s=float(raw_mark),
            done=_int("done"),
            total=_int("total"),
            users=_int("users"),
            events_done=_int("events_done"),
            counters={str(k): float(v) for k, v in counters.items()
                      if isinstance(v, (int, float))},
            rss_bytes=_int("rss_bytes"),
            final=bool(payload.get("final", False)),
            failed=bool(payload.get("failed", False)),
        )


@dataclass(frozen=True, slots=True)
class LiveOptions:
    """Knobs for the live telemetry plane (CLI ``--progress`` & co.).

    ``stall_after_s`` is the watchdog's wall-clock silence window: a
    running shard that has not beaten for that long is flagged stalled
    (and un-flagged by its next beat). ``lag_threshold_s`` is the
    **sim-time** watermark-lag bound: a shard trailing the median
    running shard's watermark by more than this is flagged a straggler.
    Both produce structured warnings (and the ``on_straggler`` hook of
    :class:`LiveAggregator`) — never any change to the simulation.
    """

    beat_interval_s: float = 1.0
    stall_after_s: float = 30.0
    lag_threshold_s: float = 86400.0
    progress: bool = False
    ring_size: int = 256
    postmortem_dir: Path | None = None


# ----------------------------------------------------------------------
# Worker side: transports + emitter
# ----------------------------------------------------------------------


class BeatTransport:
    """Where a worker's beats go. Subclasses define :meth:`publish`."""

    def publish(self, beat: ShardBeat) -> None:
        """Deliver one beat (base class drops it)."""


class CallbackTransport(BeatTransport):
    """In-process delivery for serial runs and tests (not picklable)."""

    def __init__(self, sink: Callable[[ShardBeat], None]) -> None:
        self._sink = sink

    def publish(self, beat: ShardBeat) -> None:
        self._sink(beat)


class QueueTransport(BeatTransport):
    """Delivery over a ``multiprocessing.Manager`` queue proxy.

    The proxy pickles, so the transport can ride the worker-setup
    payload into ``ProcessPoolExecutor`` workers. ``put`` failures are
    swallowed: a dying telemetry channel must never take a healthy
    shard down with it.
    """

    def __init__(self, queue: object) -> None:
        self.queue = queue

    def publish(self, beat: ShardBeat) -> None:
        try:
            self.queue.put(beat)  # type: ignore[attr-defined]
        except (OSError, ValueError, EOFError, BrokenPipeError):
            pass  # parent gone or queue torn down: telemetry only


class BeatEmitter:
    """Worker-side beat source: wall-clock-throttled, observation-only.

    Call :meth:`beat` as often as convenient (the harness calls it once
    per epoch); the emitter publishes at most one beat per
    ``interval_s`` of wall time, plus forced first/final/failure beats.
    Counter payloads are *deltas* against the previous published beat,
    so the channel stays compact no matter how long the run is.
    """

    enabled = True

    def __init__(self, transport: BeatTransport, *, shard_index: int,
                 n_shards: int, interval_s: float = 1.0,
                 registry: MetricsRegistry | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self._transport = transport
        self.shard_index = int(shard_index)
        self.n_shards = int(n_shards)
        self.interval_s = float(interval_s)
        self._registry = registry
        self._clock = clock
        self._seq = 0
        self._last_emit = -float("inf")
        self._last_counters: dict[str, float] = {}

    def bind_registry(self, registry: MetricsRegistry) -> None:
        """Attach the shard-local registry counter deltas are read from."""
        self._registry = registry

    def _counter_deltas(self) -> dict[str, float]:
        if self._registry is None:
            return {}
        totals = dict(self._registry.snapshot().counters)
        deltas = {name: value - self._last_counters.get(name, 0.0)
                  for name, value in totals.items()
                  if value != self._last_counters.get(name, 0.0)}
        self._last_counters = totals
        return deltas

    def beat(self, watermark_s: float, *, done: int = 0, total: int = 0,
             users: int = 0, events_done: int = 0, force: bool = False,
             final: bool = False, failed: bool = False) -> ShardBeat | None:
        """Publish a beat if the wall-clock throttle allows (or forced).

        Returns the published beat, or ``None`` when throttled. Reads
        shard state (counters, RSS) but never writes any — the hard
        observation-only invariant.
        """
        now = self._clock()
        if not (force or final or failed):
            if now - self._last_emit < self.interval_s:
                return None
        self._last_emit = now
        beat = ShardBeat(
            shard_index=self.shard_index,
            n_shards=self.n_shards,
            seq=self._seq,
            watermark_s=float(watermark_s),
            done=int(done),
            total=int(total),
            users=int(users),
            events_done=int(events_done),
            counters=self._counter_deltas(),
            rss_bytes=peak_rss_bytes(),
            final=final,
            failed=failed,
        )
        self._seq += 1
        self._transport.publish(beat)
        return beat


class NullBeatEmitter(BeatEmitter):
    """The zero-overhead default: ``enabled`` is ``False``, beats drop.

    Hot paths guard on ``obs.beats.enabled`` exactly like they guard on
    ``recorder.enabled``, so a run without live telemetry builds no
    beat payloads at all.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(BeatTransport(), shard_index=0, n_shards=1)

    def beat(self, watermark_s: float, *, done: int = 0, total: int = 0,
             users: int = 0, events_done: int = 0, force: bool = False,
             final: bool = False, failed: bool = False) -> ShardBeat | None:
        return None


#: Shared default instance: stateless, safe to reuse everywhere.
NULL_EMITTER = NullBeatEmitter()


def shard_heartbeat(obs: object, ts: float, *, component: str, done: int,
                    total: int, users: int, events_done: int) -> None:
    """Emit the per-shard progress heartbeat — the one shared helper.

    Both execution loops (the harness epoch loop and the realtime
    per-user replay, each shared by the event and batched backends)
    call this instead of hand-rolling the instant, so the trace
    vocabulary stays identical across backends and serving modes:
    an ``("shard", "heartbeat")`` instant stamped with **sim time**
    ``ts`` (deterministic, parallelism-invariant), plus — when the live
    plane is active — a wall-clock-throttled out-of-band
    :class:`ShardBeat` with the same progress numbers.

    ``obs`` is the active :class:`repro.obs.runtime.Obs` bundle (typed
    loosely to keep this module import-cycle-free).
    """
    recorder = obs.recorder  # type: ignore[attr-defined]
    if recorder.enabled:
        recorder.instant(ts, "shard", "heartbeat",
                         args={"component": component, "done": done,
                               "total": total, "users": users,
                               "events_done": events_done})
    beats = obs.beats  # type: ignore[attr-defined]
    if beats.enabled:
        beats.beat(ts, done=done, total=total, users=users,
                   events_done=events_done)


# ----------------------------------------------------------------------
# Parent side: aggregator + watchdog
# ----------------------------------------------------------------------


@dataclass(slots=True)
class ShardView:
    """What the parent currently knows about one shard."""

    shard_index: int
    last_beat: ShardBeat | None = None
    last_seen_s: float = 0.0
    beats: int = 0
    stalled: bool = False
    lagging: bool = False
    done: bool = False
    failed: bool = False


@dataclass(frozen=True, slots=True)
class StragglerEvent:
    """One watchdog finding (stall or watermark lag), parent-side only."""

    shard_index: int
    kind: str                 # "stall" | "lag" | "recovered"
    silence_s: float = 0.0
    watermark_s: float = 0.0
    median_watermark_s: float = 0.0
    message: str = ""


@dataclass(frozen=True, slots=True)
class LiveSnapshot:
    """Run-wide progress view folded from the beats seen so far."""

    n_shards: int
    started: int = 0
    done: int = 0
    failed: int = 0
    stalled: int = 0
    lagging: int = 0
    beats: int = 0
    events_done: int = 0
    #: Mean per-shard completion fraction in [0, 1].
    progress: float = 0.0
    min_watermark_s: float = 0.0
    median_watermark_s: float = 0.0
    peak_rss_bytes: int = 0


class LiveAggregator:
    """Folds shard beats into a progress view; runs the watchdog.

    Thread-safe: transports may deliver from a drain thread while the
    watchdog and renderer read from another. The injected ``clock``
    (monotonic seconds) makes stall detection testable without waiting
    out real silence windows. ``on_straggler`` is the optional hook the
    ROADMAP's coordinator/worker runner will use for work-stealing —
    observation only, it must never mutate sim state.
    """

    def __init__(self, n_shards: int, options: LiveOptions, *,
                 clock: Callable[[], float] = time.monotonic,
                 on_straggler: Callable[[StragglerEvent], None] | None = None,
                 ) -> None:
        self.options = options
        self._clock = clock
        self._on_straggler = on_straggler
        self._lock = threading.Lock()
        now = clock()
        self._views = {index: ShardView(shard_index=index, last_seen_s=now)
                       for index in range(int(n_shards))}

    # -- ingest -------------------------------------------------------

    def ingest(self, beat: ShardBeat) -> None:
        """Fold one beat in; a late beat clears the shard's stall flag."""
        events: list[StragglerEvent] = []
        with self._lock:
            view = self._views.get(beat.shard_index)
            if view is None:  # shard index out of range: drop, don't die
                return
            view.last_beat = beat
            view.last_seen_s = self._clock()
            view.beats += 1
            view.done = view.done or beat.final
            view.failed = view.failed or beat.failed
            if view.stalled:
                view.stalled = False
                events.append(StragglerEvent(
                    shard_index=beat.shard_index, kind="recovered",
                    watermark_s=beat.watermark_s,
                    message=(f"shard {beat.shard_index} recovered: beat "
                             f"seq={beat.seq} after stall flag")))
        for event in events:
            self._fire(event)

    def reset_shard(self, shard_index: int) -> None:
        """Re-arm one shard's view for a re-dispatched attempt.

        The distributed coordinator calls this when it requeues a
        shard (stolen lease, lost worker): the stall/lag/done/failed
        flags belong to the dead attempt, and the silence clock must
        restart so the watchdog times the *new* attempt, not the old
        one's corpse. The last beat is kept — it is still the best
        available progress information for postmortems.
        """
        with self._lock:
            view = self._views.get(shard_index)
            if view is None:
                return
            view.stalled = False
            view.lagging = False
            view.done = False
            view.failed = False
            view.last_seen_s = self._clock()

    # -- watchdog -----------------------------------------------------

    def check(self) -> list[StragglerEvent]:
        """One watchdog pass; returns (and fires) newly flagged events.

        A shard is **stalled** when it is not done and its wall-clock
        silence exceeds ``stall_after_s``; it is **lagging** when its
        sim-time watermark trails the median beating shard's watermark
        by more than ``lag_threshold_s``. Flags fire once per episode
        (a recovery re-arms them). The watchdog observes and warns —
        it never touches the simulation.
        """
        now = self._clock()
        fired: list[StragglerEvent] = []
        with self._lock:
            marks = [v.last_beat.watermark_s for v in self._views.values()
                     if v.last_beat is not None and not v.done]
            median = statistics.median(marks) if marks else 0.0
            for view in self._views.values():
                if view.done:
                    continue
                silence = now - view.last_seen_s
                if not view.stalled and silence > self.options.stall_after_s:
                    view.stalled = True
                    fired.append(StragglerEvent(
                        shard_index=view.shard_index, kind="stall",
                        silence_s=silence,
                        watermark_s=(view.last_beat.watermark_s
                                     if view.last_beat else 0.0),
                        median_watermark_s=median,
                        message=(f"shard {view.shard_index} stalled: no "
                                 f"beat for {silence:.1f}s (window "
                                 f"{self.options.stall_after_s:.1f}s)")))
                if view.last_beat is None:
                    continue
                lag = median - view.last_beat.watermark_s
                if not view.lagging and lag > self.options.lag_threshold_s:
                    view.lagging = True
                    fired.append(StragglerEvent(
                        shard_index=view.shard_index, kind="lag",
                        watermark_s=view.last_beat.watermark_s,
                        median_watermark_s=median,
                        message=(f"shard {view.shard_index} straggling: "
                                 f"watermark {view.last_beat.watermark_s:.0f}s "
                                 f"trails the median {median:.0f}s by "
                                 f"{lag:.0f}s")))
                elif view.lagging and lag <= self.options.lag_threshold_s:
                    view.lagging = False
        for event in fired:
            self._fire(event)
        return fired

    def _fire(self, event: StragglerEvent) -> None:
        if event.kind == "recovered":
            _log.info("%s", event.message)
        else:
            _log.warning("%s", event.message)
        if self._on_straggler is not None:
            self._on_straggler(event)

    # -- views --------------------------------------------------------

    def view(self, shard_index: int) -> ShardView:
        """The parent's current view of one shard (a copy-safe read)."""
        with self._lock:
            return self._views[shard_index]

    def unfinished(self) -> list[ShardView]:
        """Views of shards with no final beat (postmortem candidates)."""
        with self._lock:
            return [view for view in self._views.values() if not view.done]

    def snapshot(self) -> LiveSnapshot:
        """The run-wide progress view at this instant."""
        with self._lock:
            views = list(self._views.values())
        started = [v for v in views if v.beats > 0]
        marks = [v.last_beat.watermark_s for v in started
                 if v.last_beat is not None]
        fractions: list[float] = []
        for view in views:
            if view.done:
                fractions.append(1.0)
            elif view.last_beat is not None and view.last_beat.total > 0:
                fractions.append(view.last_beat.done / view.last_beat.total)
            else:
                fractions.append(0.0)
        return LiveSnapshot(
            n_shards=len(views),
            started=len(started),
            done=sum(1 for v in views if v.done),
            failed=sum(1 for v in views if v.failed),
            stalled=sum(1 for v in views if v.stalled),
            lagging=sum(1 for v in views if v.lagging),
            beats=sum(v.beats for v in views),
            events_done=sum(v.last_beat.events_done for v in started
                            if v.last_beat is not None),
            progress=(sum(fractions) / len(fractions) if fractions else 0.0),
            min_watermark_s=min(marks) if marks else 0.0,
            median_watermark_s=(statistics.median(marks) if marks else 0.0),
            peak_rss_bytes=max((v.last_beat.rss_bytes for v in started
                                if v.last_beat is not None), default=0),
        )


# ----------------------------------------------------------------------
# Rendering (CLI --progress)
# ----------------------------------------------------------------------


def render_progress(snapshot: LiveSnapshot) -> str:
    """One-line human progress summary (pure function of the snapshot)."""
    parts = [
        f"shards {snapshot.done}/{snapshot.n_shards} done",
        f"progress {snapshot.progress * 100.0:5.1f}%",
        f"events {snapshot.events_done}",
        f"watermark {snapshot.median_watermark_s / 86400.0:.2f}d",
    ]
    if snapshot.stalled:
        parts.append(f"STALLED {snapshot.stalled}")
    if snapshot.lagging:
        parts.append(f"lagging {snapshot.lagging}")
    if snapshot.failed:
        parts.append(f"FAILED {snapshot.failed}")
    return "[live] " + " | ".join(parts)


class ProgressRenderer:
    """Terminal progress output: single-line refresh on a TTY, plain
    periodic lines when piped (line-oriented, machine-greppable)."""

    def __init__(self, stream: IO[str] | None = None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self._is_tty = bool(getattr(self.stream, "isatty", lambda: False)())
        self._last_line = ""
        self._wrote_any = False

    def render(self, snapshot: LiveSnapshot) -> None:
        """Write the current progress line (skips exact repeats)."""
        line = render_progress(snapshot)
        if line == self._last_line:
            return
        self._last_line = line
        self._wrote_any = True
        if self._is_tty:
            pad = "\x1b[K"  # clear to end of line
            self.stream.write(f"\r{line}{pad}")
        else:
            self.stream.write(line + "\n")
        self.stream.flush()

    def close(self) -> None:
        """Terminate the refresh line so later output starts clean."""
        if self._is_tty and self._wrote_any:
            self.stream.write("\n")
            self.stream.flush()


# ----------------------------------------------------------------------
# The plane: parent-side lifecycle glue
# ----------------------------------------------------------------------


@dataclass(slots=True)
class WorkerLiveSetup:
    """Per-worker live-telemetry setup shipped next to the ShardTask.

    Deliberately *not* part of the task/job payload: the transport is
    execution plumbing, and keeping it out of :class:`ShardJob` keeps
    the RPR007 serialization closure free of queue handles.
    """

    transport: BeatTransport
    beat_interval_s: float
    ring_size: int
    postmortem_dir: Path
    system: str = ""
    backend: str = ""


class LivePlane:
    """Owns the parent side of the live channel for one ``Runner.run``.

    ``start`` spins up the drain/watchdog thread (and, for
    multi-process runs, a ``multiprocessing.Manager`` whose queue proxy
    workers publish into); ``finish`` drains the tail, writes
    parent-side postmortems for shards that never finished (worker
    loss, stall-timeout), and stops the thread. The plane is pure
    observation: it holds no reference to any simulation object.
    """

    def __init__(self, options: LiveOptions, *, n_shards: int,
                 system: str = "", backend: str = "",
                 parallel: bool = False,
                 stream: IO[str] | None = None,
                 on_straggler: Callable[[StragglerEvent], None] | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.options = options
        self.n_shards = int(n_shards)
        self.system = system
        self.backend = backend
        self.parallel = bool(parallel)
        self.aggregator = LiveAggregator(n_shards, options, clock=clock,
                                         on_straggler=on_straggler)
        self.renderer = (ProgressRenderer(stream) if options.progress
                         else None)
        self.postmortem_dir = (options.postmortem_dir
                               if options.postmortem_dir is not None
                               else DEFAULT_POSTMORTEM_DIR)
        self.postmortems: list[Path] = []
        self._manager: object | None = None
        self._queue: object | None = None
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._poll_s = max(0.05, min(options.beat_interval_s,
                                     options.stall_after_s / 4.0, 0.5))

    # -- lifecycle ----------------------------------------------------

    def start(self) -> None:
        """Open the channel and start the drain/watchdog thread."""
        if self.parallel:
            import multiprocessing

            manager = multiprocessing.Manager()
            self._manager = manager
            self._queue = manager.Queue()
        self._thread = threading.Thread(target=self._loop,
                                        name="repro-live-plane",
                                        daemon=True)
        self._thread.start()

    def worker_setup(self) -> WorkerLiveSetup:
        """The per-worker setup shipped beside each shard task."""
        transport: BeatTransport
        if self._queue is not None:
            transport = QueueTransport(self._queue)
        else:
            transport = CallbackTransport(self.aggregator.ingest)
        return WorkerLiveSetup(
            transport=transport,
            beat_interval_s=self.options.beat_interval_s,
            ring_size=self.options.ring_size,
            postmortem_dir=self.postmortem_dir,
            system=self.system,
            backend=self.backend,
        )

    def finish(self, failed: bool = False) -> None:
        """Drain the tail, write loss postmortems, stop the thread."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._drain_queue()
        self.aggregator.check()
        if failed:
            self._write_loss_postmortems()
        if self.renderer is not None:
            self.renderer.render(self.aggregator.snapshot())
            self.renderer.close()
        if self._manager is not None:
            shutdown = getattr(self._manager, "shutdown", None)
            if shutdown is not None:
                shutdown()
            self._manager = None
            self._queue = None

    # -- internals ----------------------------------------------------

    def _loop(self) -> None:
        while not self._stop.is_set():
            self._drain_queue(block_s=self._poll_s)
            stragglers = self.aggregator.check()
            for event in stragglers:
                if event.kind == "stall":
                    self._write_stall_postmortem(event)
            if self.renderer is not None:
                self.renderer.render(self.aggregator.snapshot())

    def _drain_queue(self, block_s: float = 0.0) -> None:
        queue = self._queue
        if queue is None:
            if block_s:
                self._stop.wait(block_s)
            return
        import queue as queue_mod

        deadline = self._now() + block_s
        while True:
            remaining = deadline - self._now()
            try:
                if remaining > 0:
                    beat = queue.get(timeout=remaining)  # type: ignore[attr-defined]
                else:
                    beat = queue.get_nowait()  # type: ignore[attr-defined]
            except (queue_mod.Empty, OSError, EOFError, BrokenPipeError):
                return
            if isinstance(beat, ShardBeat):
                self.aggregator.ingest(beat)

    @staticmethod
    def _now() -> float:
        return time.monotonic()

    # -- postmortems --------------------------------------------------

    def _write_stall_postmortem(self, event: StragglerEvent) -> None:
        view = self.aggregator.view(event.shard_index)
        postmortem = Postmortem(
            kind="stall",
            shard_index=event.shard_index,
            n_shards=self.n_shards,
            system=self.system,
            backend=self.backend,
            reason=event.message,
            last_beat=(view.last_beat.to_jsonable()
                       if view.last_beat is not None else None),
        )
        self._record(postmortem.write_to(self.postmortem_dir))

    def _write_loss_postmortems(self) -> None:
        for view in self.aggregator.unfinished():
            if view.failed:
                # The worker's own crash handler wrote the black box
                # (with the flight-recorder ring); just surface it.
                crash = (self.postmortem_dir /
                         postmortem_filename(view.shard_index, "crash"))
                if crash.is_file():
                    self._record(crash)
                    continue
            kind = "stall" if view.stalled else "lost"
            reason = (f"shard {view.shard_index} never reported a final "
                      f"beat ({view.beats} beats seen); worker lost or "
                      "killed mid-shard")
            postmortem = Postmortem(
                kind=kind,
                shard_index=view.shard_index,
                n_shards=self.n_shards,
                system=self.system,
                backend=self.backend,
                reason=reason,
                last_beat=(view.last_beat.to_jsonable()
                           if view.last_beat is not None else None),
            )
            self._record(postmortem.write_to(self.postmortem_dir))

    def note_postmortem(self, path: Path) -> None:
        """Record an externally written postmortem (coordinator-side).

        The distributed coordinator writes ``lost`` postmortems itself
        at the instant it detects worker death (it knows the worker id
        and exit code; the plane does not); this folds them into the
        plane's dedup'd list so ``finish`` and callers see one
        consistent inventory.
        """
        self._record(path)

    def _record(self, path: Path) -> None:
        if path not in self.postmortems:
            self.postmortems.append(path)
            _log.warning("postmortem written: %s (inspect with "
                         "'adprefetch obs postmortem show %s')", path, path)

    def __enter__(self) -> "LivePlane":
        self.start()
        return self

    def __exit__(self, exc_type: object, exc: object,
                 tb: object) -> None:
        self.finish(failed=exc_type is not None)


def iter_beats(views: Mapping[int, ShardView]) -> Iterator[ShardBeat]:
    """Latest beats of ``views`` in shard order (introspection helper)."""
    for index in sorted(views):
        beat = views[index].last_beat
        if beat is not None:
            yield beat
