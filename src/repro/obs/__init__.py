"""Observability for the reproduction stack (``repro.obs``).

Three pillars, all designed around the determinism contract:

* **Mergeable metrics** (:mod:`repro.obs.metrics`) — counters, gauges
  and fixed log-scale histograms whose snapshots merge associatively,
  so per-shard measurements fold into identical per-run totals at any
  parallelism (the RPR004 contract).
* **Sim-time tracing** (:mod:`repro.obs.trace`) — spans and instants
  stamped with *simulated* time, recorded per component and exportable
  as JSONL or Chrome ``trace_event`` JSON (loadable in Perfetto). The
  default :class:`NullRecorder` is a zero-overhead no-op.
* **Wall-clock profiling** (:mod:`repro.obs.profile`) — the only
  module allowed to read a clock (``perf_counter``); measures where
  real time goes (world build, shard execute, merge) without touching
  simulated quantities.

:mod:`repro.obs.manifest` records run provenance;
:mod:`repro.obs.ledger` accumulates it — an append-only, schema-
versioned run ledger with tolerance-aware ``diff`` and a ``regress``
CI gate (DESIGN.md §11); :mod:`repro.obs.resources` samples the
timing-bearing resource telemetry (peak RSS, CPU seconds, users/sec)
that rides beside it; and :mod:`repro.obs.log` replaces ad-hoc prints
with a silenceable shared logger. :mod:`repro.obs.live` is the live
telemetry plane — streamed :class:`ShardBeat` heartbeats, the
straggler/stall watchdog, and the ``--progress`` renderer — with
:mod:`repro.obs.flightrec` providing the bounded-ring crash flight
recorder and postmortem files (DESIGN.md §12). See DESIGN.md §8 for
the naming scheme and merge contract.
"""

from . import log
from .flightrec import (
    POSTMORTEM_SCHEMA_VERSION,
    Postmortem,
    RingRecorder,
    list_postmortems,
)
from .ledger import (
    DEFAULT_LEDGER_PATH,
    LEDGER_SCHEMA_VERSION,
    Ledger,
    LedgerError,
    RegressReport,
    RunRecord,
    diff_records,
    merge_records,
    regress,
    snapshot_digest,
    timings_path_for,
)
from .live import (
    NULL_EMITTER,
    BeatEmitter,
    CallbackTransport,
    LiveAggregator,
    LiveOptions,
    LivePlane,
    LiveSnapshot,
    NullBeatEmitter,
    QueueTransport,
    ShardBeat,
    StragglerEvent,
    render_progress,
    shard_heartbeat,
)
from .manifest import (
    MANIFEST_FILENAME,
    RunManifest,
    build_manifest,
    config_digest,
    streams_manifest_hash,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
    validate_instrument_name,
)
from .profile import PhaseProfiler, PhaseStats, RunProfile
from .resources import ResourceTelemetry, collect_telemetry, peak_rss_bytes
from .runtime import (
    Obs,
    ObsOptions,
    activate,
    counter,
    current_obs,
    default_obs_options,
    gauge,
    histogram,
    next_run_dir,
    recorder,
    set_default_obs_options,
)
from .summarize import SummarizeError, find_run_dirs, load_run, summarize
from .trace import (
    NULL_RECORDER,
    MemoryRecorder,
    NullRecorder,
    TraceEvent,
    TraceRecorder,
    read_jsonl,
    to_chrome,
    validate_jsonl,
    write_chrome,
    write_jsonl,
)

__all__ = [
    "DEFAULT_LEDGER_PATH",
    "LEDGER_SCHEMA_VERSION",
    "MANIFEST_FILENAME",
    "NULL_EMITTER",
    "NULL_RECORDER",
    "POSTMORTEM_SCHEMA_VERSION",
    "BeatEmitter",
    "CallbackTransport",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "Ledger",
    "LedgerError",
    "LiveAggregator",
    "LiveOptions",
    "LivePlane",
    "LiveSnapshot",
    "MemoryRecorder",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NullBeatEmitter",
    "NullRecorder",
    "Obs",
    "ObsOptions",
    "PhaseProfiler",
    "PhaseStats",
    "Postmortem",
    "QueueTransport",
    "RegressReport",
    "ResourceTelemetry",
    "RingRecorder",
    "RunManifest",
    "RunProfile",
    "RunRecord",
    "ShardBeat",
    "StragglerEvent",
    "SummarizeError",
    "TraceEvent",
    "TraceRecorder",
    "activate",
    "build_manifest",
    "collect_telemetry",
    "config_digest",
    "counter",
    "current_obs",
    "default_obs_options",
    "diff_records",
    "find_run_dirs",
    "gauge",
    "histogram",
    "list_postmortems",
    "load_run",
    "log",
    "merge_records",
    "next_run_dir",
    "peak_rss_bytes",
    "read_jsonl",
    "recorder",
    "regress",
    "render_progress",
    "set_default_obs_options",
    "shard_heartbeat",
    "snapshot_digest",
    "streams_manifest_hash",
    "summarize",
    "timings_path_for",
    "to_chrome",
    "validate_instrument_name",
    "validate_jsonl",
    "write_chrome",
    "write_jsonl",
]
