"""Observability for the reproduction stack (``repro.obs``).

Three pillars, all designed around the determinism contract:

* **Mergeable metrics** (:mod:`repro.obs.metrics`) — counters, gauges
  and fixed log-scale histograms whose snapshots merge associatively,
  so per-shard measurements fold into identical per-run totals at any
  parallelism (the RPR004 contract).
* **Sim-time tracing** (:mod:`repro.obs.trace`) — spans and instants
  stamped with *simulated* time, recorded per component and exportable
  as JSONL or Chrome ``trace_event`` JSON (loadable in Perfetto). The
  default :class:`NullRecorder` is a zero-overhead no-op.
* **Wall-clock profiling** (:mod:`repro.obs.profile`) — the only
  module allowed to read a clock (``perf_counter``); measures where
  real time goes (world build, shard execute, merge) without touching
  simulated quantities.

:mod:`repro.obs.manifest` records run provenance;
:mod:`repro.obs.ledger` accumulates it — an append-only, schema-
versioned run ledger with tolerance-aware ``diff`` and a ``regress``
CI gate (DESIGN.md §11); :mod:`repro.obs.resources` samples the
timing-bearing resource telemetry (peak RSS, CPU seconds, users/sec)
that rides beside it; and :mod:`repro.obs.log` replaces ad-hoc prints
with a silenceable shared logger. See DESIGN.md §8 for the naming
scheme and merge contract.
"""

from . import log
from .ledger import (
    DEFAULT_LEDGER_PATH,
    LEDGER_SCHEMA_VERSION,
    Ledger,
    LedgerError,
    RegressReport,
    RunRecord,
    diff_records,
    merge_records,
    regress,
    snapshot_digest,
    timings_path_for,
)
from .manifest import (
    MANIFEST_FILENAME,
    RunManifest,
    build_manifest,
    config_digest,
    streams_manifest_hash,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
    validate_instrument_name,
)
from .profile import PhaseProfiler, PhaseStats, RunProfile
from .resources import ResourceTelemetry, collect_telemetry, peak_rss_bytes
from .runtime import (
    Obs,
    ObsOptions,
    activate,
    counter,
    current_obs,
    default_obs_options,
    gauge,
    histogram,
    next_run_dir,
    recorder,
    set_default_obs_options,
)
from .summarize import SummarizeError, find_run_dirs, load_run, summarize
from .trace import (
    NULL_RECORDER,
    MemoryRecorder,
    NullRecorder,
    TraceEvent,
    TraceRecorder,
    read_jsonl,
    to_chrome,
    validate_jsonl,
    write_chrome,
    write_jsonl,
)

__all__ = [
    "DEFAULT_LEDGER_PATH",
    "LEDGER_SCHEMA_VERSION",
    "MANIFEST_FILENAME",
    "NULL_RECORDER",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "Ledger",
    "LedgerError",
    "MemoryRecorder",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NullRecorder",
    "Obs",
    "ObsOptions",
    "PhaseProfiler",
    "PhaseStats",
    "RegressReport",
    "ResourceTelemetry",
    "RunManifest",
    "RunProfile",
    "RunRecord",
    "SummarizeError",
    "TraceEvent",
    "TraceRecorder",
    "activate",
    "build_manifest",
    "collect_telemetry",
    "config_digest",
    "counter",
    "current_obs",
    "default_obs_options",
    "diff_records",
    "find_run_dirs",
    "gauge",
    "histogram",
    "load_run",
    "log",
    "merge_records",
    "next_run_dir",
    "peak_rss_bytes",
    "read_jsonl",
    "recorder",
    "regress",
    "set_default_obs_options",
    "snapshot_digest",
    "streams_manifest_hash",
    "summarize",
    "timings_path_for",
    "to_chrome",
    "validate_instrument_name",
    "validate_jsonl",
    "write_chrome",
    "write_jsonl",
]
