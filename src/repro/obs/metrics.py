"""Mergeable metrics instruments (counters, gauges, histograms).

The observability registry mirrors the accumulator contract the sharded
:class:`repro.runner.Runner` already relies on (repro-lint RPR004):
every instrument snapshot exposes an **associative** ``merge`` so shard
snapshots fold into population totals independently of worker count and
future-completion order. Instruments never touch RNG streams or
simulated time, so an instrumented run is bit-for-bit identical to an
uninstrumented one.

Naming follows the ``component.event`` scheme (DESIGN.md §8):
lower-case dot-separated segments, e.g. ``server.rescues`` or
``exchange.auctions.held``. The registry rejects malformed names so the
instrument namespace stays greppable and stable.

Instrument semantics
--------------------
* :class:`Counter` — monotone sum; merge adds.
* :class:`Gauge` — level instrument; the snapshot keeps the high-water
  mark, and merge takes the max (the only associative reduction that
  preserves "worst level seen anywhere").
* :class:`Histogram` — fixed log-scale (base-2) bins shared by every
  instance, so merge is bin-wise addition.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from dataclasses import dataclass, field

#: Instrument names: ``component.event`` (two or more lowercase segments).
_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)+$")

#: Histogram bin boundaries: powers of two from 2**_MIN_EXP to 2**_MAX_EXP.
#: Fixed for every instance so merging is bin-wise addition.
_MIN_EXP = -10
_MAX_EXP = 30
HISTOGRAM_BOUNDS: tuple[float, ...] = tuple(
    float(2.0 ** e) for e in range(_MIN_EXP, _MAX_EXP + 1))

#: Number of bins: one per boundary interval plus under- and overflow.
N_BINS = len(HISTOGRAM_BOUNDS) + 1


def validate_instrument_name(name: str) -> str:
    """Return ``name`` if it matches ``component.event``, else raise."""
    if not _NAME_RE.match(name):
        raise ValueError(
            f"instrument name {name!r} does not match the "
            "'component.event' scheme (lowercase dot-separated segments)")
    return name


def histogram_bin(value: float) -> int:
    """Index of the fixed log-scale bin containing ``value``.

    Bin 0 holds everything at or below ``2**-10``; the last bin holds
    everything above ``2**30``; bin ``i`` holds
    ``(bounds[i-1], bounds[i]]``.
    """
    return bisect_left(HISTOGRAM_BOUNDS, value)


class Counter:
    """Monotone event counter (``component.event`` named)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment")
        self.value += amount


class Gauge:
    """Level instrument tracking the current value and its high-water mark."""

    __slots__ = ("name", "value", "high")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0
        self.high: float = 0.0

    def set(self, value: float) -> None:
        """Record the current level (the high-water mark is kept)."""
        self.value = float(value)
        if self.value > self.high:
            self.high = self.value


class Histogram:
    """Distribution sketch over fixed log-scale (base-2) bins."""

    __slots__ = ("name", "counts", "total", "count", "min_value", "max_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.counts: list[int] = [0] * N_BINS
        self.total: float = 0.0
        self.count: int = 0
        self.min_value: float | None = None
        self.max_value: float | None = None

    def observe(self, value: float) -> None:
        """Record one sample."""
        v = float(value)
        self.counts[histogram_bin(v)] += 1
        self.total += v
        self.count += 1
        if self.min_value is None or v < self.min_value:
            self.min_value = v
        if self.max_value is None or v > self.max_value:
            self.max_value = v


@dataclass(frozen=True, slots=True)
class HistogramSnapshot:
    """Immutable histogram state; ``merge`` is bin-wise addition."""

    counts: tuple[int, ...] = (0,) * N_BINS
    total: float = 0.0
    count: int = 0
    min_value: float | None = None
    max_value: float | None = None

    def merge(self, other: "HistogramSnapshot") -> "HistogramSnapshot":
        """Associative pairwise combination."""
        return HistogramSnapshot(
            counts=tuple(a + b for a, b in zip(self.counts, other.counts)),
            total=self.total + other.total,
            count=self.count + other.count,
            min_value=_opt_min(self.min_value, other.min_value),
            max_value=_opt_max(self.max_value, other.max_value),
        )

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def to_jsonable(self) -> dict[str, object]:
        """Plain-JSON form (``counts`` as a list)."""
        return {
            "counts": list(self.counts),
            "total": self.total,
            "count": self.count,
            "min": self.min_value,
            "max": self.max_value,
        }

    @classmethod
    def from_jsonable(cls, payload: dict[str, object]) -> "HistogramSnapshot":
        """Inverse of :meth:`to_jsonable`."""
        raw_counts = payload.get("counts", [])
        counts = ([int(c) for c in raw_counts]
                  if isinstance(raw_counts, list) else [])
        counts += [0] * (N_BINS - len(counts))
        raw_total = payload.get("total", 0.0)
        raw_count = payload.get("count", 0)
        raw_min = payload.get("min")
        raw_max = payload.get("max")
        return cls(
            counts=tuple(counts[:N_BINS]),
            total=float(raw_total) if isinstance(raw_total,
                                                 (int, float)) else 0.0,
            count=int(raw_count) if isinstance(raw_count, int) else 0,
            min_value=float(raw_min) if isinstance(raw_min,
                                                   (int, float)) else None,
            max_value=float(raw_max) if isinstance(raw_max,
                                                   (int, float)) else None,
        )


def _opt_min(a: float | None, b: float | None) -> float | None:
    if a is None:
        return b
    if b is None:
        return a
    return min(a, b)


def _opt_max(a: float | None, b: float | None) -> float | None:
    if a is None:
        return b
    if b is None:
        return a
    return max(a, b)


@dataclass(frozen=True, slots=True)
class MetricsSnapshot:
    """Immutable registry state; the unit the Runner merges across shards.

    ``merge`` is associative key-wise: counters add, gauges take the
    max of their high-water marks, histograms add bin-wise. The empty
    snapshot is the identity element, so ``reduce(merge, parts,
    MetricsSnapshot())`` is well-defined for any shard layout.
    """

    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, HistogramSnapshot] = field(default_factory=dict)

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Associative pairwise combination (key-wise, sorted keys)."""
        counters = {
            name: self.counters.get(name, 0) + other.counters.get(name, 0)
            for name in sorted(set(self.counters) | set(other.counters))
        }
        gauges = {
            name: max(self.gauges.get(name, 0.0),
                      other.gauges.get(name, 0.0))
            for name in sorted(set(self.gauges) | set(other.gauges))
        }
        empty = HistogramSnapshot()
        histograms = {
            name: self.histograms.get(name, empty).merge(
                other.histograms.get(name, empty))
            for name in sorted(set(self.histograms) | set(other.histograms))
        }
        return MetricsSnapshot(counters=counters, gauges=gauges,
                               histograms=histograms)

    def to_jsonable(self) -> dict[str, object]:
        """Plain-JSON form with sorted keys."""
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {k: self.histograms[k].to_jsonable()
                           for k in sorted(self.histograms)},
        }

    @classmethod
    def from_jsonable(cls, payload: dict[str, object]) -> "MetricsSnapshot":
        """Inverse of :meth:`to_jsonable`."""
        counters_raw = payload.get("counters", {})
        gauges_raw = payload.get("gauges", {})
        hists_raw = payload.get("histograms", {})
        counters: dict[str, float] = {}
        if isinstance(counters_raw, dict):
            counters = {str(k): float(v) for k, v in counters_raw.items()}
        gauges: dict[str, float] = {}
        if isinstance(gauges_raw, dict):
            gauges = {str(k): float(v) for k, v in gauges_raw.items()}
        histograms: dict[str, HistogramSnapshot] = {}
        if isinstance(hists_raw, dict):
            histograms = {str(k): HistogramSnapshot.from_jsonable(dict(v))
                          for k, v in hists_raw.items()}
        return cls(counters=counters, gauges=gauges, histograms=histograms)


class MetricsRegistry:
    """Factory and store for named instruments (one per shard run).

    Instruments are created on first use and cached by name; asking for
    an existing name with a different instrument kind raises, so two
    components can never silently alias one name to different semantics.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def _check_kind(self, name: str, kind: str) -> None:
        owners = {"counter": self._counters, "gauge": self._gauges,
                  "histogram": self._histograms}
        for other_kind, store in owners.items():
            if other_kind != kind and name in store:
                raise ValueError(
                    f"instrument {name!r} already registered as a "
                    f"{other_kind}, cannot re-register as a {kind}")

    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created on first use."""
        instrument = self._counters.get(name)
        if instrument is None:
            self._check_kind(validate_instrument_name(name), "counter")
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name``, created on first use."""
        instrument = self._gauges.get(name)
        if instrument is None:
            self._check_kind(validate_instrument_name(name), "gauge")
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name``, created on first use."""
        instrument = self._histograms.get(name)
        if instrument is None:
            self._check_kind(validate_instrument_name(name), "histogram")
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    def snapshot(self) -> MetricsSnapshot:
        """Freeze the current instrument state into a mergeable value."""
        return MetricsSnapshot(
            counters={name: c.value
                      for name, c in sorted(self._counters.items())},
            gauges={name: g.high
                    for name, g in sorted(self._gauges.items())},
            histograms={
                name: HistogramSnapshot(
                    counts=tuple(h.counts), total=h.total, count=h.count,
                    min_value=h.min_value, max_value=h.max_value)
                for name, h in sorted(self._histograms.items())},
        )
