"""Sim-time structured tracing.

Spans and instant events are stamped with **simulated** time (the
engine clock / epoch clock the components already thread around), never
the wall clock, so the recorded trace is itself deterministic: the same
config and seed produce the same byte-for-byte trace at any
parallelism. Wall-clock timing lives in :mod:`repro.obs.profile`
instead.

Two recorders ship:

* :class:`NullRecorder` — the default; every method is an inherited
  no-op and ``enabled`` is ``False`` so hot paths can skip building
  event payloads entirely (the zero-overhead fast path).
* :class:`MemoryRecorder` — appends :class:`TraceEvent` values to a
  list, later exported as JSONL (one event per line, sorted keys) or as
  Chrome ``trace_event`` JSON that loads directly in Perfetto /
  ``chrome://tracing`` (shards map to processes, components to
  threads).

Event vocabulary (DESIGN.md §8): ``phase`` is ``"X"`` (a complete span
with a duration) or ``"I"`` (an instant); ``component`` matches the
instrument-name component (``engine``, ``client``, ``server``,
``exchange``, ``realtime``); ``name`` is the event within it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Sequence

#: Trace schema version written into every JSONL header row.
TRACE_SCHEMA_VERSION = 1

#: Valid event phases: complete span / instant.
PHASES = ("X", "I")

#: Seconds → Chrome trace_event microseconds.
_US = 1e6


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One structured trace record, stamped with simulated time."""

    ts: float                 # simulated seconds
    phase: str                # "X" (span) or "I" (instant)
    component: str            # e.g. "server", "client", "exchange"
    name: str                 # event within the component
    dur: float = 0.0          # span duration in simulated seconds
    shard: int = 0            # originating shard index
    args: dict[str, object] = field(default_factory=dict)

    def to_jsonable(self) -> dict[str, object]:
        """Plain-JSON row (the JSONL line payload)."""
        return {
            "ts": self.ts,
            "ph": self.phase,
            "comp": self.component,
            "name": self.name,
            "dur": self.dur,
            "shard": self.shard,
            "args": self.args,
        }


class TraceRecorder:
    """No-op base recorder (the ``NullRecorder`` behaviour).

    ``enabled`` is ``False``; hot paths are expected to guard payload
    construction with it::

        if recorder.enabled:
            recorder.instant(now, "server", "rescue", {"n": len(picked)})

    so a run with the default recorder allocates nothing per event.
    """

    enabled: bool = False

    def instant(self, ts: float, component: str, name: str,
                args: dict[str, object] | None = None) -> None:
        """Record an instant event at simulated time ``ts`` (no-op)."""

    def complete(self, ts: float, dur: float, component: str, name: str,
                 args: dict[str, object] | None = None) -> None:
        """Record a span ``[ts, ts+dur)`` in simulated time (no-op)."""

    def events(self) -> list[TraceEvent]:
        """Recorded events (always empty for the null recorder)."""
        return []


class NullRecorder(TraceRecorder):
    """The explicit zero-overhead recorder (inherits every no-op)."""


#: Shared default instance: stateless, safe to reuse everywhere.
NULL_RECORDER = NullRecorder()


class MemoryRecorder(TraceRecorder):
    """In-memory recorder; one per shard, merged by the Runner.

    Events are kept in record order, which is deterministic because
    each shard's simulation is deterministic.
    """

    enabled = True

    def __init__(self, shard: int = 0) -> None:
        self.shard = int(shard)
        self._events: list[TraceEvent] = []

    def instant(self, ts: float, component: str, name: str,
                args: dict[str, object] | None = None) -> None:
        """Record an instant event at simulated time ``ts``."""
        self._events.append(TraceEvent(
            ts=float(ts), phase="I", component=component, name=name,
            shard=self.shard, args=args if args is not None else {}))

    def complete(self, ts: float, dur: float, component: str, name: str,
                 args: dict[str, object] | None = None) -> None:
        """Record a complete span starting at ``ts`` lasting ``dur``."""
        self._events.append(TraceEvent(
            ts=float(ts), phase="X", component=component, name=name,
            dur=float(dur), shard=self.shard,
            args=args if args is not None else {}))

    def events(self) -> list[TraceEvent]:
        """The recorded events, in record order."""
        return list(self._events)


# ----------------------------------------------------------------------
# JSONL export / import / validation
# ----------------------------------------------------------------------


def write_jsonl(events: Sequence[TraceEvent], path: str | Path) -> int:
    """Write ``events`` as JSONL (header row + one event per line).

    Returns the number of event rows written. Keys are sorted so the
    file is byte-stable for identical event streams.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as fh:
        header = {"schema": "repro.obs.trace",
                  "version": TRACE_SCHEMA_VERSION}
        fh.write(json.dumps(header, sort_keys=True) + "\n")
        for event in events:
            fh.write(json.dumps(event.to_jsonable(), sort_keys=True) + "\n")
    return len(events)


def read_jsonl(path: str | Path) -> list[TraceEvent]:
    """Load a JSONL trace written by :func:`write_jsonl`."""
    events: list[TraceEvent] = []
    for row in _iter_rows(path):
        if "schema" in row:
            continue
        args = row.get("args", {})
        events.append(TraceEvent(
            ts=float(_num(row.get("ts", 0.0))),
            phase=str(row.get("ph", "I")),
            component=str(row.get("comp", "")),
            name=str(row.get("name", "")),
            dur=float(_num(row.get("dur", 0.0))),
            shard=int(_num(row.get("shard", 0))),
            args=dict(args) if isinstance(args, dict) else {},
        ))
    return events


def _num(value: object) -> float:
    return float(value) if isinstance(value, (int, float)) else 0.0


def _iter_rows(path: str | Path) -> Iterable[dict[str, object]]:
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                loaded = json.loads(line)
                if isinstance(loaded, dict):
                    yield loaded


def validate_rows(rows: Iterable[Mapping[str, object]]) -> list[str]:
    """Validate trace rows against the schema; returns error strings.

    The first row may be the schema header; every other row must carry
    ``ts``/``ph``/``comp``/``name``/``dur``/``shard`` with the right
    types, ``ph`` in ``("X", "I")``, non-negative times, and a dict
    ``args``.
    """
    problems: list[str] = []
    for index, row in enumerate(rows):
        if index == 0 and row.get("schema") == "repro.obs.trace":
            if row.get("version") != TRACE_SCHEMA_VERSION:
                problems.append(
                    f"row 0: unsupported trace schema version "
                    f"{row.get('version')!r}")
            continue
        where = f"row {index}"
        for key in ("ts", "ph", "comp", "name", "dur", "shard", "args"):
            if key not in row:
                problems.append(f"{where}: missing key {key!r}")
        ph = row.get("ph")
        if ph is not None and ph not in PHASES:
            problems.append(f"{where}: ph must be one of {PHASES}, "
                            f"got {ph!r}")
        for key in ("ts", "dur"):
            value = row.get(key)
            if value is not None and (
                    not isinstance(value, (int, float))
                    or isinstance(value, bool) or value < 0):
                problems.append(
                    f"{where}: {key} must be a non-negative number, "
                    f"got {value!r}")
        shard = row.get("shard")
        if shard is not None and (not isinstance(shard, int)
                                  or isinstance(shard, bool) or shard < 0):
            problems.append(f"{where}: shard must be a non-negative int, "
                            f"got {shard!r}")
        for key in ("comp", "name"):
            value = row.get(key)
            if value is not None and (not isinstance(value, str)
                                      or not value):
                problems.append(f"{where}: {key} must be a non-empty "
                                f"string, got {value!r}")
        args = row.get("args")
        if args is not None and not isinstance(args, dict):
            problems.append(f"{where}: args must be an object, "
                            f"got {type(args).__name__}")
    return problems


def validate_jsonl(path: str | Path) -> list[str]:
    """Validate a JSONL trace file; returns error strings (empty = ok)."""
    try:
        rows = list(_iter_rows(path))
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable trace: {exc}"]
    if not rows:
        return [f"{path}: empty trace file (missing schema header)"]
    if rows[0].get("schema") != "repro.obs.trace":
        return [f"{path}: first row is not the repro.obs.trace header"]
    return validate_rows(rows)


# ----------------------------------------------------------------------
# Chrome trace_event export (Perfetto / chrome://tracing)
# ----------------------------------------------------------------------


def to_chrome(events: Sequence[TraceEvent]) -> dict[str, object]:
    """Convert events to the Chrome ``trace_event`` JSON object format.

    Shards become processes (``pid``) and components become threads
    (``tid``) so Perfetto's timeline groups spans the way the system is
    sharded. Sim-time seconds map to trace microseconds.
    """
    components = sorted({e.component for e in events})
    tid_of = {component: index + 1
              for index, component in enumerate(components)}
    shards = sorted({e.shard for e in events})
    trace_events: list[dict[str, object]] = []
    for shard in shards:
        trace_events.append({
            "ph": "M", "pid": shard, "tid": 0, "name": "process_name",
            "args": {"name": f"shard {shard}"},
        })
        for component in components:
            trace_events.append({
                "ph": "M", "pid": shard, "tid": tid_of[component],
                "name": "thread_name", "args": {"name": component},
            })
    for event in events:
        row: dict[str, object] = {
            "name": event.name,
            "cat": event.component,
            "pid": event.shard,
            "tid": tid_of[event.component],
            "ts": event.ts * _US,
            "args": dict(event.args),
        }
        if event.phase == "X":
            row["ph"] = "X"
            row["dur"] = event.dur * _US
        else:
            row["ph"] = "i"
            row["s"] = "t"
        trace_events.append(row)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"exporter": "repro.obs.trace",
                      "clock": "simulated-time"},
    }


def write_chrome(events: Sequence[TraceEvent], path: str | Path) -> None:
    """Write the Chrome ``trace_event`` export of ``events`` to ``path``."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(to_chrome(events), indent=2,
                                 sort_keys=True) + "\n", encoding="utf-8")
