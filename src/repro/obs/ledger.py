"""Append-only run ledger: the durable record of how runs evolve.

Every experiment or benchmark run appends one :class:`RunRecord` — the
run's :class:`~repro.obs.manifest.RunManifest` identity (config hash,
seed, RNG-stream manifest hash, fault-plan hash, backend and its
equivalence-contract hash) joined with the deterministic counter
totals, a content digest of the merged metrics snapshot, and a flat
map of the run's headline result metrics. Records accumulate in a
JSONL ledger (committed: ``benchmarks/ledger.jsonl``), so the repo
carries its own perf/behaviour trajectory and any PR that silently
changes throughput counters, energy totals, or SLA numbers is visible
as a ledger diff.

Timing-bearing observations (wall clock, peak RSS, users/sec — see
:mod:`repro.obs.resources`) never enter the committed records: they go
to a gitignored *timings sibling* (``<ledger>.timings.jsonl``),
mirroring the committed-``.txt`` / gitignored-``.json`` benchmark
split. A record is therefore a pure function of (code, config, seed)
and two checkouts can diff ledgers byte for byte.

Comparison machinery:

* :func:`diff_records` — metric-by-metric comparison of two records
  with :class:`~repro.sim.batched.ToleranceContract` awareness:
  counter totals must be bit-identical, contract-covered floats may
  drift within their published tolerance, everything else is exact
  (optionally loosened by ``rel_tol``).
* :func:`regress` — the CI gate: for every run key present in the
  ledger, compare the latest record against its committed baseline
  (the previous record with the same key) and fail on any drift.

``adprefetch obs ledger list|show|diff|regress`` is the CLI surface.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from .manifest import RunManifest
from .metrics import MetricsSnapshot
from .resources import ResourceTelemetry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.sim.batched import ToleranceContract

#: Ledger payload layout version (bumped on breaking record changes).
LEDGER_SCHEMA_VERSION = 1

#: Header row every ledger file starts with.
LEDGER_SCHEMA_NAME = "repro.obs.ledger"

#: The committed ledger the CLI reads by default.
DEFAULT_LEDGER_PATH = Path("benchmarks") / "ledger.jsonl"

#: Hex digits of the record content hash used as the record id.
_ID_LEN = 12


def snapshot_digest(snapshot: MetricsSnapshot) -> str:
    """Content hash of a metrics snapshot (sha256 over sorted JSON)."""
    payload = json.dumps(snapshot.to_jsonable(), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True, slots=True)
class RunRecord:
    """One ledger entry: a run's deterministic identity and totals.

    Every field must be a pure function of (code, config, seed) — the
    append path never writes wall-clock quantities here. ``seq`` is the
    append position assigned by :class:`Ledger` (0 for a record not yet
    appended) and is deliberately excluded from :attr:`record_id`, so
    re-running an identical build appends a record with the same id.

    Records cross the process boundary when runs are distributed, so
    this class is a serialization root checked by ``repro-lint``
    RPR007: fields must remain statically picklable plain data.
    """

    experiment: str
    system: str
    config_hash: str
    seed: int
    n_shards: int
    parallelism: int
    backend: str = "event"
    fault_plan_hash: str | None = None
    rng_stream_manifest_hash: str | None = None
    equivalence_contract_hash: str | None = None
    counter_totals: dict[str, float] = field(default_factory=dict)
    metrics: dict[str, float] = field(default_factory=dict)
    metrics_digest: str = ""
    schema_version: int = LEDGER_SCHEMA_VERSION
    seq: int = 0

    @property
    def run_key(self) -> tuple[str, str, int, str, str | None]:
        """Identity under which records are baselined against each other.

        Parallelism is excluded on purpose: worker count is an
        execution knob and results are bit-identical at any value, so a
        jobs-4 run regresses against a jobs-1 baseline.
        """
        return (self.experiment, self.config_hash, self.seed,
                self.backend, self.fault_plan_hash)

    def _identity_jsonable(self) -> dict[str, object]:
        payload = self.to_jsonable()
        payload.pop("seq", None)
        return payload

    @property
    def record_id(self) -> str:
        """Content hash of the record (sha256 prefix, seq excluded)."""
        payload = json.dumps(self._identity_jsonable(), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:_ID_LEN]

    def to_jsonable(self) -> dict[str, object]:
        """Plain-JSON row (sorted metric/counter names)."""
        return {
            "schema_version": self.schema_version,
            "experiment": self.experiment,
            "system": self.system,
            "config_hash": self.config_hash,
            "seed": self.seed,
            "n_shards": self.n_shards,
            "parallelism": self.parallelism,
            "backend": self.backend,
            "fault_plan_hash": self.fault_plan_hash,
            "rng_stream_manifest_hash": self.rng_stream_manifest_hash,
            "equivalence_contract_hash": self.equivalence_contract_hash,
            "counter_totals": {name: self.counter_totals[name]
                               for name in sorted(self.counter_totals)},
            "metrics": {name: self.metrics[name]
                        for name in sorted(self.metrics)},
            "metrics_digest": self.metrics_digest,
            "seq": self.seq,
        }

    @classmethod
    def from_jsonable(cls, payload: Mapping[str, object]) -> "RunRecord":
        """Inverse of :meth:`to_jsonable` (tolerant of missing keys)."""
        def _i(key: str, default: int = 0) -> int:
            value = payload.get(key, default)
            return value if isinstance(value, int) else default

        def _opt(key: str) -> str | None:
            value = payload.get(key)
            return value if isinstance(value, str) else None

        def _floats(key: str) -> dict[str, float]:
            raw = payload.get(key, {})
            if not isinstance(raw, dict):
                return {}
            return {str(k): float(v) for k, v in raw.items()
                    if isinstance(v, (int, float))}

        return cls(
            experiment=str(payload.get("experiment", "")),
            system=str(payload.get("system", "")),
            config_hash=str(payload.get("config_hash", "")),
            seed=_i("seed"),
            n_shards=_i("n_shards"),
            parallelism=_i("parallelism"),
            backend=str(payload.get("backend", "event")),
            fault_plan_hash=_opt("fault_plan_hash"),
            rng_stream_manifest_hash=_opt("rng_stream_manifest_hash"),
            equivalence_contract_hash=_opt("equivalence_contract_hash"),
            counter_totals=_floats("counter_totals"),
            metrics=_floats("metrics"),
            metrics_digest=str(payload.get("metrics_digest", "")),
            schema_version=_i("schema_version", LEDGER_SCHEMA_VERSION),
            seq=_i("seq"),
        )

    @classmethod
    def from_manifest(cls, manifest: RunManifest, *,
                      experiment: str | None = None,
                      metrics: Mapping[str, float] | None = None,
                      metrics_digest: str = "") -> "RunRecord":
        """Lift a :class:`RunManifest` into an appendable record.

        ``experiment`` labels the record (defaults to the manifest's
        system); ``metrics`` is the flat map of deterministic result
        metrics to regress on; ``metrics_digest`` pins the full merged
        snapshot without storing it.
        """
        return cls(
            experiment=experiment if experiment else manifest.system,
            system=manifest.system,
            config_hash=manifest.config_hash,
            seed=manifest.seed,
            n_shards=manifest.n_shards,
            parallelism=manifest.parallelism,
            backend=manifest.backend,
            fault_plan_hash=manifest.fault_plan_hash,
            rng_stream_manifest_hash=manifest.rng_stream_manifest_hash,
            equivalence_contract_hash=manifest.equivalence_contract_hash,
            counter_totals=dict(manifest.counter_totals),
            metrics=dict(metrics or {}),
            metrics_digest=metrics_digest,
        )

    def with_seq(self, seq: int) -> "RunRecord":
        """Copy of this record stamped with append position ``seq``."""
        payload = self.to_jsonable()
        payload["seq"] = int(seq)
        return RunRecord.from_jsonable(payload)


class LedgerError(ValueError):
    """A ledger file is missing, malformed, or a reference is ambiguous."""


def timings_path_for(ledger_path: str | Path) -> Path:
    """The gitignored timings sibling of ``ledger_path``.

    ``benchmarks/ledger.jsonl`` → ``benchmarks/ledger.timings.jsonl``.
    """
    path = Path(ledger_path)
    return path.with_name(path.stem + ".timings.jsonl")


class Ledger:
    """Append-only JSONL ledger of :class:`RunRecord` rows.

    The file starts with a schema header row; every append re-reads the
    current tail to assign the next ``seq``, so concurrent benchmark
    processes interleave without ever renumbering existing rows.
    """

    def __init__(self, path: str | Path = DEFAULT_LEDGER_PATH) -> None:
        self.path = Path(path)

    @property
    def timings_path(self) -> Path:
        """Where this ledger's timing-bearing rows go (gitignored)."""
        return timings_path_for(self.path)

    def exists(self) -> bool:
        """True when the ledger file is present on disk."""
        return self.path.exists()

    def records(self) -> list[RunRecord]:
        """All records in file order (empty for a missing ledger)."""
        if not self.path.exists():
            return []
        records: list[RunRecord] = []
        text = self.path.read_text(encoding="utf-8")
        for index, line in enumerate(text.splitlines()):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                raise LedgerError(
                    f"{self.path}: line {index + 1} is not valid JSON "
                    f"({exc})") from exc
            if not isinstance(row, dict):
                raise LedgerError(
                    f"{self.path}: line {index + 1} is not a JSON object")
            if row.get("schema") == LEDGER_SCHEMA_NAME:
                if row.get("version") != LEDGER_SCHEMA_VERSION:
                    raise LedgerError(
                        f"{self.path}: unsupported ledger schema version "
                        f"{row.get('version')!r} (expected "
                        f"{LEDGER_SCHEMA_VERSION})")
                continue
            records.append(RunRecord.from_jsonable(row))
        return records

    def append(self, record: RunRecord,
               telemetry: ResourceTelemetry | None = None,
               timing_extra: Mapping[str, object] | None = None
               ) -> RunRecord:
        """Append ``record`` (stamped with the next ``seq``) and return it.

        ``telemetry``/``timing_extra`` go to the timings sibling, keyed
        by the record's id and seq — never into the ledger itself.
        """
        existing = self.records()
        next_seq = (max(r.seq for r in existing) + 1) if existing else 1
        stamped = record.with_seq(next_seq)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as fh:
            if not existing and self.path.stat().st_size == 0:
                header = {"schema": LEDGER_SCHEMA_NAME,
                          "version": LEDGER_SCHEMA_VERSION}
                fh.write(json.dumps(header, sort_keys=True) + "\n")
            fh.write(json.dumps(stamped.to_jsonable(), sort_keys=True)
                     + "\n")
        if telemetry is not None or timing_extra:
            self._append_timing(stamped, telemetry, timing_extra)
        return stamped

    def _append_timing(self, record: RunRecord,
                       telemetry: ResourceTelemetry | None,
                       extra: Mapping[str, object] | None) -> None:
        row: dict[str, object] = {
            "record_id": record.record_id,
            "seq": record.seq,
            "experiment": record.experiment,
        }
        if telemetry is not None:
            row["resources"] = telemetry.to_jsonable()
        if extra:
            row.update({str(k): v for k, v in sorted(extra.items())})
        with self.timings_path.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(row, sort_keys=True) + "\n")

    def resolve(self, ref: str) -> RunRecord:
        """A record by reference: seq number, id prefix, or ``latest``.

        Negative seq references count from the end (``-1`` is the most
        recent append). Id prefixes must be unambiguous; when one id
        matches several appends, the most recent wins.
        """
        records = self.records()
        if not records:
            raise LedgerError(f"{self.path}: ledger is empty or missing")
        if ref == "latest":
            return records[-1]
        try:
            seq = int(ref)
        except ValueError:
            matches = [r for r in records if r.record_id.startswith(ref)]
            if not matches:
                raise LedgerError(
                    f"{self.path}: no record with id prefix {ref!r}")
            ids = {r.record_id for r in matches}
            if len(ids) > 1:
                raise LedgerError(
                    f"{self.path}: id prefix {ref!r} is ambiguous "
                    f"({', '.join(sorted(ids))})")
            return matches[-1]
        if seq < 0:
            if -seq > len(records):
                raise LedgerError(
                    f"{self.path}: only {len(records)} records, "
                    f"cannot index {seq}")
            return records[seq]
        for record in records:
            if record.seq == seq:
                return record
        raise LedgerError(f"{self.path}: no record with seq {seq}")


def merge_records(*groups: Sequence[RunRecord]) -> list[RunRecord]:
    """Union several record streams into one deterministic ordering.

    Records sort by ``(seq, record_id)`` and exact duplicates — same id
    *and* same seq, i.e. the same append observed via two paths — are
    dropped. The operation is associative and commutative, so partial
    ledgers from parallel CI shards fold into one trajectory in any
    merge order.
    """
    seen: set[tuple[int, str]] = set()
    merged: list[RunRecord] = []
    every = [record for group in groups for record in group]
    for record in sorted(every, key=lambda r: (r.seq, r.record_id)):
        key = (record.seq, record.record_id)
        if key in seen:
            continue
        seen.add(key)
        merged.append(record)
    return merged


# ----------------------------------------------------------------------
# Comparison: diff two records / regress a ledger against its baseline
# ----------------------------------------------------------------------


def _default_contract() -> "ToleranceContract":
    # Imported lazily: repro.sim.batched pulls simulator modules that
    # themselves import repro.obs at module load.
    from repro.sim.batched import DEFAULT_CONTRACT
    return DEFAULT_CONTRACT


def diff_records(baseline: RunRecord, candidate: RunRecord, *,
                 contract: "ToleranceContract | None" = None,
                 rel_tol: float = 0.0) -> list[str]:
    """Metric-by-metric differences (empty list == records agree).

    Counter totals are deterministic event counts and must be
    bit-identical. Result metrics covered by the tolerance contract
    (the same one batched-backend equivalence is judged under) may
    drift within their published bound; uncovered metrics must match
    exactly unless ``rel_tol`` grants headroom. Provenance mismatches
    (config hash, seed, backend, stream-manifest hash) are reported
    first — a diff across different identities is rarely meaningful.
    """
    problems: list[str] = []
    for label, a, b in (
            ("config_hash", baseline.config_hash, candidate.config_hash),
            ("seed", str(baseline.seed), str(candidate.seed)),
            ("backend", baseline.backend, candidate.backend),
            ("fault_plan_hash", str(baseline.fault_plan_hash),
             str(candidate.fault_plan_hash)),
            ("rng_stream_manifest_hash",
             str(baseline.rng_stream_manifest_hash),
             str(candidate.rng_stream_manifest_hash)),
            ("equivalence_contract_hash",
             str(baseline.equivalence_contract_hash),
             str(candidate.equivalence_contract_hash)),
            ("schema_version", str(baseline.schema_version),
             str(candidate.schema_version))):
        if a != b:
            problems.append(f"identity: {label} differs "
                            f"(baseline={a!r} candidate={b!r})")
    for name in sorted(set(baseline.counter_totals)
                       | set(candidate.counter_totals)):
        a_val = baseline.counter_totals.get(name)
        b_val = candidate.counter_totals.get(name)
        if a_val is None or b_val is None:
            problems.append(f"counter {name}: present in only one record")
        elif a_val != b_val:
            problems.append(f"counter {name}: {a_val!r} != {b_val!r} "
                            "(counters must be bit-identical)")
    active = contract if contract is not None else _default_contract()
    for name in sorted(set(baseline.metrics) | set(candidate.metrics)):
        a_opt = baseline.metrics.get(name)
        b_opt = candidate.metrics.get(name)
        if a_opt is None or b_opt is None:
            problems.append(f"metric {name}: present in only one record")
            continue
        tolerance = active.tolerance_for(name)
        if tolerance.holds(a_opt, b_opt):
            continue
        if rel_tol > 0.0 and abs(a_opt - b_opt) <= rel_tol * max(
                abs(a_opt), abs(b_opt)):
            continue
        problems.append(
            f"metric {name}: baseline={a_opt!r} candidate={b_opt!r} "
            f"exceeds rel_tol={max(tolerance.rel_tol, rel_tol)!r}")
    if (baseline.metrics_digest and candidate.metrics_digest
            and baseline.metrics_digest != candidate.metrics_digest
            and not problems):
        problems.append(
            "metrics_digest differs while every recorded total matches — "
            "an unrecorded instrument changed; regenerate the record")
    return problems


@dataclass(frozen=True, slots=True)
class RegressReport:
    """Outcome of one :func:`regress` gate."""

    compared: int
    skipped: list[str]
    problems: list[str]

    @property
    def ok(self) -> bool:
        """True when no comparison found drift."""
        return not self.problems

    def render(self) -> str:
        """Terminal rendering (one line per comparison outcome)."""
        lines = [f"ledger regress: {self.compared} comparison(s), "
                 f"{len(self.problems)} problem(s)"]
        lines.extend(f"  SKIP {note}" for note in self.skipped)
        lines.extend(f"  FAIL {problem}" for problem in self.problems)
        if self.ok and self.compared:
            lines.append("  PASS latest records match their baselines")
        return "\n".join(lines)


def regress(current: Sequence[RunRecord],
            baseline: Sequence[RunRecord] | None = None, *,
            contract: "ToleranceContract | None" = None,
            rel_tol: float = 0.0) -> RegressReport:
    """Gate the latest record of every run key against its baseline.

    With an explicit ``baseline`` ledger, the latest ``current`` record
    of each key is compared against the latest baseline record of the
    same key. Without one, the ledger is its own history: the latest
    record is compared against the *previous* record with the same key,
    so CI appends a fresh smoke record and gates it against the
    committed trajectory in place. Keys with no baseline are skipped
    (reported, not failed) — a new experiment starts its history.
    """
    by_key: dict[tuple[str, str, int, str, str | None],
                 list[RunRecord]] = {}
    for record in current:
        by_key.setdefault(record.run_key, []).append(record)
    problems: list[str] = []
    skipped: list[str] = []
    compared = 0
    baseline_by_key: dict[tuple[str, str, int, str, str | None],
                          list[RunRecord]] = {}
    if baseline is not None:
        for record in baseline:
            baseline_by_key.setdefault(record.run_key, []).append(record)
    for key in sorted(by_key, key=str):
        history = by_key[key]
        latest = history[-1]
        if baseline is not None:
            candidates = baseline_by_key.get(key, [])
            base = candidates[-1] if candidates else None
        else:
            base = history[-2] if len(history) > 1 else None
        if base is None:
            skipped.append(f"{latest.experiment} "
                           f"[{latest.record_id}]: no baseline record "
                           "for this run key yet")
            continue
        compared += 1
        for problem in diff_records(base, latest, contract=contract,
                                    rel_tol=rel_tol):
            problems.append(
                f"{latest.experiment} [{base.record_id} -> "
                f"{latest.record_id}]: {problem}")
    return RegressReport(compared=compared, skipped=skipped,
                         problems=problems)


# ----------------------------------------------------------------------
# Rendering (the CLI's list/show surfaces)
# ----------------------------------------------------------------------


def render_list(records: Iterable[RunRecord]) -> str:
    """One line per record: seq, id, experiment, identity prefix."""
    lines = []
    for record in records:
        faults = ("faults=" + record.fault_plan_hash[:8]
                  if record.fault_plan_hash else "fault-free")
        lines.append(
            f"{record.seq:>4}  {record.record_id}  "
            f"{record.experiment:<10} {record.backend:<7} "
            f"seed={record.seed} shards={record.n_shards} "
            f"config={record.config_hash[:12]} {faults} "
            f"counters={len(record.counter_totals)} "
            f"metrics={len(record.metrics)}")
    if not lines:
        return "ledger is empty"
    return "\n".join(lines)


def _fmt_num(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.6g}"


def render_record(record: RunRecord) -> str:
    """Full terminal rendering of one record."""
    lines = [
        f"record {record.record_id} (seq {record.seq})",
        f"  experiment: {record.experiment} (system {record.system})",
        f"  identity:   config={record.config_hash[:16]} "
        f"seed={record.seed} backend={record.backend} "
        f"shards={record.n_shards} parallelism={record.parallelism}",
        f"  provenance: streams="
        f"{(record.rng_stream_manifest_hash or 'n/a')[:16]} "
        f"faults={(record.fault_plan_hash or 'none')[:16]} "
        f"contract={(record.equivalence_contract_hash or 'n/a')[:16]}",
        f"  metrics digest: {record.metrics_digest or 'n/a'}",
    ]
    if record.counter_totals:
        lines.append("  counters:")
        lines.extend(f"    {name} = {_fmt_num(value)}"
                     for name, value in sorted(
                         record.counter_totals.items()))
    if record.metrics:
        lines.append("  metrics:")
        lines.extend(f"    {name} = {_fmt_num(value)}"
                     for name, value in sorted(record.metrics.items()))
    return "\n".join(lines)
