"""Per-shard flight recorder: a black box for crashed or lost shards.

:class:`RingRecorder` wraps any :class:`~repro.obs.trace.TraceRecorder`
and keeps a bounded ring of the most recent trace events — including
fault injections, which the injector emits as ``("faults", ...)``
instants through the same recorder. In normal runs the ring is simply
dropped at shard exit; it is serialized into a :class:`Postmortem`
file **only** when a shard raises, a worker is lost, or the live
watchdog flags a stall. That gives E13-style fault runs what an
aircraft accident investigation gets: the last N seconds of telemetry
before the event, at O(ring) memory no matter how long the run was.

Like the rest of the trace layer this module is clock-free and
observation-only: wrapping the recorder in a ring never changes what
the simulation computes, only what survives a crash. Postmortem files
are plain versioned JSON, inspected with
``adprefetch obs postmortem show <path>``.

See DESIGN.md §12 for the file format and the capture policy.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

from .trace import TraceEvent, TraceRecorder

#: Schema version stamped into every postmortem file.
POSTMORTEM_SCHEMA_VERSION = 1

#: Default ring capacity (events) when none is configured.
DEFAULT_RING_SIZE = 256

#: The postmortem kinds the plane can write.
POSTMORTEM_KINDS = ("crash", "stall", "lost")


class RingRecorder(TraceRecorder):
    """A recorder that tees every event into a bounded ring.

    Always ``enabled`` (the ring is the point), but it forwards to the
    wrapped ``inner`` recorder only when *that* recorder is enabled —
    so a live run without ``--trace`` keeps full-trace memory at zero
    while still buffering the last ``capacity`` events for a
    postmortem. :meth:`events` returns the inner recorder's view,
    preserving exact trace semantics for the Runner's shard merge.
    """

    enabled = True

    def __init__(self, inner: TraceRecorder, *, shard: int = 0,
                 capacity: int = DEFAULT_RING_SIZE) -> None:
        self.inner = inner
        self.shard = int(shard)
        self.capacity = max(1, int(capacity))
        self._ring: deque[TraceEvent] = deque(maxlen=self.capacity)
        self._seen = 0

    def instant(self, ts: float, component: str, name: str,
                args: dict[str, object] | None = None) -> None:
        """Record an instant event at simulated time ``ts``."""
        self._ring.append(TraceEvent(
            ts=float(ts), phase="I", component=component, name=name,
            shard=self.shard, args=args if args is not None else {}))
        self._seen += 1
        if self.inner.enabled:
            self.inner.instant(ts, component, name, args)

    def complete(self, ts: float, dur: float, component: str, name: str,
                 args: dict[str, object] | None = None) -> None:
        """Record a complete span starting at ``ts`` lasting ``dur``."""
        self._ring.append(TraceEvent(
            ts=float(ts), phase="X", component=component, name=name,
            dur=float(dur), shard=self.shard,
            args=args if args is not None else {}))
        self._seen += 1
        if self.inner.enabled:
            self.inner.complete(ts, dur, component, name, args)

    def events(self) -> list[TraceEvent]:
        """The *inner* recorder's events (full-trace semantics)."""
        return self.inner.events()

    def ring(self) -> list[TraceEvent]:
        """The buffered tail, oldest first."""
        return list(self._ring)

    @property
    def dropped(self) -> int:
        """Events that fell off the ring (total seen minus retained)."""
        return self._seen - len(self._ring)


@dataclass(frozen=True, slots=True)
class Postmortem:
    """One shard's black-box record, written at failure time only.

    ``kind`` says why it exists: ``crash`` (the shard raised; carries
    the traceback), ``stall`` (the watchdog's silence window expired),
    or ``lost`` (the pool drained without a final beat — worker killed
    or died without raising). ``ring_events`` is the flight recorder's
    tail in jsonable trace-row form; ``last_beat`` is the final
    :class:`~repro.obs.live.ShardBeat` the parent saw, if any.
    """

    kind: str
    shard_index: int
    n_shards: int
    system: str = ""
    backend: str = ""
    reason: str = ""
    traceback: str = ""
    last_beat: dict[str, object] | None = None
    ring_events: tuple[dict[str, object], ...] = ()
    ring_dropped: int = 0
    counters: dict[str, float] = field(default_factory=dict)

    def to_jsonable(self) -> dict[str, object]:
        """Plain-JSON form (the postmortem file payload)."""
        return {
            "schema": "repro.obs.postmortem",
            "version": POSTMORTEM_SCHEMA_VERSION,
            "kind": self.kind,
            "shard_index": self.shard_index,
            "n_shards": self.n_shards,
            "system": self.system,
            "backend": self.backend,
            "reason": self.reason,
            "traceback": self.traceback,
            "last_beat": self.last_beat,
            "ring_events": list(self.ring_events),
            "ring_dropped": self.ring_dropped,
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
        }

    @classmethod
    def from_jsonable(cls, payload: Mapping[str, object]) -> "Postmortem":
        """Inverse of :meth:`to_jsonable`; raises ``ValueError`` on junk."""
        schema = payload.get("schema")
        if schema != "repro.obs.postmortem":
            raise ValueError(f"not a postmortem payload (schema={schema!r})")
        version = payload.get("version")
        if version != POSTMORTEM_SCHEMA_VERSION:
            raise ValueError(f"unsupported postmortem version {version!r} "
                             f"(expected {POSTMORTEM_SCHEMA_VERSION})")
        kind = str(payload.get("kind", ""))
        if kind not in POSTMORTEM_KINDS:
            raise ValueError(f"unknown postmortem kind {kind!r} "
                             f"(expected one of {POSTMORTEM_KINDS})")
        last_beat = payload.get("last_beat")
        if last_beat is not None and not isinstance(last_beat, dict):
            raise ValueError("postmortem field 'last_beat' must be an "
                             f"object or null, got {type(last_beat).__name__}")
        ring_raw = payload.get("ring_events", [])
        if not isinstance(ring_raw, list):
            raise ValueError("postmortem field 'ring_events' must be a "
                             f"list, got {type(ring_raw).__name__}")
        counters_raw = payload.get("counters", {})
        counters: dict[str, float] = {}
        if isinstance(counters_raw, dict):
            counters = {str(k): float(v) for k, v in counters_raw.items()
                        if isinstance(v, (int, float))
                        and not isinstance(v, bool)}
        return cls(
            kind=kind,
            shard_index=int(payload.get("shard_index", 0)),  # type: ignore[arg-type]
            n_shards=int(payload.get("n_shards", 1)),  # type: ignore[arg-type]
            system=str(payload.get("system", "")),
            backend=str(payload.get("backend", "")),
            reason=str(payload.get("reason", "")),
            traceback=str(payload.get("traceback", "")),
            last_beat=last_beat,
            ring_events=tuple(row for row in ring_raw
                              if isinstance(row, dict)),
            ring_dropped=int(payload.get("ring_dropped", 0)),  # type: ignore[arg-type]
            counters=counters,
        )

    # -- files --------------------------------------------------------

    def path_in(self, directory: Path) -> Path:
        """Canonical file path for this postmortem under ``directory``."""
        return Path(directory) / postmortem_filename(self.shard_index,
                                                     self.kind)

    def write_to(self, directory: Path) -> Path:
        """Serialize into ``directory`` (created if needed); the path."""
        path = self.path_in(directory)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_jsonable(), indent=2,
                                   sort_keys=False) + "\n",
                        encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "Postmortem":
        """Read one postmortem file back (one-line errors on junk)."""
        raw = Path(path).read_text(encoding="utf-8")
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: not valid JSON ({exc})") from exc
        if not isinstance(payload, dict):
            raise ValueError(f"{path}: postmortem payload must be an "
                             f"object, got {type(payload).__name__}")
        return cls.from_jsonable(payload)

    # -- human rendering ----------------------------------------------

    def render(self) -> str:
        """Readable multi-line report (``obs postmortem show``)."""
        lines = [
            f"postmortem: shard {self.shard_index}/{self.n_shards} "
            f"[{self.kind}]",
            f"  system:  {self.system or '-'}"
            + (f"  backend: {self.backend}" if self.backend else ""),
            f"  reason:  {self.reason or '-'}",
        ]
        if self.last_beat is not None:
            beat = self.last_beat
            lines.append(
                "  last beat: "
                f"seq={beat.get('seq', '?')} "
                f"watermark={_num(beat.get('watermark_s')):.0f}s "
                f"done={beat.get('done', '?')}/{beat.get('total', '?')} "
                f"events={beat.get('events_done', '?')} "
                f"rss={_num(beat.get('rss_bytes')) / 1e6:.1f}MB")
        else:
            lines.append("  last beat: none seen")
        if self.counters:
            lines.append("  counters at capture:")
            for name in sorted(self.counters):
                lines.append(f"    {name} = {self.counters[name]:g}")
        n = len(self.ring_events)
        suffix = (f" ({self.ring_dropped} older dropped)"
                  if self.ring_dropped else "")
        lines.append(f"  flight recorder: last {n} events{suffix}")
        for row in self.ring_events:
            ts = _num(row.get("ts"))
            comp = row.get("comp", "?")
            name = row.get("name", "?")
            args = row.get("args") or {}
            args_text = (" " + json.dumps(args, sort_keys=True)
                         if args else "")
            lines.append(f"    t={ts:12.1f}s {comp}/{name}{args_text}")
        if self.traceback:
            lines.append("  traceback:")
            for tb_line in self.traceback.rstrip("\n").split("\n"):
                lines.append(f"    {tb_line}")
        return "\n".join(lines)


def capture_shard_crash(*, shard_index: int, n_shards: int,
                        system: str, backend: str,
                        postmortem_dir: Path,
                        exc: BaseException,
                        ring: RingRecorder | None = None,
                        counters: Mapping[str, float] | None = None,
                        ) -> Path | None:
    """Serialize a crashing shard's flight recorder into a postmortem.

    The one shared failure-path writer: the pool worker entry point
    (:func:`repro.runner.run_shard_task`) calls it directly, and the
    distributed worker inherits it by reusing that same entry point —
    so a crash postmortem is byte-format-identical whichever executor
    ran the shard, and ``adprefetch obs postmortem show`` renders both
    the same way.

    Best-effort by contract: it runs while the shard's original
    exception is in flight, so a postmortem that cannot be written
    (read-only dir, disk full) returns ``None`` rather than masking
    the real failure.
    """
    import traceback as tb_mod

    from .log import get_logger

    try:
        postmortem = Postmortem(
            kind="crash",
            shard_index=shard_index,
            n_shards=n_shards,
            system=system,
            backend=backend,
            reason=f"shard raised {type(exc).__name__}: {exc}",
            traceback="".join(tb_mod.format_exception(exc)),
            ring_events=tuple(e.to_jsonable() for e in ring.ring())
            if ring is not None else (),
            ring_dropped=ring.dropped if ring is not None else 0,
            counters=dict(counters) if counters is not None else {},
        )
        path = postmortem.write_to(postmortem_dir)
        get_logger("runner").warning(
            "shard %d crashed; postmortem written: %s", shard_index, path)
        return path
    except OSError:
        return None


def postmortem_filename(shard_index: int, kind: str) -> str:
    """Canonical postmortem file name, stable for a (shard, kind)."""
    return f"shard-{shard_index:03d}-{kind}.json"


def list_postmortems(directory: str | Path) -> list[Path]:
    """Postmortem files under ``directory``, sorted by name."""
    root = Path(directory)
    if not root.is_dir():
        return []
    return sorted(path for path in root.glob("shard-*-*.json")
                  if path.is_file())


def _num(value: object) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return 0.0
    return float(value)
