"""Tests for world construction (caching, radio mixes, determinism)."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import clear_world_cache, get_world
from repro.radio.profiles import THREE_G, WIFI


def test_wifi_fraction_assigns_profiles():
    config = ExperimentConfig(n_users=60, n_days=6, train_days=3, seed=3,
                              wifi_fraction=0.4)
    world = get_world(config)
    wifi_users = [uid for uid, p in world.profile_of.items() if p is WIFI]
    cellular = [uid for uid, p in world.profile_of.items() if p is THREE_G]
    assert len(wifi_users) + len(cellular) == 60
    assert 10 <= len(wifi_users) <= 40     # ~40% +- sampling noise


def test_wifi_fraction_changes_world_key():
    a = ExperimentConfig(n_users=10, n_days=6, train_days=3,
                         wifi_fraction=0.0)
    b = a.variant(wifi_fraction=0.5)
    assert a.world_key() != b.world_key()
    assert get_world(a) is not get_world(b)


def test_wifi_fraction_validation():
    with pytest.raises(ValueError):
        ExperimentConfig(wifi_fraction=1.5)


def test_radio_assignment_is_deterministic():
    config = ExperimentConfig(n_users=40, n_days=6, train_days=3, seed=9,
                              wifi_fraction=0.3)
    first = dict(get_world(config).profile_of)
    clear_world_cache()
    second = dict(get_world(config).profile_of)
    assert {u: p.name for u, p in first.items()} == {
        u: p.name for u, p in second.items()}


def test_radio_assignment_independent_of_trace():
    """The same seed yields the same trace whether or not users are on
    WiFi (the assignment stream must not perturb trace generation)."""
    base = ExperimentConfig(n_users=30, n_days=6, train_days=3, seed=77)
    mixed = base.variant(wifi_fraction=0.5)
    clear_world_cache()
    trace_a = get_world(base).trace
    trace_b = get_world(mixed).trace
    sessions_a = [(s.user_id, s.start) for s in trace_a.all_sessions()]
    sessions_b = [(s.user_id, s.start) for s in trace_b.all_sessions()]
    assert sessions_a == sessions_b


def test_stream_collapse_follows_user_profile():
    """Streaming apps collapse to spans on 3G (4 s < 5 s tail) but stay
    discrete on WiFi (4 s > 0.24 s tail)."""
    from repro.client.timeline import KIND_APP_STREAM

    config = ExperimentConfig(n_users=60, n_days=6, train_days=3, seed=3,
                              wifi_fraction=0.4)
    world = get_world(config)
    for uid, timeline in world.timelines.items():
        has_stream = bool((timeline.kinds == KIND_APP_STREAM).any())
        if world.profile_of[uid] is WIFI:
            assert not has_stream
