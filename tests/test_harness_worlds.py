"""Tests for world construction (WorldSource, radio mixes, determinism)."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.radio.profiles import THREE_G, WIFI
from repro.runner import WorldCache, WorldSource


def test_wifi_fraction_assigns_profiles():
    config = ExperimentConfig(n_users=60, n_days=6, train_days=3, seed=3,
                              wifi_fraction=0.4)
    world = WorldSource().world_for(config)
    wifi_users = [uid for uid, p in world.profile_of.items() if p is WIFI]
    cellular = [uid for uid, p in world.profile_of.items() if p is THREE_G]
    assert len(wifi_users) + len(cellular) == 60
    assert 10 <= len(wifi_users) <= 40     # ~40% +- sampling noise


def test_wifi_fraction_changes_world_key():
    a = ExperimentConfig(n_users=10, n_days=6, train_days=3,
                         wifi_fraction=0.0)
    b = a.variant(wifi_fraction=0.5)
    assert a.world_key() != b.world_key()
    source = WorldSource()
    assert source.world_for(a) is not source.world_for(b)


def test_wifi_fraction_validation():
    with pytest.raises(ValueError):
        ExperimentConfig(wifi_fraction=1.5)


def test_world_source_caches_per_key():
    config = ExperimentConfig(n_users=10, n_days=6, train_days=3, seed=5)
    source = WorldSource()
    assert source.world_for(config) is source.world_for(config)
    assert source.cache.hits == 1 and source.cache.misses == 1


def test_world_source_clear_drops_cached_worlds():
    config = ExperimentConfig(n_users=10, n_days=6, train_days=3, seed=5)
    source = WorldSource()
    first = source.world_for(config)
    source.clear()
    second = source.world_for(config)
    assert first is not second
    assert source.cache.misses == 2


def test_world_source_pinned_world_bypasses_cache():
    config = ExperimentConfig(n_users=10, n_days=6, train_days=3, seed=5)
    other = config.variant(seed=6)
    world = WorldSource().world_for(config)
    pinned = WorldSource(world=world)
    assert pinned.world_for(other) is world
    assert pinned.cache.misses == 0


def test_world_sources_are_independent():
    """No hidden module state: separate sources build separate worlds."""
    config = ExperimentConfig(n_users=10, n_days=6, train_days=3, seed=5)
    a = WorldSource(cache=WorldCache())
    b = WorldSource(cache=WorldCache())
    assert a.world_for(config) is not b.world_for(config)


def test_radio_assignment_is_deterministic():
    config = ExperimentConfig(n_users=40, n_days=6, train_days=3, seed=9,
                              wifi_fraction=0.3)
    source = WorldSource()
    first = dict(source.world_for(config).profile_of)
    source.clear()
    second = dict(source.world_for(config).profile_of)
    assert {u: p.name for u, p in first.items()} == {
        u: p.name for u, p in second.items()}


def test_radio_assignment_independent_of_trace():
    """The same seed yields the same trace whether or not users are on
    WiFi (the assignment stream must not perturb trace generation)."""
    base = ExperimentConfig(n_users=30, n_days=6, train_days=3, seed=77)
    mixed = base.variant(wifi_fraction=0.5)
    source = WorldSource()
    trace_a = source.world_for(base).trace
    trace_b = source.world_for(mixed).trace
    sessions_a = [(s.user_id, s.start) for s in trace_a.all_sessions()]
    sessions_b = [(s.user_id, s.start) for s in trace_b.all_sessions()]
    assert sessions_a == sessions_b


def test_stream_collapse_follows_user_profile():
    """Streaming apps collapse to spans on 3G (4 s < 5 s tail) but stay
    discrete on WiFi (4 s > 0.24 s tail)."""
    from repro.client.timeline import KIND_APP_STREAM

    config = ExperimentConfig(n_users=60, n_days=6, train_days=3, seed=3,
                              wifi_fraction=0.4)
    world = WorldSource().world_for(config)
    for uid, timeline in world.timelines.items():
        has_stream = bool((timeline.kinds == KIND_APP_STREAM).any())
        if world.profile_of[uid] is WIFI:
            assert not has_stream
