"""Failure-injection and edge-case tests: the system must degrade
gracefully, never corrupt its accounting."""

import numpy as np
import pytest

from repro.core.overbooking import StaggeredPolicy
from repro.exchange.auction import AuctionConfig
from repro.exchange.campaign import Campaign
from repro.exchange.marketplace import Exchange
from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import ShardJob, execute_shard
from repro.prediction.models import TimeOfDayMeanPredictor
from repro.runner import Runner, WorldSource
from repro.server.adserver import AdServer, ServerConfig
from repro.sim.rng import RngRegistry

HOUR = 3600.0


def _headline(config, world=None):
    """Whole-population headline comparison via the Runner API."""
    return Runner(config, world=world).run("headline").comparison


def _prefetch_outcome(config, world):
    """Whole-population prefetch outcome via the ShardJob API."""
    execution = execute_shard(ShardJob.for_world(config, world,
                                                 mode="prefetch"))
    assert execution.prefetch is not None
    return execution.prefetch.outcome


def test_demand_collapse_mid_run():
    """Campaign budgets exhaust during the test window: unsold inventory
    must surface as unfilled/house slots, not crashes or phantom money."""
    config = ExperimentConfig(n_users=25, n_days=6, train_days=3, seed=31,
                              n_campaigns=6)
    world = WorldSource().world_for(config)
    # Tiny budgets: demand dies quickly.
    from repro.exchange.campaign import CampaignPoolConfig

    original = ExperimentConfig.campaign_config
    try:
        ExperimentConfig.campaign_config = lambda self: CampaignPoolConfig(
            n_campaigns=6, budget_median=50.0, budget_sigma=0.2)
        result = _prefetch_outcome(config, world)
    finally:
        ExperimentConfig.campaign_config = original
    assert result.house_displays > 0
    assert result.revenue.total_billed >= 0.0
    # Accounting identity still holds.
    assert (result.cached_displays + result.rescued_displays
            == result.revenue.paid_impressions
            + result.revenue.duplicate_impressions)


def test_population_with_silent_users():
    """Users who never produce a session must not break planning."""
    config = ExperimentConfig(n_users=30, n_days=6, train_days=3, seed=17,
                              median_sessions_per_day=0.8)
    world = WorldSource().world_for(config)
    silent = [uid for uid, t in world.timelines.items() if len(t) == 0]
    assert silent, "seed should produce at least one silent user"
    result = _prefetch_outcome(config, world)
    assert result.sla.n_sales >= 0


def test_server_with_zero_predictions_sells_nothing():
    config = ServerConfig(epoch_s=HOUR, deadline_s=4 * HOUR)
    exchange = Exchange([Campaign("c", "a", 2.0, 1e9)],
                        AuctionConfig(), RngRegistry(1).fresh("x"))
    server = AdServer(config, exchange, StaggeredPolicy(),
                      {"u1": TimeOfDayMeanPredictor(HOUR)},
                      RngRegistry(1).fresh("d"))
    stats = server.plan_epoch(0, 0.0)
    assert stats.sold == 0
    response = server.sync("u1", 10.0, reports=[])
    assert response.assignments == []
    _, sla, revenue = server.finalize()
    assert sla.n_sales == 0
    assert revenue.total_billed == 0.0


def test_rescue_with_empty_at_risk_heap():
    config = ServerConfig(epoch_s=HOUR, deadline_s=4 * HOUR)
    exchange = Exchange([Campaign("c", "a", 2.0, 1e9)],
                        AuctionConfig(), RngRegistry(1).fresh("x"))
    server = AdServer(config, exchange, StaggeredPolicy(),
                      {"u1": TimeOfDayMeanPredictor(HOUR)},
                      RngRegistry(1).fresh("d"))
    assert server.rescue("u1", 100.0) == []


def test_all_campaigns_platform_mismatched():
    """No eligible demand for a platform: sell-ahead yields zero sales."""
    config = ServerConfig(epoch_s=HOUR, deadline_s=4 * HOUR)
    campaigns = [Campaign("c", "a", 2.0, 1e9, platform="blackberry")]
    exchange = Exchange(campaigns, AuctionConfig(),
                        RngRegistry(1).fresh("x"))
    sales = exchange.sell_ahead(0.0, 5, deadline=HOUR, platform="wp")
    assert sales == []
    assert exchange.unsold_count == 5


def test_single_user_world_runs():
    config = ExperimentConfig(n_users=1, n_days=6, train_days=3, seed=5)
    comparison = _headline(config)
    assert 0.0 <= comparison.sla_violation_rate <= 1.0


def test_extreme_epsilon_values():
    base = ExperimentConfig(n_users=20, n_days=6, train_days=3, seed=41)
    world = WorldSource().world_for(base)
    strict = _headline(base.variant(epsilon=0.001, max_replicas=4), world)
    loose = _headline(base.variant(epsilon=0.9, max_replicas=4), world)
    # Stricter epsilon can only add replication.
    assert strict.prefetch.mean_replication >= loose.prefetch.mean_replication


def test_house_fallback_mode_loses_revenue_not_correctness():
    base = ExperimentConfig(n_users=25, n_days=6, train_days=3, seed=23)
    world = WorldSource().world_for(base)
    realtime_fb = _headline(base, world)
    house_fb = _headline(base.variant(fallback="house"), world)
    assert house_fb.prefetch.house_displays > 0
    assert house_fb.prefetch.fallback_displays == 0
    assert house_fb.revenue_loss > realtime_fb.revenue_loss
    # House mode never wakes the radio for fallbacks: ad energy drops.
    assert (house_fb.prefetch.energy.ad_joules
            < realtime_fb.prefetch.energy.ad_joules)
