"""Meta-tests: public-API quality gates (docstrings, exports)."""

import importlib
import inspect
import pkgutil

import repro

PACKAGES = [
    "repro.sim", "repro.radio", "repro.traces", "repro.workloads",
    "repro.client", "repro.prediction", "repro.exchange", "repro.server",
    "repro.core", "repro.baselines", "repro.metrics", "repro.experiments",
    "repro.analysis", "repro.analysis.rules", "repro.obs", "repro.faults",
]


def _iter_modules():
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        yield package
        for info in pkgutil.iter_modules(package.__path__):
            yield importlib.import_module(f"{package_name}.{info.name}")


def test_every_module_has_a_docstring():
    missing = [m.__name__ for m in _iter_modules() if not m.__doc__]
    assert not missing, f"modules without docstrings: {missing}"


def test_public_classes_and_functions_are_documented():
    undocumented = []
    for module in _iter_modules():
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue   # re-export; documented at its home
            if not inspect.getdoc(obj):
                undocumented.append(f"{module.__name__}.{name}")
    assert not undocumented, f"undocumented public API: {undocumented}"


def test_package_all_exports_resolve():
    for package_name in PACKAGES + ["repro"]:
        package = importlib.import_module(package_name)
        for name in getattr(package, "__all__", []):
            assert hasattr(package, name), f"{package_name}.{name} missing"


def test_top_level_surface():
    assert repro.__version__
    assert callable(repro.Runner)
    assert callable(repro.FaultPlan)
    assert repro.PAPER_SCALE.n_users == 1750
