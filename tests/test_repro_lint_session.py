"""Interprocedural session: module graph, call graph, cache, SARIF.

Covers the project-wide half of ``repro-lint``: symbol resolution
across import aliases and ``__init__.py`` re-exports, shard
reachability, the content-hash result cache (speedup asserted on work
counters, not wall clock), the gitignore-aware file walker, and the
SARIF writer with its embedded structural validator.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from repro.analysis.callgraph import CallGraph, ProjectContext
from repro.analysis.engine import GitIgnore, iter_python_files, run_analysis
from repro.analysis.findings import Finding
from repro.analysis.modgraph import ModuleGraph, ModuleSummary, build_summary
from repro.analysis.context import FileContext
from repro.analysis.reporter import LintOutcome
from repro.analysis.sarif import render_sarif, sarif_report, validate_sarif
from repro.analysis.session import AnalysisSession


def graph_of(files: dict[str, str]) -> ModuleGraph:
    summaries = [
        build_summary(FileContext(textwrap.dedent(source), path))
        for path, source in files.items()
    ]
    return ModuleGraph.from_summaries(summaries)


# ---------------------------------------------------------------------
# Symbol resolution (context + modgraph edge cases)
# ---------------------------------------------------------------------


class TestSymbolResolution:
    def test_plain_definition(self):
        graph = graph_of({"src/repro/sim/rng.py": """
            class RngRegistry:
                def stream(self, name):
                    return name
            """})
        assert (graph.resolve("repro.sim.rng.RngRegistry")
                == "repro.sim.rng.RngRegistry")
        assert (graph.resolve("repro.sim.rng.RngRegistry.stream")
                == "repro.sim.rng.RngRegistry.stream")

    def test_import_module_alias(self):
        graph = graph_of({
            "src/repro/sim/rng.py": "class RngRegistry:\n    pass\n",
            "src/repro/sim/loop.py": """
                import repro.sim.rng as rng_mod

                def run():
                    return rng_mod.RngRegistry()
                """,
        })
        assert (graph.resolve("repro.sim.loop.rng_mod.RngRegistry")
                == "repro.sim.rng.RngRegistry")

    def test_from_import_as_alias(self):
        graph = graph_of({
            "src/repro/sim/rng.py": "class RngRegistry:\n    pass\n",
            "src/repro/sim/loop.py":
                "from repro.sim.rng import RngRegistry as Registry\n",
        })
        assert (graph.resolve("repro.sim.loop.Registry")
                == "repro.sim.rng.RngRegistry")

    def test_reexport_through_init(self):
        graph = graph_of({
            "src/repro/sim/__init__.py": "from .rng import RngRegistry\n",
            "src/repro/sim/rng.py": "class RngRegistry:\n    pass\n",
        })
        assert (graph.resolve("repro.sim.RngRegistry")
                == "repro.sim.rng.RngRegistry")

    def test_relative_import_absolutized(self):
        graph = graph_of({
            "src/repro/experiments/config.py": "class Config:\n    pass\n",
            "src/repro/experiments/harness.py": """
                from .config import Config

                def load():
                    return Config()
                """,
        })
        assert (graph.resolve("repro.experiments.harness.Config")
                == "repro.experiments.config.Config")

    def test_method_resolution_walks_bases(self):
        graph = graph_of({
            "src/repro/sim/base.py": """
                class Base:
                    def merge(self, other):
                        return other
                """,
            "src/repro/sim/child.py": """
                from repro.sim.base import Base

                class Child(Base):
                    pass
                """,
        })
        assert (graph.resolve_method("repro.sim.child.Child", "merge")
                == "repro.sim.base.Base.merge")

    def test_reexport_cycle_terminates(self):
        graph = graph_of({
            "src/repro/a/__init__.py": "from repro.b import thing\n",
            "src/repro/b/__init__.py": "from repro.a import thing\n",
        })
        assert graph.resolve("repro.a.thing") is None

    def test_unknown_symbol_is_none(self):
        graph = graph_of({"src/repro/sim/rng.py": "X = 1\n"})
        assert graph.resolve("repro.sim.rng.Missing") is None
        assert graph.resolve("numpy.random.default_rng") is None


# ---------------------------------------------------------------------
# Call graph + reachability
# ---------------------------------------------------------------------


class TestCallGraph:
    def test_reachability_closure(self):
        graph = graph_of({
            "src/repro/experiments/harness.py": """
                from repro.sim.state import tick

                def execute_shard(job):
                    return tick(job)
                """,
            "src/repro/sim/state.py": """
                def tick(job):
                    return inner(job)

                def inner(job):
                    return job

                def unrelated(job):
                    return job
                """,
        })
        project = ProjectContext.build(graph)
        assert "repro.sim.state.tick" in project.reachable
        assert "repro.sim.state.inner" in project.reachable
        assert "repro.sim.state.unrelated" not in project.reachable

    def test_class_entry_point_expands_methods(self):
        graph = graph_of({
            "src/repro/experiments/harness.py": """
                class ShardJob:
                    def digest(self):
                        return helper()

                def helper():
                    return 1
                """,
        })
        project = ProjectContext.build(graph)
        assert "repro.experiments.harness.helper" in project.reachable

    def test_chain_renders_provenance(self):
        graph = graph_of({
            "src/repro/experiments/harness.py": """
                def execute_shard(job):
                    return helper(job)

                def helper(job):
                    return job
                """,
        })
        callgraph = CallGraph(graph)
        _reach, parents = callgraph.reachable(
            ("repro.experiments.harness.execute_shard",))
        chain = callgraph.chain("repro.experiments.harness.helper", parents)
        assert chain == "harness.helper <- harness.execute_shard"


# ---------------------------------------------------------------------
# Content-hash cache
# ---------------------------------------------------------------------


def write_tree(root: Path, n_files: int = 6) -> Path:
    pkg = root / "src" / "repro" / "sim"
    pkg.mkdir(parents=True)
    for i in range(n_files):
        (pkg / f"mod{i}.py").write_text(
            f'"""Module {i}."""\n\n\ndef f{i}(x):\n'
            f'    """Return x."""\n    return x\n')
    return root / "src"


class TestSessionCache:
    def test_warm_run_avoids_reparsing(self, tmp_path, monkeypatch):
        src = write_tree(tmp_path)
        monkeypatch.chdir(tmp_path)
        cache = tmp_path / ".lint-cache"
        cold = run_analysis([src], cache_dir=cache)
        warm = run_analysis([src], cache_dir=cache)
        assert cold.files_parsed == cold.files_analyzed > 0
        assert warm.files_parsed == 0
        assert warm.cache_hits == cold.files_analyzed
        # The acceptance bar: a warm full run does >= 3x less parse
        # work than cold. Asserted on deterministic work counters so
        # the test cannot be wall-clock flaky.
        assert cold.files_parsed >= 3 * max(1, warm.files_parsed)

    def test_cache_preserves_output_exactly(self, tmp_path, monkeypatch):
        src = write_tree(tmp_path)
        bad = tmp_path / "src" / "repro" / "sim" / "dirty.py"
        bad.write_text('"""Dirty."""\nimport time\n\n\ndef now():\n'
                       '    """Stamp."""\n    return time.time()\n')
        monkeypatch.chdir(tmp_path)
        cache = tmp_path / ".lint-cache"
        cold = run_analysis([src], cache_dir=cache)
        warm = run_analysis([src], cache_dir=cache)
        assert [f.render() for f in cold.findings] \
            == [f.render() for f in warm.findings]
        assert len(cold.findings) >= 1

    def test_edited_file_invalidates_only_itself(self, tmp_path,
                                                 monkeypatch):
        src = write_tree(tmp_path)
        monkeypatch.chdir(tmp_path)
        cache = tmp_path / ".lint-cache"
        run_analysis([src], cache_dir=cache)
        target = tmp_path / "src" / "repro" / "sim" / "mod0.py"
        target.write_text(target.read_text() + "\n\nY = 2\n")
        warm = run_analysis([src], cache_dir=cache)
        assert warm.files_parsed == 1

    def test_corrupt_cache_entry_falls_back(self, tmp_path, monkeypatch):
        src = write_tree(tmp_path, n_files=2)
        monkeypatch.chdir(tmp_path)
        cache = tmp_path / ".lint-cache"
        run_analysis([src], cache_dir=cache)
        for entry in cache.glob("*.json"):
            entry.write_text("{not json")
        again = run_analysis([src], cache_dir=cache)
        assert again.files_parsed == again.files_analyzed
        assert again.parse_errors == []

    def test_parallel_matches_serial(self, tmp_path, monkeypatch):
        src = write_tree(tmp_path)
        bad = tmp_path / "src" / "repro" / "sim" / "dirty.py"
        bad.write_text('"""Dirty."""\nimport time\n\n\ndef now():\n'
                       '    """Stamp."""\n    return time.time()\n')
        monkeypatch.chdir(tmp_path)
        serial = run_analysis([src], jobs=1)
        parallel = run_analysis([src], jobs=4)
        assert [f.render() for f in serial.findings] \
            == [f.render() for f in parallel.findings]

    def test_summary_round_trips_through_json(self):
        ctx = FileContext(textwrap.dedent("""
            from dataclasses import dataclass

            @dataclass(frozen=True, slots=True)
            class Snapshot:
                joules: float

            def merge(a_j, b_j):
                total_j = a_j
                return total_j
            """), "src/repro/metrics/snap.py")
        summary = build_summary(ctx)
        restored = ModuleSummary.from_jsonable(
            json.loads(json.dumps(summary.to_jsonable())))
        assert restored.to_jsonable() == summary.to_jsonable()
        assert restored.classes["Snapshot"].frozen
        assert restored.functions["merge"].params == ["a_j", "b_j"]


# ---------------------------------------------------------------------
# File walker
# ---------------------------------------------------------------------


class TestFileWalker:
    def test_pycache_and_venv_skipped(self, tmp_path):
        (tmp_path / "pkg" / "__pycache__").mkdir(parents=True)
        (tmp_path / "pkg" / "__pycache__" / "mod.py").write_text("X = 1\n")
        (tmp_path / ".venv" / "lib").mkdir(parents=True)
        (tmp_path / ".venv" / "lib" / "site.py").write_text("X = 1\n")
        (tmp_path / "pkg" / "real.py").write_text("X = 1\n")
        found = [p.name for p in iter_python_files(
            [tmp_path], gitignore=GitIgnore([]))]
        assert found == ["real.py"]

    def test_gitignored_paths_skipped(self, tmp_path):
        (tmp_path / ".gitignore").write_text(
            "scratch/\nskipme_*.py\n# comment\n")
        (tmp_path / "scratch").mkdir()
        (tmp_path / "scratch" / "junk.py").write_text("X = 1\n")
        (tmp_path / "skipme_draft.py").write_text("X = 1\n")
        (tmp_path / "kept.py").write_text("X = 1\n")
        gitignore = GitIgnore.load(tmp_path)
        found = [p.name for p in iter_python_files([tmp_path],
                                                   gitignore=gitignore)]
        assert found == ["kept.py"]

    def test_explicit_file_argument_always_wins(self, tmp_path):
        target = tmp_path / "skipme_draft.py"
        target.write_text("X = 1\n")
        gitignore = GitIgnore(["skipme_*.py"])
        found = list(iter_python_files([target], gitignore=gitignore))
        assert found == [target]


# ---------------------------------------------------------------------
# SARIF output
# ---------------------------------------------------------------------


def outcome_with_findings() -> LintOutcome:
    finding = Finding(rule="RPR006", message="writes module global '_X'",
                      path="src/repro/sim/loop.py", line=12, col=4,
                      scope="run")
    noted = Finding(rule="RPR003", message="mixes scales",
                    path="src/repro/sim/clock.py", line=3, col=0,
                    scope="<module>")
    return LintOutcome(new_findings=[finding], baselined=[noted],
                       files_analyzed=2)


class TestSarif:
    def test_report_is_schema_clean(self):
        doc = sarif_report(outcome_with_findings())
        assert validate_sarif(doc) == []

    def test_round_trip_and_structure(self):
        doc = json.loads(render_sarif(outcome_with_findings()))
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert {"RPR001", "RPR006", "RPR007", "RPR008"} <= rule_ids
        levels = [result["level"] for result in run["results"]]
        assert levels == ["error", "note"]
        first = run["results"][0]
        location = first["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/repro/sim/loop.py"
        assert location["region"]["startLine"] == 12
        assert location["region"]["startColumn"] == 5  # 1-based
        assert "reproLint/v1" in first["partialFingerprints"]

    def test_parse_errors_surface_as_notifications(self):
        outcome = LintOutcome(parse_errors=["bad.py: invalid syntax"])
        doc = sarif_report(outcome)
        invocation = doc["runs"][0]["invocations"][0]
        assert invocation["executionSuccessful"] is False
        texts = [note["message"]["text"]
                 for note in invocation["toolExecutionNotifications"]]
        assert texts == ["bad.py: invalid syntax"]

    def test_validator_rejects_broken_documents(self):
        assert validate_sarif({"runs": []})  # missing version
        assert validate_sarif({"version": "2.0.0", "runs": [{}]})
        doc = sarif_report(outcome_with_findings())
        doc["runs"][0]["results"][0]["level"] = "catastrophic"
        assert any("invalid level" in p for p in validate_sarif(doc))
        doc2 = sarif_report(outcome_with_findings())
        region = (doc2["runs"][0]["results"][0]["locations"][0]
                  ["physicalLocation"]["region"])
        region["startLine"] = 0
        assert any("startLine" in p for p in validate_sarif(doc2))


# ---------------------------------------------------------------------
# Session plumbing
# ---------------------------------------------------------------------


class TestSessionPlumbing:
    def test_select_filters_project_rules(self):
        session = AnalysisSession(select=["RPR006"])
        assert [r.id for r in session.project_rules] == ["RPR006"]
        assert session.rules == []

    def test_unknown_rule_id_raises(self):
        try:
            AnalysisSession(select=["RPR999"])
        except ValueError as exc:
            assert "RPR999" in str(exc)
        else:  # pragma: no cover
            raise AssertionError("expected ValueError")
