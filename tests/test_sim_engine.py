"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Engine, SimulationError
from repro.sim.events import PRIORITY_HIGH, PRIORITY_LOW, PRIORITY_NORMAL


def test_events_fire_in_time_order():
    eng = Engine()
    hits = []
    eng.schedule_at(5.0, hits.append, (5,))
    eng.schedule_at(1.0, hits.append, (1,))
    eng.schedule_at(3.0, hits.append, (3,))
    eng.run()
    assert hits == [1, 3, 5]


def test_simultaneous_events_respect_priority():
    eng = Engine()
    hits = []
    eng.schedule_at(1.0, hits.append, ("low",), priority=PRIORITY_LOW)
    eng.schedule_at(1.0, hits.append, ("high",), priority=PRIORITY_HIGH)
    eng.schedule_at(1.0, hits.append, ("normal",), priority=PRIORITY_NORMAL)
    eng.run()
    assert hits == ["high", "normal", "low"]


def test_simultaneous_same_priority_is_fifo():
    eng = Engine()
    hits = []
    for i in range(10):
        eng.schedule_at(2.0, hits.append, (i,))
    eng.run()
    assert hits == list(range(10))


def test_clock_advances_to_event_times():
    eng = Engine()
    seen = []
    eng.schedule_at(4.5, lambda: seen.append(eng.now))
    eng.run()
    assert seen == [4.5]
    assert eng.now == 4.5


def test_schedule_after_uses_current_time():
    eng = Engine(start_time=10.0)
    hits = []
    eng.schedule_after(2.5, hits.append, (1,))
    eng.run()
    assert eng.now == 12.5 and hits == [1]


def test_scheduling_in_the_past_raises():
    eng = Engine(start_time=5.0)
    with pytest.raises(SimulationError):
        eng.schedule_at(4.0, lambda: None)
    with pytest.raises(SimulationError):
        eng.schedule_after(-1.0, lambda: None)


def test_cancelled_event_does_not_fire():
    eng = Engine()
    hits = []
    event = eng.schedule_at(1.0, hits.append, (1,))
    eng.schedule_at(2.0, hits.append, (2,))
    event.cancel()
    eng.run()
    assert hits == [2]


def test_run_until_stops_before_later_events():
    eng = Engine()
    hits = []
    eng.schedule_at(1.0, hits.append, (1,))
    eng.schedule_at(10.0, hits.append, (10,))
    eng.run(until=5.0)
    assert hits == [1]
    assert eng.now == 5.0
    eng.run()
    assert hits == [1, 10]


def test_event_at_exact_until_boundary_fires():
    eng = Engine()
    hits = []
    eng.schedule_at(5.0, hits.append, (5,))
    eng.run(until=5.0)
    assert hits == [5]


def test_events_can_schedule_more_events():
    eng = Engine()
    hits = []

    def chain(n):
        hits.append(n)
        if n < 3:
            eng.schedule_after(1.0, chain, (n + 1,))

    eng.schedule_at(0.0, chain, (0,))
    eng.run()
    assert hits == [0, 1, 2, 3]
    assert eng.now == 3.0


def test_max_events_guard():
    eng = Engine()

    def forever():
        eng.schedule_after(1.0, forever)

    eng.schedule_at(0.0, forever)
    eng.run(max_events=50)
    assert eng.processed_events == 50


def test_step_fires_one_event_and_reports_exhaustion():
    eng = Engine()
    hits = []
    eng.schedule_at(1.0, hits.append, (1,))
    assert eng.step() is True
    assert hits == [1]
    assert eng.step() is False


def test_peek_time_skips_cancelled():
    eng = Engine()
    first = eng.schedule_at(1.0, lambda: None)
    eng.schedule_at(2.0, lambda: None)
    first.cancel()
    assert eng.peek_time() == 2.0


def test_stop_aborts_run_after_current_event():
    eng = Engine()
    hits = []
    eng.schedule_at(1.0, hits.append, (1,))
    eng.schedule_at(2.0, lambda: (hits.append(2), eng.stop()))
    eng.schedule_at(3.0, hits.append, (3,))
    eng.run(until=10.0)
    assert hits == [1, 2]
    # Clock stays at the last fired event, not clamped to `until`.
    assert eng.now == 2.0
    assert eng.pending_events == 1


def test_stop_leaves_engine_resumable():
    eng = Engine()
    hits = []
    eng.schedule_at(1.0, lambda: (hits.append(1), eng.stop()))
    eng.schedule_at(2.0, hits.append, (2,))
    eng.run()
    assert hits == [1]
    eng.run()
    assert hits == [1, 2]


def test_stop_while_idle_is_a_noop():
    eng = Engine()
    eng.stop()
    hits = []
    eng.schedule_at(1.0, hits.append, (1,))
    eng.run()
    assert hits == [1]


# ---------------------------------------------------------------------
# Observability: the on_event hook and the metrics handle
# ---------------------------------------------------------------------


def test_on_event_hook_sees_every_fired_event():
    eng = Engine()
    seen = []
    for t in (1.0, 2.0, 5.0):
        eng.schedule_at(t, lambda: None)
    eng.run(on_event=lambda processed, now: seen.append((processed, now)))
    times = [now for _, now in seen]
    assert times == [1.0, 2.0, 5.0]
    # The count is the engine's cumulative processed-event count.
    assert [processed for processed, _ in seen] == [1, 2, 3]


def test_on_event_hook_can_stop_the_run():
    eng = Engine()
    hits = []
    for t in (1.0, 2.0, 3.0):
        eng.schedule_at(t, hits.append, (t,))

    def watchdog(processed, now):
        if processed >= 2:
            eng.stop()

    eng.run(on_event=watchdog)
    assert hits == [1.0, 2.0]


def test_engine_counts_events_into_metrics():
    from repro.obs.runtime import Obs, activate

    bundle = Obs.create()
    with activate(bundle):
        eng = Engine()
        for t in (1.0, 2.0):
            eng.schedule_at(t, lambda: None)
        eng.run()
        eng.schedule_at(3.0, lambda: None)
        eng.step()
    assert eng.metrics is bundle.metrics
    assert bundle.metrics.snapshot().counters["engine.events"] == 3
