"""repro.obs.metrics: instruments, registry, and the merge contract."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import (
    HISTOGRAM_BOUNDS,
    N_BINS,
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
    histogram_bin,
    validate_instrument_name,
)


class TestInstruments:
    def test_counter_increments(self):
        c = Counter("client.syncs")
        c.inc()
        c.inc(3)
        assert c.value == 4

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="negative"):
            Counter("client.syncs").inc(-1)

    def test_gauge_tracks_high_water(self):
        g = Gauge("server.queue.depth")
        g.set(3)
        g.set(1)
        assert g.value == 1.0
        assert g.high == 3.0

    def test_histogram_observe(self):
        h = Histogram("client.sync.bytes")
        for v in (0.5, 2.0, 1024.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == pytest.approx(1026.5)
        assert h.min_value == 0.5
        assert h.max_value == 1024.0
        assert sum(h.counts) == 3

    def test_histogram_bin_edges(self):
        # Bin 0 is the underflow bucket; the last bin the overflow one.
        assert histogram_bin(0.0) == 0
        assert histogram_bin(HISTOGRAM_BOUNDS[0]) == 0
        assert histogram_bin(HISTOGRAM_BOUNDS[-1]) == N_BINS - 2
        assert histogram_bin(HISTOGRAM_BOUNDS[-1] * 2) == N_BINS - 1


class TestNaming:
    @pytest.mark.parametrize("name", [
        "server.rescues", "exchange.auctions.held", "a.b_c",
        "realtime.exchange.clearing_price",
    ])
    def test_valid_names(self, name):
        assert validate_instrument_name(name) == name

    @pytest.mark.parametrize("name", [
        "norcomponent", "Upper.case", "spaced name.x", "trailing.",
        ".leading", "dash-ed.name", "",
    ])
    def test_invalid_names_raise(self, name):
        with pytest.raises(ValueError, match="component.event"):
            validate_instrument_name(name)


class TestRegistry:
    def test_create_on_first_use_and_cache(self):
        reg = MetricsRegistry()
        assert reg.counter("a.b") is reg.counter("a.b")

    def test_cross_kind_alias_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a.b")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("a.b")
        with pytest.raises(ValueError, match="already registered"):
            reg.histogram("a.b")

    def test_snapshot_captures_all_kinds(self):
        reg = MetricsRegistry()
        reg.counter("c.n").inc(2)
        reg.gauge("g.n").set(5)
        reg.histogram("h.n").observe(1.5)
        snap = reg.snapshot()
        assert snap.counters == {"c.n": 2}
        assert snap.gauges == {"g.n": 5.0}
        assert snap.histograms["h.n"].count == 1


# ---------------------------------------------------------------------
# Merge contract: associativity with identity (the RPR004 invariant the
# Runner leans on when folding shard snapshots).
# ---------------------------------------------------------------------

_NAMES = st.sampled_from(["engine.events", "server.rescues",
                          "client.beacons", "exchange.auctions.held"])
# Integer-valued amounts keep float addition exact, so associativity is
# a strict equality rather than an approximation.
_AMOUNTS = st.integers(min_value=0, max_value=10_000).map(float)
_COUNTS = st.lists(st.integers(min_value=0, max_value=5),
                   min_size=N_BINS, max_size=N_BINS).map(tuple)

_HISTS = st.builds(
    HistogramSnapshot,
    counts=_COUNTS,
    total=_AMOUNTS,
    count=st.integers(min_value=0, max_value=100),
    min_value=st.none() | _AMOUNTS,
    max_value=st.none() | _AMOUNTS,
)

_SNAPSHOTS = st.builds(
    MetricsSnapshot,
    counters=st.dictionaries(_NAMES, _AMOUNTS, max_size=3),
    gauges=st.dictionaries(_NAMES, _AMOUNTS, max_size=3),
    histograms=st.dictionaries(_NAMES, _HISTS, max_size=2),
)


class TestMergeContract:
    @settings(max_examples=60, deadline=None)
    @given(a=_SNAPSHOTS, b=_SNAPSHOTS, c=_SNAPSHOTS)
    def test_merge_is_associative(self, a, b, c):
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    @settings(max_examples=60, deadline=None)
    @given(a=_SNAPSHOTS)
    def test_empty_snapshot_is_identity(self, a):
        empty = MetricsSnapshot()
        assert a.merge(empty) == empty.merge(a)
        assert a.merge(empty).counters == a.counters

    @settings(max_examples=60, deadline=None)
    @given(a=_SNAPSHOTS, b=_SNAPSHOTS)
    def test_merge_is_commutative(self, a, b):
        assert a.merge(b) == b.merge(a)

    def test_merge_semantics_by_kind(self):
        a = MetricsSnapshot(counters={"c.n": 2}, gauges={"g.n": 3.0})
        b = MetricsSnapshot(counters={"c.n": 5}, gauges={"g.n": 1.0})
        merged = a.merge(b)
        assert merged.counters["c.n"] == 7     # counters add
        assert merged.gauges["g.n"] == 3.0     # gauges keep the high-water

    def test_histogram_merge_is_binwise(self):
        reg1, reg2 = MetricsRegistry(), MetricsRegistry()
        reg1.histogram("h.n").observe(1.0)
        reg2.histogram("h.n").observe(1.0)
        reg2.histogram("h.n").observe(4096.0)
        merged = reg1.snapshot().merge(reg2.snapshot()).histograms["h.n"]
        assert merged.count == 3
        assert merged.counts[histogram_bin(1.0)] == 2
        assert merged.min_value == 1.0
        assert merged.max_value == 4096.0


class TestJsonRoundtrip:
    def test_snapshot_roundtrip(self):
        reg = MetricsRegistry()
        reg.counter("c.n").inc(2)
        reg.gauge("g.n").set(9)
        reg.histogram("h.n").observe(3.0)
        snap = reg.snapshot()
        assert MetricsSnapshot.from_jsonable(snap.to_jsonable()) == snap

    def test_histogram_roundtrip_preserves_none_bounds(self):
        empty = HistogramSnapshot()
        back = HistogramSnapshot.from_jsonable(empty.to_jsonable())
        assert back == empty
        assert back.min_value is None and back.max_value is None
