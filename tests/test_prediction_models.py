"""Unit tests for the slot-predictor suite."""

import numpy as np
import pytest

from repro.prediction.base import epochs_per_day, make_predictor, predictor_names
from repro.prediction.models import (
    EwmaTimeOfDayPredictor,
    LastValuePredictor,
    MarkovPredictor,
    OraclePredictor,
    QuantilePredictor,
    TimeOfDayMeanPredictor,
    ZeroPredictor,
)

HOUR = 3600.0


def test_epochs_per_day_validation():
    assert epochs_per_day(3600.0) == 24
    assert epochs_per_day(1800.0) == 48
    with pytest.raises(ValueError):
        epochs_per_day(0.0)
    with pytest.raises(ValueError):
        epochs_per_day(5000.0)   # does not divide a day


def test_registry_contains_all_models():
    assert {"zero", "last_value", "global_mean", "time_of_day", "ewma",
            "markov", "quantile", "hybrid", "oracle"} <= set(predictor_names())
    with pytest.raises(KeyError):
        make_predictor("nope", HOUR)


def test_zero_predictor():
    p = ZeroPredictor(HOUR)
    p.observe(0, 100)
    assert p.predict(1) == 0.0


def test_last_value_predictor():
    p = LastValuePredictor(HOUR)
    assert p.predict(0) == 0.0
    p.observe(0, 7)
    assert p.predict(1) == 7.0
    p.observe(1, 2)
    assert p.predict(2) == 2.0


def test_global_mean_predictor():
    p = make_predictor("global_mean", HOUR)
    for epoch, actual in enumerate([4, 8, 0]):
        p.observe(epoch, actual)
    assert p.predict(3) == pytest.approx(4.0)


def test_time_of_day_mean_learns_per_hour():
    p = TimeOfDayMeanPredictor(HOUR)
    # Hour 9 of day 0 and day 1: counts 10 and 20; hour 3 always 0.
    p.observe(9, 10)
    p.observe(3, 0)
    p.observe(24 + 9, 20)
    assert p.predict(48 + 9) == pytest.approx(15.0)
    assert p.predict(48 + 3) == 0.0
    assert p.predict(48 + 5) == 0.0      # never observed -> 0


def test_ewma_weights_recent_days_more():
    p = EwmaTimeOfDayPredictor(HOUR, alpha=0.5)
    p.observe(9, 10)
    p.observe(24 + 9, 20)
    assert p.predict(48 + 9) == pytest.approx(15.0)
    p.observe(48 + 9, 20)
    assert p.predict(72 + 9) == pytest.approx(17.5)
    with pytest.raises(ValueError):
        EwmaTimeOfDayPredictor(HOUR, alpha=0.0)


def test_markov_blends_transition_and_time_of_day():
    p = MarkovPredictor(HOUR, blend=1.0)
    # Alternate 0 and 8: after a 0 epoch the model should expect ~8.
    for epoch in range(40):
        p.observe(epoch, 0 if epoch % 2 == 0 else 8)
    # Current state after epoch 39 (count 8) -> next likely 0.
    assert p.predict(40) < 2.0
    p.observe(40, 0)
    assert p.predict(41) > 4.0


def test_quantile_predictor_is_conservative():
    p = QuantilePredictor(HOUR, q=0.25)
    for day in range(8):
        p.observe(day * 24 + 9, [0, 0, 10, 10, 10, 10, 10, 10][day])
    median_model = QuantilePredictor(HOUR, q=0.9)
    for day in range(8):
        median_model.observe(day * 24 + 9, [0, 0, 10, 10, 10, 10, 10, 10][day])
    assert p.predict(8 * 24 + 9) <= median_model.predict(8 * 24 + 9)
    with pytest.raises(ValueError):
        QuantilePredictor(HOUR, q=1.0)


def test_quantile_history_is_bounded():
    p = QuantilePredictor(HOUR, q=0.5, max_history=5)
    for day in range(20):
        p.observe(day * 24, day)
    assert p.predict(20 * 24) == pytest.approx(np.quantile(range(15, 20), 0.5))


def test_hybrid_is_convex_blend():
    p = make_predictor("hybrid", HOUR, weight_tod=0.5)
    p.observe(9, 10)             # tod[9]=10, last=10
    p.observe(10, 4)             # last=4
    assert p.predict(24 + 9) == pytest.approx(0.5 * 10 + 0.5 * 4)


def test_oracle_returns_truth():
    p = OraclePredictor(HOUR)
    p.set_truth([3, 1, 4, 1, 5], start_epoch=10)
    assert p.predict(12) == 4.0
    assert p.predict(999) == 0.0
    p.observe(999, 7)
    assert p.predict(999) == 7.0


def test_warm_up_feeds_history():
    p = TimeOfDayMeanPredictor(HOUR)
    p.warm_up([5] * 24, start_epoch=0)
    assert p.predict(24 + 9) == pytest.approx(5.0)
