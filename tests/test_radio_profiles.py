"""Unit tests for radio power/timing profiles."""

import dataclasses

import pytest

from repro.radio.profiles import (
    LTE,
    PROFILES,
    THREE_G,
    THREE_G_FAST_DORMANCY,
    WIFI,
    get_profile,
)


def test_builtin_profiles_registered():
    assert set(PROFILES) == {"3g", "3g-fd", "lte", "wifi"}
    assert get_profile("3g") is THREE_G
    assert get_profile("3g-fd") is THREE_G_FAST_DORMANCY
    assert get_profile("lte") is LTE
    assert get_profile("wifi") is WIFI


def test_fast_dormancy_cuts_tail_not_promotion():
    assert THREE_G_FAST_DORMANCY.tail_energy < 0.3 * THREE_G.tail_energy
    assert THREE_G_FAST_DORMANCY.promo_energy == THREE_G.promo_energy
    # An isolated fetch still costs several joules (the promotion).
    isolated = THREE_G_FAST_DORMANCY.isolated_transfer_energy(4000)
    assert 2.0 < isolated < 0.6 * THREE_G.isolated_transfer_energy(4000)


def test_unknown_profile_raises():
    with pytest.raises(KeyError, match="unknown radio profile"):
        get_profile("5g")


def test_tail_energy_matches_components():
    p = THREE_G
    expected = (p.high_tail_power * p.high_tail_time
                + p.low_tail_power * p.low_tail_time)
    assert p.tail_energy == pytest.approx(expected)
    assert p.tail_time == pytest.approx(p.high_tail_time + p.low_tail_time)


def test_transfer_time_scales_with_bytes():
    p = THREE_G
    assert p.transfer_time(0) == pytest.approx(p.rtt)
    one_mb = p.transfer_time(1_000_000)
    assert one_mb == pytest.approx(p.rtt + 1_000_000 / p.throughput)
    assert p.transfer_time(2_000_000) > one_mb


def test_transfer_time_rejects_negative_bytes():
    with pytest.raises(ValueError):
        THREE_G.transfer_time(-1)


def test_isolated_transfer_energy_decomposition():
    p = THREE_G
    energy = p.isolated_transfer_energy(4000)
    expected = (p.promo_energy + p.active_power * p.transfer_time(4000)
                + p.tail_energy)
    assert energy == pytest.approx(expected)
    # The tail dominates a small ad fetch — the paper's core observation.
    assert p.tail_energy > 0.5 * energy


def test_wifi_tail_is_tiny_compared_to_cellular():
    assert WIFI.tail_energy < 0.05 * THREE_G.tail_energy
    assert WIFI.isolated_transfer_energy(4000) < THREE_G.isolated_transfer_energy(4000)


def test_profile_validation():
    with pytest.raises(ValueError):
        dataclasses.replace(THREE_G, throughput=0)
    with pytest.raises(ValueError):
        dataclasses.replace(THREE_G, promo_time=-1.0)
