"""Client SDK resilience under fault injection, and the sync-boundary
regression: expiry runs *after* the sync merge, so assignments that are
already past their deadline on arrival count as deadline losses."""

import numpy as np
import pytest

from repro.client.device import Device
from repro.client.sdk import AdClient
from repro.client.timeline import KIND_APP, KIND_SLOT, KIND_SLOT_START, ClientTimeline
from repro.core.overbooking import Assignment
from repro.exchange.marketplace import Sale
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.radio.profiles import THREE_G
from repro.server.adserver import SyncResponse
from repro.workloads.appstore import TOP15

DAY = 86400.0


class FakeServer:
    """Scripted server: records calls, returns canned responses."""

    def __init__(self, assignments=None):
        self.assignments = list(assignments or [])
        self.syncs: list[tuple[float, list]] = []
        self.reports: list[tuple[float, list]] = []
        self.displays: list[tuple[int, str, float]] = []

    def sync(self, user_id, now, reports):
        self.syncs.append((now, list(reports)))
        assignments, self.assignments = self.assignments, []
        nbytes = 400 + sum(a.sale.creative_bytes for a in assignments)
        return SyncResponse(assignments=assignments,
                            invalidated_ids=set(), nbytes=nbytes)

    def report(self, user_id, reports):
        self.reports.append((0.0, list(reports)))
        return set()

    def rescue(self, user_id, now):
        return []

    def record_display(self, sale_id, user_id, time):
        self.displays.append((sale_id, user_id, time))

    def realtime_fill(self, now, category, platform):
        return None


def _sale(sale_id, deadline=1e9) -> Sale:
    return Sale(sale_id=sale_id, campaign_id="c", price=1.0,
                creative_bytes=4000, sold_at=0.0, deadline=deadline)


def _timeline(events) -> ClientTimeline:
    times = np.array([e[0] for e in events], dtype=np.float64)
    kinds = np.array([e[1] for e in events], dtype=np.int8)
    payload = np.array([e[2] for e in events], dtype=np.float64)
    return ClientTimeline("u1", "wp", times, kinds, payload)


def _client(events, plan=None, seed=1, **kwargs) -> AdClient:
    faults = None
    if plan is not None:
        faults = FaultInjector(plan, seed=seed, horizon=DAY).for_user("u1")
    return AdClient(_timeline(events), Device("u1", THREE_G), TOP15,
                    faults=faults, **kwargs)


#: Everything the injector can throw is off except what each test turns
#: on explicitly.
def _plan(**overrides) -> FaultPlan:
    return FaultPlan(**overrides)


# ----------------------------------------------------------------------
# Satellite: cache-expiry runs after the sync merge
# ----------------------------------------------------------------------


def test_sync_expires_dead_on_arrival_assignments():
    """An assignment already past its deadline when the download lands
    must be dropped (a counted deadline loss), not left queued."""
    server = FakeServer(assignments=[Assignment(_sale(1, deadline=5.0)),
                                     Assignment(_sale(2))])
    client = _client([(10.0, KIND_SLOT_START, 0)])
    client.run_epoch(0.0, 3600.0, server)
    # Sale 1's deadline (5.0) predates the sync at t=10: expired on
    # arrival. Sale 2 is fine and fills the slot.
    assert client.queue.stats.expired == 1
    assert client.queue.peek_ids() == []
    assert client.stats.cached_displays == 1
    assert [d[0] for d in server.displays] == [2]


def test_sync_expiry_boundary_is_the_arrival_time():
    """deadline == arrival time is a loss; deadline just after is not.

    Pins the ordering *and* the boundary: ``drop_expired(arrival)``
    keeps ``deadline >= arrival``, and ``pop_for_display`` at the same
    instant can still show it.
    """
    at_boundary = FakeServer(assignments=[Assignment(_sale(1, deadline=10.0))])
    client = _client([(10.0, KIND_SLOT_START, 0)])
    client.run_epoch(0.0, 3600.0, at_boundary)
    assert client.queue.stats.expired == 0
    assert client.stats.cached_displays == 1

    past = FakeServer(assignments=[Assignment(_sale(1, deadline=9.999))])
    client2 = _client([(10.0, KIND_SLOT_START, 0)])
    client2.run_epoch(0.0, 3600.0, past)
    assert client2.queue.stats.expired == 1
    assert client2.stats.cached_displays == 0


def test_latency_inflation_expires_ads_that_missed_their_window():
    """With inflated sync latency the expiry cut moves to now + delay:
    ads whose deadline falls inside the delay are deadline losses."""
    plan = _plan(latency_mean_s=120.0)
    client = _client([(10.0, KIND_SLOT_START, 0)], plan=plan)
    delay_probe = FaultInjector(plan, seed=1, horizon=DAY).for_user("u1")
    delay = delay_probe.sync_delay()
    assert delay > 0.0
    server = FakeServer(assignments=[
        Assignment(_sale(1, deadline=10.0 + delay / 2.0)),
        Assignment(_sale(2, deadline=1e9)),
    ])
    client.run_epoch(0.0, 3600.0, server)
    assert client.queue.stats.expired == 1     # died mid-download
    assert client.stats.cached_displays == 1   # sale 2 served
    # The radio paid for the inflated transfer (longer active period
    # than the same bytes without the delay).
    clean = _client([(10.0, KIND_SLOT_START, 0)])
    clean_server = FakeServer(assignments=[
        Assignment(_sale(1, deadline=10.0 + delay / 2.0)),
        Assignment(_sale(2, deadline=1e9)),
    ])
    clean.run_epoch(0.0, 3600.0, clean_server)
    client.device.finish(3600.0)
    clean.device.finish(3600.0)
    assert client.device.ad_energy() > clean.device.ad_energy()


# ----------------------------------------------------------------------
# Retry with exponential backoff
# ----------------------------------------------------------------------


def _lossy_plan(**overrides) -> FaultPlan:
    # loss_prob close to 1: every attempt fails (but valid, < 1).
    return _plan(loss_prob=0.999999, **overrides)


def test_failed_sync_retries_at_next_event_after_backoff():
    plan = _plan(loss_prob=0.5, backoff_base_s=30.0, backoff_jitter=0.0,
                 max_retries=4)
    events = [(float(t), KIND_SLOT, 0) for t in range(10, 3600, 60)]
    client = _client(events, plan=plan, seed=3)
    server = FakeServer(assignments=[Assignment(_sale(1))])
    client.run_epoch(0.0, 3600.0, server)
    # With 50% loss and 4 retries the sync virtually always lands.
    assert client.stats.syncs == 1
    sync_time = server.syncs[0][0]
    assert sync_time >= 10.0
    if sync_time > 10.0:          # at least one attempt failed first
        assert sync_time - 10.0 >= plan.backoff_base_s


def test_retry_budget_exhausts_and_epoch_degrades_to_house_ads():
    client = _client([(float(t), KIND_SLOT, 0)
                      for t in range(10, 3600, 300)],
                     plan=_lossy_plan(max_retries=2))
    server = FakeServer(assignments=[Assignment(_sale(1))])
    client.run_epoch(0.0, 3600.0, server)
    assert client.stats.syncs == 0
    assert server.syncs == []                   # nothing ever reached it
    assert client.stats.cached_displays == 0
    assert client.stats.house_displays == len(range(10, 3600, 300))
    # 1 first attempt + 2 retries, then the budget is spent.
    assert client._sync_attempts == 3


def test_failed_attempts_charge_honest_radio_energy():
    plan = _lossy_plan(max_retries=1, failed_attempt_bytes=500)
    client = _client([(10.0, KIND_SLOT, 0), (600.0, KIND_SLOT, 0)],
                     plan=plan)
    client.run_epoch(0.0, 3600.0, FakeServer())
    # Two failed sync attempts plus two failed slot-fill attempts, each
    # charged at failed_attempt_bytes.
    assert client.device.ad_bytes == 4 * 500
    client.device.finish(3600.0)
    assert client.device.ad_energy() > 0.0

    free = _lossy_plan(max_retries=1, failed_attempt_bytes=0)
    silent = _client([(10.0, KIND_SLOT, 0), (600.0, KIND_SLOT, 0)],
                     plan=free)
    silent.run_epoch(0.0, 3600.0, FakeServer())
    assert silent.device.ad_bytes == 0


# ----------------------------------------------------------------------
# Deferred reports and beacons
# ----------------------------------------------------------------------


def test_lost_piggyback_keeps_reports_queued_for_next_contact():
    """Reports survive lost flush attempts — the deferred-report queue."""
    server = FakeServer(assignments=[Assignment(_sale(1))])
    # Sync succeeds at t=10 (before the rigged loss window) ... then all
    # piggyback flushes fail. Simplest rig: serve the sync fault-free,
    # then attach a total-loss injector for the rest of the epoch.
    client = _client([(10.0, KIND_SLOT_START, 0),
                      (20.0, KIND_APP, 5000),
                      (30.0, KIND_APP, 5000)], report_delay_s=1e9)
    client.run_epoch(0.0, 3600.0, server)
    assert server.reports        # fault-free: flushed on app traffic

    faulty = _client([(10.0, KIND_SLOT_START, 0),
                      (20.0, KIND_APP, 5000),
                      (30.0, KIND_APP, 5000)],
                     plan=_lossy_plan(), report_delay_s=1e9)
    faulty_server = FakeServer(assignments=[Assignment(_sale(1))])
    faulty.run_epoch(0.0, 3600.0, faulty_server)
    # The sync itself failed too (total loss): no display at all, and
    # nothing was ever reported.
    assert faulty_server.reports == []
    assert faulty.stats.cached_displays == 0


def test_lost_beacon_charges_radio_and_keeps_reports():
    plan = _lossy_plan(failed_attempt_bytes=500)
    faults = FaultInjector(plan, seed=1, horizon=DAY).for_user("u1")
    client = AdClient(_timeline([(10.0, KIND_SLOT_START, 0)]),
                      Device("u1", THREE_G), TOP15,
                      report_delay_s=300.0, faults=faults)
    # Seed a pending report directly (display happened somehow).
    client._pending_reports = [(1, 10.0)]
    server = FakeServer()
    client._maybe_beacon(400.0, server)
    assert server.reports == []
    assert client._pending_reports == [(1, 10.0)]
    assert client.device.ad_bytes == 500      # the failed beacon


def test_dark_device_stops_and_never_beacons():
    plan = _plan(churn_prob=1.0)
    faults = FaultInjector(plan, seed=1, horizon=DAY).for_user("u1")
    dark_from = faults.dark_from
    assert dark_from < DAY
    events = [(dark_from - 10.0, KIND_SLOT_START, 0),
              (dark_from + 10.0, KIND_SLOT, 0),
              (dark_from + 20.0, KIND_APP, 5000)]
    client = AdClient(_timeline(events), Device("u1", THREE_G), TOP15,
                      report_delay_s=60.0, faults=faults)
    server = FakeServer(assignments=[Assignment(_sale(1)),
                                     Assignment(_sale(2))])
    client.run_epoch(0.0, DAY, server)
    # Only the pre-churn slot was served; no post-churn events ran and
    # the trailing overdue beacon was suppressed (the device is off).
    assert client.stats.total_slots == 1
    assert client.device.app_bytes == 0
    assert server.reports == []


def test_faulty_and_fault_free_clients_match_without_fault_knobs():
    """A plan whose only fault is a server blackout outside the replayed
    window never fires, so the client behaves exactly as without
    faults (loss draws are made but the deterministic gates all pass
    and loss_prob is zero)."""
    plan = _plan(server_outages=((DAY * 10, DAY * 11),))
    events = [(10.0, KIND_SLOT_START, 0), (40.0, KIND_SLOT, 0),
              (50.0, KIND_APP, 5000)]
    faulty = _client(events, plan=plan)
    clean = _client(events)
    for client in (faulty, clean):
        client.run_epoch(0.0, 3600.0,
                         FakeServer(assignments=[Assignment(_sale(1)),
                                                 Assignment(_sale(2))]))
    assert faulty.stats == clean.stats
    assert faulty.device.ad_bytes == clean.device.ad_bytes
    faulty.device.finish(3600.0)
    clean.device.finish(3600.0)
    assert faulty.device.ad_energy() == clean.device.ad_energy()
