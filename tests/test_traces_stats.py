"""Unit tests for trace characterization statistics."""

import numpy as np
import pytest

from repro.traces.schema import SECONDS_PER_HOUR, Session, Trace
from repro.traces.stats import (
    cdf,
    epoch_slot_counts,
    hour_of_day_profile,
    hourly_slot_counts,
    refresh_map,
    slots_per_user_day,
    summarize,
    user_hourly_slot_counts,
)
from repro.workloads.appstore import TOP15


def _hand_trace() -> tuple[Trace, dict[str, float]]:
    """Two users, two days, slot counts computable by hand."""
    trace = Trace(n_days=2)
    # u1: one 65 s session at 10:00 day 0 in a 30 s-refresh app -> 3 slots.
    trace.add_session(Session("u1", "g", 10 * SECONDS_PER_HOUR, 65.0))
    # u1: one 10 s session at 10:30 day 1 -> 1 slot.
    trace.add_session(Session("u1", "g", 34.5 * SECONDS_PER_HOUR, 10.0))
    # u2: one 130 s session at 20:00 day 0 in a 60 s-refresh app -> 3 slots.
    trace.add_session(Session("u2", "m", 20 * SECONDS_PER_HOUR, 130.0))
    return trace, {"g": 30.0, "m": 60.0}


def test_slots_per_user_day_by_hand():
    trace, refresh = _hand_trace()
    matrix = slots_per_user_day(trace, refresh)
    # Rows sorted by user id: u1, u2.
    assert matrix.tolist() == [[3, 1], [3, 0]]


def test_hourly_slot_counts_by_hand():
    trace, refresh = _hand_trace()
    hourly = hourly_slot_counts(trace, refresh)
    assert hourly[10] == 3
    assert hourly[20] == 3
    assert hourly[34] == 1
    assert hourly.sum() == 7
    assert user_hourly_slot_counts(trace, "u2", refresh)[20] == 3


def test_epoch_slot_counts_hourly_and_coarser():
    trace, refresh = _hand_trace()
    hourly = epoch_slot_counts(trace, refresh, 3600.0)
    assert hourly["u1"][10] == 3
    assert hourly["u1"][34] == 1
    two_hourly = epoch_slot_counts(trace, refresh, 7200.0)
    assert two_hourly["u1"][5] == 3      # hours 10-11 -> epoch 5
    assert two_hourly["u2"][10] == 3     # hours 20-21 -> epoch 10
    with pytest.raises(ValueError):
        epoch_slot_counts(trace, refresh, 0.0)


def test_summarize_by_hand():
    trace, refresh = _hand_trace()
    summary = summarize(trace, refresh)
    assert summary.n_users == 2
    assert summary.n_slots == 7
    assert summary.slots_per_user_day_mean == pytest.approx(7 / 4)
    assert summary.active_user_fraction == 1.0
    assert summary.peak_hour in (10, 20)


def test_hour_of_day_profile_sums_to_one():
    trace, refresh = _hand_trace()
    profile = hour_of_day_profile(trace, refresh)
    assert profile.sum() == pytest.approx(1.0)
    # Hour 10 collects u1's day-0 slots (3) plus its day-1 slot at 10:30.
    assert profile[10] == pytest.approx(4 / 7)
    assert profile[20] == pytest.approx(3 / 7)


def test_hour_of_day_profile_rejects_empty_trace():
    with pytest.raises(ValueError):
        hour_of_day_profile(Trace(n_days=1), {})


def test_cdf_properties():
    values, probs = cdf(np.array([3.0, 1.0, 2.0, 2.0]))
    assert values.tolist() == [1.0, 2.0, 2.0, 3.0]
    assert probs[-1] == pytest.approx(1.0)
    with pytest.raises(ValueError):
        cdf(np.array([]))


def test_refresh_map_covers_catalog():
    refresh = refresh_map(TOP15)
    assert len(refresh) == 15
    assert all(v > 0 for v in refresh.values())
