"""The run ledger: records, append/merge ordering, diff, regress.

Covers the :mod:`repro.obs.ledger` machinery end to end — RunRecord
round-trips, seq assignment and the schema header, reference
resolution, tolerance-aware diffs, the regress gate (including an
artificially injected counter regression, which must fail), the
Runner's ``ObsOptions.ledger`` integration at jobs 1 vs 4, and the
frozen golden for :func:`repro.obs.manifest.config_digest` so silent
identity-hash drift cannot slip through.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.config import ExperimentConfig
from repro.obs.ledger import (
    LEDGER_SCHEMA_NAME,
    LEDGER_SCHEMA_VERSION,
    Ledger,
    LedgerError,
    RunRecord,
    diff_records,
    merge_records,
    regress,
    snapshot_digest,
    timings_path_for,
)
from repro.obs.manifest import build_manifest, config_digest
from repro.obs.metrics import MetricsSnapshot
from repro.obs.resources import ResourceTelemetry, collect_telemetry
from repro.obs.runtime import ObsOptions
from repro.runner import Runner


def make_record(**overrides) -> RunRecord:
    params = dict(
        experiment="e9",
        system="headline",
        config_hash="c" * 64,
        seed=7,
        n_shards=2,
        parallelism=1,
        backend="event",
        fault_plan_hash=None,
        rng_stream_manifest_hash="s" * 64,
        counter_totals={"throughput.users_total": 40.0,
                        "server.rescues": 3.0},
        metrics={"prefetch.energy.ad_joules": 123.456,
                 "headline.energy_savings": 0.55},
        metrics_digest="d" * 64,
    )
    params.update(overrides)
    return RunRecord(**params)


# ---------------------------------------------------------------------
# RunRecord
# ---------------------------------------------------------------------


class TestRunRecord:
    def test_jsonable_round_trip(self):
        record = make_record(seq=4)
        assert RunRecord.from_jsonable(record.to_jsonable()) == record

    def test_round_trip_through_json_text(self):
        record = make_record()
        text = json.dumps(record.to_jsonable(), sort_keys=True)
        assert RunRecord.from_jsonable(json.loads(text)) == record

    def test_record_id_excludes_seq(self):
        record = make_record()
        assert record.with_seq(9).record_id == record.record_id
        assert len(record.record_id) == 12

    def test_record_id_sensitive_to_counters(self):
        record = make_record()
        changed = make_record(
            counter_totals={**record.counter_totals,
                            "server.rescues": 4.0})
        assert changed.record_id != record.record_id

    def test_run_key_excludes_parallelism(self):
        assert (make_record(parallelism=1).run_key
                == make_record(parallelism=4).run_key)
        assert (make_record(backend="event").run_key
                != make_record(backend="batched").run_key)

    def test_from_manifest_carries_identity_not_timing(self):
        config = ExperimentConfig(n_users=20, n_days=4, train_days=2,
                                  seed=11)
        manifest = build_manifest(
            config, system="headline", n_shards=2, parallelism=1,
            trace_enabled=False, elapsed_s=12.5,
            counter_totals={"server.rescues": 2.0})
        record = RunRecord.from_manifest(manifest, experiment="e9")
        assert record.experiment == "e9"
        assert record.config_hash == manifest.config_hash
        assert record.seed == 11
        assert record.counter_totals == {"server.rescues": 2.0}
        # Timing-bearing manifest fields never enter the record.
        assert "elapsed" not in json.dumps(record.to_jsonable())


def test_config_digest_golden():
    """Frozen golden: the identity hash of a pinned config.

    If this fails, the config hashing scheme changed — every committed
    ledger record and run manifest becomes incomparable with history.
    Bump deliberately (regenerate benchmarks/ledger.jsonl) or fix the
    accidental drift.
    """
    config = ExperimentConfig(n_users=20, n_days=4, train_days=2, seed=11)
    assert config_digest(config) == (
        "491fad4c0488ae6f4b13cbce14e12af59f5c4b91120c655fab27f6236d63f9b6")


def test_snapshot_digest_stable_and_content_sensitive():
    snapshot = MetricsSnapshot(counters={"a": 1.0})
    assert snapshot_digest(snapshot) == snapshot_digest(
        MetricsSnapshot(counters={"a": 1.0}))
    assert snapshot_digest(snapshot) != snapshot_digest(
        MetricsSnapshot(counters={"a": 2.0}))


# ---------------------------------------------------------------------
# Ledger file: append, header, resolve, timings sibling
# ---------------------------------------------------------------------


class TestLedgerFile:
    def test_append_assigns_monotone_seq(self, tmp_path):
        ledger = Ledger(tmp_path / "ledger.jsonl")
        first = ledger.append(make_record())
        second = ledger.append(make_record(seed=8))
        assert (first.seq, second.seq) == (1, 2)
        assert [r.seq for r in ledger.records()] == [1, 2]

    def test_file_starts_with_schema_header(self, tmp_path):
        ledger = Ledger(tmp_path / "ledger.jsonl")
        ledger.append(make_record())
        head = ledger.path.read_text().splitlines()[0]
        assert json.loads(head) == {"schema": LEDGER_SCHEMA_NAME,
                                    "version": LEDGER_SCHEMA_VERSION}

    def test_unsupported_schema_version_raises(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        path.write_text(json.dumps(
            {"schema": LEDGER_SCHEMA_NAME, "version": 999}) + "\n")
        with pytest.raises(LedgerError, match="schema version"):
            Ledger(path).records()

    def test_malformed_line_raises_with_line_number(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(LedgerError, match="line 1"):
            Ledger(path).records()

    def test_missing_ledger_reads_empty(self, tmp_path):
        assert Ledger(tmp_path / "absent.jsonl").records() == []

    def test_telemetry_goes_to_timings_sibling_only(self, tmp_path):
        ledger = Ledger(tmp_path / "ledger.jsonl")
        telemetry = collect_telemetry(elapsed_s=1.25, users_total=40.0)
        appended = ledger.append(make_record(), telemetry=telemetry,
                                 timing_extra={"benchmark": {"total": 1.2}})
        sibling = timings_path_for(ledger.path)
        assert sibling == tmp_path / "ledger.timings.jsonl"
        row = json.loads(sibling.read_text().splitlines()[0])
        assert row["record_id"] == appended.record_id
        assert row["resources"]["elapsed_s"] == 1.25
        assert row["benchmark"] == {"total": 1.2}
        # The committed side stays timing-free.
        assert "elapsed" not in ledger.path.read_text()

    def test_resolve_latest_seq_and_prefix(self, tmp_path):
        ledger = Ledger(tmp_path / "ledger.jsonl")
        first = ledger.append(make_record())
        second = ledger.append(make_record(seed=8))
        assert ledger.resolve("latest") == second
        assert ledger.resolve("1") == first
        assert ledger.resolve("-2") == first
        assert ledger.resolve(first.record_id[:6]) == first

    def test_resolve_errors(self, tmp_path):
        ledger = Ledger(tmp_path / "ledger.jsonl")
        with pytest.raises(LedgerError, match="empty or missing"):
            ledger.resolve("latest")
        ledger.append(make_record())
        with pytest.raises(LedgerError, match="no record with seq"):
            ledger.resolve("99")
        with pytest.raises(LedgerError, match="no record with id"):
            ledger.resolve("zzzzzz")


def test_merge_records_orders_dedups_and_is_associative():
    a = make_record(seed=1).with_seq(1)
    b = make_record(seed=2).with_seq(2)
    c = make_record(seed=3).with_seq(3)
    merged = merge_records([b, a], [a, c])
    assert merged == [a, b, c]
    # Associativity: (x ∪ y) ∪ z == x ∪ (y ∪ z).
    assert merge_records(merge_records([b], [a]), [c]) == \
        merge_records([b], merge_records([a], [c]))


# ---------------------------------------------------------------------
# diff_records
# ---------------------------------------------------------------------


class TestDiff:
    def test_identical_records_agree(self):
        assert diff_records(make_record(), make_record()) == []

    def test_counter_drift_is_always_a_problem(self):
        base = make_record()
        drifted = make_record(
            counter_totals={**base.counter_totals,
                            "server.rescues": 3.0 + 1e-12})
        problems = diff_records(base, drifted)
        assert any("bit-identical" in p for p in problems)

    def test_contract_float_within_tolerance_passes(self):
        base = make_record()
        nudged = make_record(
            metrics={**base.metrics,
                     "prefetch.energy.ad_joules": 123.456 * (1 + 1e-12)})
        assert diff_records(base, nudged) == []

    def test_uncovered_metric_needs_rel_tol(self):
        base = make_record()
        nudged = make_record(
            metrics={**base.metrics,
                     "headline.energy_savings": 0.55 * (1 + 1e-7)})
        assert diff_records(base, nudged) != []
        assert diff_records(base, nudged, rel_tol=1e-6) == []

    def test_identity_mismatch_reported(self):
        problems = diff_records(make_record(), make_record(seed=8))
        assert any(p.startswith("identity: seed") for p in problems)

    def test_digest_mismatch_caught_when_totals_match(self):
        problems = diff_records(make_record(),
                                make_record(metrics_digest="e" * 64))
        assert any("metrics_digest" in p for p in problems)


# ---------------------------------------------------------------------
# regress
# ---------------------------------------------------------------------


class TestRegress:
    def test_single_record_skips(self):
        report = regress([make_record().with_seq(1)])
        assert report.ok and report.compared == 0
        assert len(report.skipped) == 1

    def test_clean_rerun_passes(self):
        history = [make_record().with_seq(1), make_record().with_seq(2)]
        report = regress(history)
        assert report.ok and report.compared == 1

    def test_injected_counter_regression_fails(self):
        baseline = make_record().with_seq(1)
        regressed = make_record(
            counter_totals={**baseline.counter_totals,
                            "server.rescues": 99.0}).with_seq(2)
        report = regress([baseline, regressed])
        assert not report.ok
        assert any("server.rescues" in p for p in report.problems)
        assert "FAIL" in report.render()

    def test_explicit_baseline_ledger(self):
        baseline = [make_record().with_seq(1)]
        good = [make_record().with_seq(1)]
        bad = [make_record(
            metrics={"prefetch.energy.ad_joules": 200.0,
                     "headline.energy_savings": 0.55}).with_seq(1)]
        assert regress(good, baseline).ok
        assert not regress(bad, baseline).ok

    def test_keys_are_independent(self):
        # A regression in one experiment does not mask the other.
        e9 = [make_record().with_seq(1), make_record().with_seq(3)]
        e5_base = make_record(experiment="e5").with_seq(2)
        e5_bad = make_record(
            experiment="e5",
            counter_totals={"throughput.users_total": 41.0,
                            "server.rescues": 3.0}).with_seq(4)
        report = regress(e9 + [e5_base, e5_bad])
        assert report.compared == 2
        assert all("e5" in p for p in report.problems)
        assert not report.ok


# ---------------------------------------------------------------------
# Runner integration
# ---------------------------------------------------------------------


def test_runner_appends_identical_records_at_any_parallelism(tmp_path):
    """Instrumented ledger runs stay bit-identical at jobs 1 vs 4."""
    path = tmp_path / "ledger.jsonl"
    config = ExperimentConfig(n_users=24, n_days=4, train_days=2, seed=5)
    for jobs in (1, 4):
        Runner(config, parallelism=jobs, shards=4,
               obs=ObsOptions(ledger=path)).run("headline")
    records = Ledger(path).records()
    assert [r.seq for r in records] == [1, 2]
    one, four = records
    assert one.run_key == four.run_key
    assert one.counter_totals == four.counter_totals
    assert one.metrics == four.metrics
    assert one.metrics_digest == four.metrics_digest
    assert one.counter_totals["throughput.users_total"] > 0
    assert one.counter_totals["throughput.events_total"] > 0
    report = regress(records)
    assert report.ok and report.compared == 1
    # Telemetry rode the gitignored sibling.
    timing_rows = [json.loads(line) for line in
                   timings_path_for(path).read_text().splitlines()]
    assert len(timing_rows) == 2
    assert all(row["resources"]["elapsed_s"] > 0 for row in timing_rows)


def test_runner_result_carries_resource_telemetry():
    config = ExperimentConfig(n_users=16, n_days=4, train_days=2, seed=5)
    result = Runner(config, shards=2).run("realtime")
    telemetry = result.resources
    assert isinstance(telemetry, ResourceTelemetry)
    assert telemetry.elapsed_s > 0
    assert telemetry.users_total == \
        result.metrics.counters["throughput.users_total"]
    assert telemetry.users_per_sec > 0
    assert telemetry.events_per_sec > 0
    # getrusage is available on the platforms CI runs on.
    assert telemetry.peak_rss_bytes > 0
    round_tripped = ResourceTelemetry.from_jsonable(telemetry.to_jsonable())
    assert round_tripped == telemetry
