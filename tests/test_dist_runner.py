"""Tests for the repro.dist coordinator/worker runner.

The contract under test is the ISSUE's acceptance bar: a
``Runner(executor="dist")`` run — at any worker count, including under
seeded worker-kill / duplicate-result chaos — merges **bit-identical**
to the ``executor="pool", parallelism=1`` run; a killed worker's shards
are re-dispatched with a ``lost`` postmortem written; and a crashing
shard produces the same flight-recorder postmortem whichever executor
ran it.
"""

from __future__ import annotations

from collections import deque

import pytest

from repro.cli import main
from repro.dist.coordinator import Coordinator, DistError, _ShardState
from repro.dist.protocol import (
    JobAck,
    JobEnvelope,
    JobNack,
    ResultEnvelope,
    WorkerHello,
)
from repro.dist.transport import STOP, Transport
from repro.faults.chaos import CoordinatorChaos
from repro.obs.ledger import snapshot_digest
from repro.obs.live import LiveAggregator, LiveOptions, ShardBeat
from repro.runner import Runner, run_shard_task


def _dist_live(tmp_path):
    """Quiet live options with postmortems under the test tmp dir."""
    return LiveOptions(postmortem_dir=tmp_path / "postmortems")


def _tasks(tiny_config, tiny_world, system="headline", shards=3):
    runner = Runner(tiny_config, shards=shards, world=tiny_world)
    return runner._tasks(system, tiny_world)


# ---------------------------------------------------------------------
# Bit-identity: dist vs pool, clean and under chaos
# ---------------------------------------------------------------------


@pytest.fixture(scope="module")
def pool_baseline(tiny_config, tiny_world):
    """The reference serial pool run every dist run must reproduce."""
    return Runner(tiny_config, parallelism=1, shards=3,
                  world=tiny_world).run("headline")


def test_dist_is_bit_identical_to_serial_pool(tiny_config, tiny_world,
                                              pool_baseline, tmp_path):
    result = Runner(tiny_config, executor="dist", workers=2, shards=3,
                    world=tiny_world,
                    obs=None).run("headline")
    assert snapshot_digest(result.metrics) == snapshot_digest(
        pool_baseline.metrics)
    assert result.comparison == pool_baseline.comparison
    assert result.prefetch == pool_baseline.prefetch
    assert result.realtime == pool_baseline.realtime
    stats = result.dist
    assert stats is not None
    assert stats.workers == 2
    assert stats.attempts == 3
    assert stats.workers_lost == 0
    # Dist bookkeeping must never leak into the merged snapshot.
    assert not any(name.startswith("dist.") for name in
                   result.metrics.counters)


def test_chaos_kills_requeue_and_stay_bit_identical(
        tiny_config, tiny_world, pool_baseline):
    """Every shard's worker dies once after computing the result; the
    coordinator re-dispatches each shard and the merged run must not
    move by a single bit."""
    chaos = CoordinatorChaos(seed=11, kill_prob=1.0)
    result = Runner(tiny_config, executor="dist", workers=2, shards=3,
                    world=tiny_world, chaos=chaos).run("headline")
    assert snapshot_digest(result.metrics) == snapshot_digest(
        pool_baseline.metrics)
    assert result.comparison == pool_baseline.comparison
    stats = result.dist
    assert stats is not None
    assert stats.workers_lost >= 1
    assert stats.requeues == 3              # one steal per killed shard
    # Each killed worker's shard left a `lost` postmortem behind.
    lost = [p for p in result.postmortems if p.name.endswith("-lost.json")]
    assert lost, "worker loss must write lost postmortems"
    assert all(p.is_file() for p in result.postmortems)


def test_chaos_duplicates_are_discarded_by_shard_index(
        tiny_config, tiny_world, pool_baseline):
    chaos = CoordinatorChaos(seed=5, duplicate_prob=1.0)
    result = Runner(tiny_config, executor="dist", workers=2, shards=3,
                    world=tiny_world, chaos=chaos).run("headline")
    assert snapshot_digest(result.metrics) == snapshot_digest(
        pool_baseline.metrics)
    assert result.comparison == pool_baseline.comparison
    stats = result.dist
    assert stats is not None
    assert stats.duplicates_discarded == 3  # every result sent twice


def test_persistently_crashing_shard_exhausts_retries(
        tiny_config, tiny_world, tmp_path):
    tasks = _tasks(tiny_config, tiny_world, system="realtime", shards=2)
    tasks[1].system = "bogus"               # detonates inside execute_shard
    coordinator = Coordinator(tasks, workers=2,
                              live=_dist_live(tmp_path),
                              system="realtime", backend="event",
                              max_attempts=2)
    with pytest.raises(DistError, match="shard 1 failed after 2"):
        coordinator.run()
    assert coordinator.stats.nacks >= 2


# ---------------------------------------------------------------------
# Crash-capture parity between executors (shared flightrec helper)
# ---------------------------------------------------------------------


def test_crash_postmortem_renders_identically_across_executors(
        tiny_config, tiny_world, tmp_path, capsys):
    """Pool worker and dist worker share ``run_shard_task`` and the
    ``capture_shard_crash`` helper, so ``obs postmortem show`` must
    render byte-identical reports for the same crashing shard."""
    from repro.obs.live import CallbackTransport, WorkerLiveSetup

    tasks = _tasks(tiny_config, tiny_world, system="realtime", shards=2)
    tasks[1].system = "bogus"

    pool_dir = tmp_path / "pool-postmortems"
    setup = WorkerLiveSetup(transport=CallbackTransport(lambda beat: None),
                            beat_interval_s=0.0, ring_size=32,
                            postmortem_dir=pool_dir,
                            system="realtime", backend="event")
    with pytest.raises(ValueError, match="bogus"):
        run_shard_task(tasks[1], setup)

    dist_dir = tmp_path / "dist" / "postmortems"
    coordinator = Coordinator(list(tasks), workers=1,
                              live=LiveOptions(postmortem_dir=dist_dir),
                              system="realtime", backend="event",
                              max_attempts=1)
    with pytest.raises(DistError):
        coordinator.run()

    pool_path = pool_dir / "shard-001-crash.json"
    dist_path = dist_dir / "shard-001-crash.json"
    assert pool_path.is_file() and dist_path.is_file()
    assert main(["obs", "postmortem", "show", str(pool_path)]) == 0
    pool_text = capsys.readouterr().out
    assert main(["obs", "postmortem", "show", str(dist_path)]) == 0
    dist_text = capsys.readouterr().out
    assert pool_text == dist_text
    assert "shard 1/2 [crash]" in pool_text


# ---------------------------------------------------------------------
# Coordinator unit behaviour (leases, steals, stale traffic)
# ---------------------------------------------------------------------


class _ListTransport(Transport):
    """In-memory transport for single-threaded coordinator unit tests."""

    def __init__(self):
        self.offers = []
        self.control = deque()

    def offer(self, envelope, task):
        self.offers.append((envelope, task))

    def offer_stop(self):
        self.offers.append((STOP, None))

    def collect(self, timeout_s):
        return self.control.popleft() if self.control else None

    def worker_endpoint(self):
        raise NotImplementedError("unit transport has no worker side")


def _unit_coordinator(tiny_config, tiny_world, tmp_path, **kwargs):
    tasks = _tasks(tiny_config, tiny_world, system="realtime", shards=2)
    transport = _ListTransport()
    coordinator = Coordinator(tasks, workers=1, transport=transport,
                              live=_dist_live(tmp_path), **kwargs)
    for task in tasks:
        state = _ShardState(task=task, job_id=f"shard-{task.shard_index:03d}")
        coordinator._shards[task.shard_index] = state
        coordinator._offer(state)
    return coordinator, transport


def test_expired_lease_is_requeued_with_next_attempt(
        tiny_config, tiny_world, tmp_path):
    coordinator, transport = _unit_coordinator(tiny_config, tiny_world,
                                               tmp_path, lease_s=120.0)
    state = coordinator._shards[0]
    coordinator._handle((JobAck(worker_id="w0", job_id="shard-000",
                                shard_index=0, attempt=0), None))
    assert state.worker_id == "w0"
    state.deadline = float("-inf")          # lease expires
    coordinator._check_leases()
    assert state.attempt == 1
    assert coordinator.stats.requeues == 1
    assert coordinator.stats.stall_steals == 1     # it had an owner
    envelopes = [e for e, _ in transport.offers
                 if isinstance(e, JobEnvelope) and e.shard_index == 0]
    assert [e.attempt for e in envelopes] == [0, 1]


def test_stall_event_steals_the_lease_early(tiny_config, tiny_world,
                                            tmp_path):
    from repro.obs.live import StragglerEvent

    coordinator, _ = _unit_coordinator(tiny_config, tiny_world, tmp_path)
    coordinator._hooks.on_straggler(
        StragglerEvent(shard_index=1, kind="stall", silence_s=99.0))
    coordinator._hooks.on_straggler(
        StragglerEvent(shard_index=1, kind="lag"))    # lag never steals
    coordinator._steal_stalled()
    assert coordinator._shards[1].attempt == 1
    assert coordinator._shards[0].attempt == 0
    assert coordinator.stats.stall_steals == 1


def test_stale_acks_nacks_and_duplicate_results_are_ignored(
        tiny_config, tiny_world, tmp_path):
    coordinator, _ = _unit_coordinator(tiny_config, tiny_world, tmp_path)
    state = coordinator._shards[0]
    state.attempt = 1                       # shard was already re-dispatched
    coordinator._handle((JobAck(worker_id="w9", job_id="shard-000",
                                shard_index=0, attempt=0), None))
    assert state.worker_id == ""            # stale claim ignored
    coordinator._handle((JobNack(worker_id="w9", job_id="shard-000",
                                 shard_index=0, attempt=0,
                                 reason="stale"), None))
    assert state.attempt == 1               # stale nack does not requeue
    result = run_shard_task(state.task)
    coordinator._handle_result(
        ResultEnvelope(worker_id="w1", job_id="shard-000", shard_index=0,
                       attempt=1), result)
    assert state.done
    coordinator._handle_result(
        ResultEnvelope(worker_id="w9", job_id="shard-000", shard_index=0,
                       attempt=0), result)
    assert coordinator.stats.duplicates_discarded == 1
    assert coordinator._results[0] is result


def test_malformed_result_payload_requeues_the_shard(
        tiny_config, tiny_world, tmp_path):
    coordinator, _ = _unit_coordinator(tiny_config, tiny_world, tmp_path)
    coordinator._handle_result(
        ResultEnvelope(worker_id="w0", job_id="shard-000", shard_index=0,
                       attempt=0), {"not": "a shard result"})
    assert coordinator._shards[0].attempt == 1
    assert not coordinator._shards[0].done


def test_protocol_version_mismatch_is_rejected(tiny_config, tiny_world,
                                               tmp_path):
    coordinator, _ = _unit_coordinator(tiny_config, tiny_world, tmp_path)
    with pytest.raises(DistError, match="protocol"):
        coordinator._handle((WorkerHello(worker_id="w0", protocol=99),
                             None))


def test_retry_budget_exhaustion_raises_dist_error(tiny_config, tiny_world,
                                                   tmp_path):
    coordinator, _ = _unit_coordinator(tiny_config, tiny_world, tmp_path,
                                       max_attempts=1)
    with pytest.raises(DistError, match="shard 0 failed after 1"):
        coordinator._requeue(coordinator._shards[0], "boom")


# ---------------------------------------------------------------------
# Aggregator re-arm on re-dispatch
# ---------------------------------------------------------------------


def test_reset_shard_rearms_watchdog_flags():
    clock = [0.0]
    aggregator = LiveAggregator(2, LiveOptions(stall_after_s=5.0),
                                clock=lambda: clock[0])
    aggregator.ingest(ShardBeat(shard_index=0, n_shards=2, seq=0,
                                watermark_s=1.0, failed=True))
    clock[0] = 10.0
    stalled = {e.shard_index for e in aggregator.check()
               if e.kind == "stall"}
    assert 0 in stalled                     # silent shards both flagged
    view = aggregator.view(0)
    assert view.failed
    aggregator.reset_shard(0)
    view = aggregator.view(0)
    assert not view.failed and not view.stalled and not view.done
    # The silence clock restarted: no immediate re-flag.
    assert all(e.shard_index != 0 for e in aggregator.check()
               if e.kind == "stall")
    aggregator.reset_shard(99)              # unknown index: no-op


# ---------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------


def test_cli_headline_runs_dist_executor(tmp_path, capsys):
    code = main(["headline", "--users", "40", "--days", "4",
                 "--train-days", "2", "--shards", "2",
                 "--executor", "dist", "--workers", "2"])
    out = capsys.readouterr().out
    assert code == 0
    assert "[dist: " in out
    assert "energy savings" in out
