"""Unit tests for second-price auctions."""

import numpy as np
import pytest

from repro.exchange.auction import AuctionConfig, run_auction, run_bulk_auctions
from repro.exchange.campaign import Campaign
from repro.sim.rng import RngRegistry


def _campaigns(bids):
    return [Campaign(f"c{i}", "a", bid=b, budget=1e9)
            for i, b in enumerate(bids)]


@pytest.fixture
def auction_rng():
    return RngRegistry(77).fresh("auction")


def _no_jitter(reserve=0.1, max_bidders=24):
    return AuctionConfig(reserve_price=reserve, bid_jitter_sigma=1e-9,
                         max_bidders=max_bidders)


def test_highest_bidder_wins_pays_second_price(auction_rng):
    outcome = run_auction(_campaigns([1.0, 3.0, 2.0]), _no_jitter(),
                          auction_rng)
    assert outcome.sold
    assert outcome.winner.bid == 3.0
    assert outcome.price == pytest.approx(2.0, rel=1e-6)


def test_single_bidder_pays_reserve(auction_rng):
    outcome = run_auction(_campaigns([5.0]), _no_jitter(reserve=0.5),
                          auction_rng)
    assert outcome.sold
    assert outcome.price == pytest.approx(0.5)


def test_no_bidders_above_reserve_unsold(auction_rng):
    outcome = run_auction(_campaigns([0.2, 0.3]), _no_jitter(reserve=1.0),
                          auction_rng)
    assert not outcome.sold
    assert outcome.price == 0.0


def test_empty_eligible_set(auction_rng):
    outcome = run_auction([], _no_jitter(), auction_rng)
    assert not outcome.sold


def test_price_never_below_reserve_or_above_winner(auction_rng):
    config = AuctionConfig(reserve_price=0.4, bid_jitter_sigma=0.3)
    campaigns = _campaigns(list(np.linspace(0.5, 4.0, 12)))
    for _ in range(100):
        outcome = run_auction(campaigns, config, auction_rng)
        if outcome.sold:
            assert outcome.price >= config.reserve_price - 1e-9


def test_max_bidders_caps_participation(auction_rng):
    config = _no_jitter(max_bidders=3)
    outcome = run_auction(_campaigns([1.0] * 20), config, auction_rng)
    assert outcome.n_bidders == 3


def test_bulk_auctions_match_count(auction_rng):
    outcomes = run_bulk_auctions(_campaigns([2.0, 3.0, 1.0]), 50,
                                 _no_jitter(), auction_rng)
    assert len(outcomes) == 50
    assert all(o.sold for o in outcomes)
    # With negligible jitter every auction clears at the second price.
    assert all(o.price == pytest.approx(2.0, rel=1e-6) for o in outcomes)
    assert all(o.winner.bid == 3.0 for o in outcomes)


def test_bulk_zero_or_empty(auction_rng):
    assert run_bulk_auctions(_campaigns([1.0]), 0, _no_jitter(),
                             auction_rng) == []
    outcomes = run_bulk_auctions([], 5, _no_jitter(), auction_rng)
    assert len(outcomes) == 5
    assert not any(o.sold for o in outcomes)


def test_bulk_with_reserve_filtering(auction_rng):
    outcomes = run_bulk_auctions(_campaigns([0.05]), 10,
                                 _no_jitter(reserve=1.0), auction_rng)
    assert not any(o.sold for o in outcomes)


def test_config_validation():
    with pytest.raises(ValueError):
        AuctionConfig(reserve_price=-1.0)
    with pytest.raises(ValueError):
        AuctionConfig(max_bidders=0)


def test_jitter_produces_price_dispersion(auction_rng):
    config = AuctionConfig(bid_jitter_sigma=0.3)
    campaigns = _campaigns([2.0] * 10)
    prices = [run_auction(campaigns, config, auction_rng).price
              for _ in range(50)]
    assert np.std(prices) > 0.05
