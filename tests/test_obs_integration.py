"""End-to-end observability invariants on the sharded Runner.

The load-bearing contract: instrumentation is *passive*. A traced run's
simulation output is bit-for-bit identical to an untraced one, and the
merged metrics/trace are themselves parallelism-invariant.
"""

from __future__ import annotations

import pytest

from repro.obs.runtime import ObsOptions
from repro.obs.summarize import find_run_dirs, load_run, summarize
from repro.obs.trace import validate_jsonl
from repro.runner import Runner


@pytest.fixture(scope="module")
def runs(tiny_config, tiny_world):
    """Three headline runs: untraced, traced serial, traced 4-way."""
    def run(parallelism, trace):
        return Runner(tiny_config, shards=4, world=tiny_world,
                      parallelism=parallelism,
                      obs=ObsOptions(trace=trace)).run("headline")
    return {
        "plain": run(1, False),
        "traced_1": run(1, True),
        "traced_4": run(4, True),
    }


def test_tracing_never_changes_results(runs):
    plain, traced = runs["plain"], runs["traced_1"]
    assert traced.prefetch == plain.prefetch
    assert traced.realtime == plain.realtime
    assert traced.comparison == plain.comparison


def test_traced_run_parallelism_invariant(runs):
    serial, parallel = runs["traced_1"], runs["traced_4"]
    assert parallel.comparison == serial.comparison
    assert parallel.metrics == serial.metrics
    assert parallel.trace_events == serial.trace_events
    assert len(serial.trace_events) > 0


def test_metrics_collected_even_untraced(runs):
    plain = runs["plain"]
    assert plain.trace_events == ()
    assert plain.metrics.counters["server.rescues"] >= 0
    assert plain.metrics.counters["client.syncs"] > 0
    # Every shard contributed a wall-clock sample.
    for index in range(plain.n_shards):
        assert f"shard.{index}.execute" in plain.profile.phases


def test_manifest_pins_the_run(runs):
    manifest = runs["traced_1"].manifest
    assert manifest is not None
    assert manifest.system == "headline"
    assert manifest.n_shards == 4
    assert manifest.trace_enabled
    assert manifest.counter_totals == runs["traced_1"].metrics.counters
    assert manifest.rng_stream_manifest_hash is not None


def test_trace_events_are_shard_ordered_sim_time(runs):
    events = runs["traced_1"].trace_events
    shards = [e.shard for e in events]
    assert shards == sorted(shards)          # merged in shard-index order
    assert all(e.ts >= 0 for e in events)
    assert {e.component for e in events} >= {"client", "server", "exchange"}


def test_artifact_directory_roundtrip(tmp_path, tiny_config,
                                      tiny_world):
    result = Runner(tiny_config, shards=2, world=tiny_world,
                    obs=ObsOptions(out_dir=tmp_path,
                                   trace=True)).run("headline")
    run_dir = result.artifacts_dir
    assert run_dir is not None and run_dir.parent == tmp_path
    names = {p.name for p in run_dir.iterdir()}
    assert {"manifest.json", "metrics.json", "profile.json",
            "trace.jsonl", "trace.chrome.json"} <= names
    assert validate_jsonl(run_dir / "trace.jsonl") == []

    assert find_run_dirs(tmp_path) == [run_dir]
    record = load_run(run_dir)
    assert record.manifest.system == "headline"
    assert record.metrics == result.metrics
    text = summarize(tmp_path)
    for needle in ("exchange.auctions.held", "server.plan.assignments",
                   "server.rescues", "client.beacons", "radio.wakeups",
                   "wall-clock profile", "shard.0.execute"):
        assert needle in text
