"""Shared fixtures: tiny deterministic worlds and common objects."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.harness import World
from repro.radio.profiles import THREE_G
from repro.runner import WorldSource
from repro.sim.rng import RngRegistry
from repro.workloads.appstore import TOP15
from repro.workloads.population import PopulationConfig, build_population

#: One world provider for the whole test session (session-scoped world
#: fixtures share it, so each tiny world is built exactly once).
_SOURCE = WorldSource()


@pytest.fixture(autouse=True)
def _reset_exec_options():
    """CLI entry points install process-default ExecOptions (``--executor``
    / ``--workers`` / ...); clear them after every test so a CLI test
    can't silently turn later Runners distributed."""
    from repro.runner import set_default_exec_options
    yield
    set_default_exec_options(None)


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return RngRegistry(1234).stream("tests")


@pytest.fixture(scope="session")
def tiny_config() -> ExperimentConfig:
    """40 users x 6 days — seconds to simulate, rich enough to exercise
    every code path."""
    return ExperimentConfig(n_users=40, n_days=6, train_days=3, seed=99)


@pytest.fixture(scope="session")
def world_source() -> WorldSource:
    return _SOURCE


@pytest.fixture(scope="session")
def tiny_world(tiny_config) -> World:
    return _SOURCE.world_for(tiny_config)


@pytest.fixture(scope="session")
def small_population():
    registry = RngRegistry(7)
    return build_population(PopulationConfig(n_users=25),
                            registry.stream("pop"), TOP15)


@pytest.fixture
def profile_3g():
    return THREE_G
