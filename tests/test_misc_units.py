"""Assorted small-surface unit tests (registries, events, rendering)."""

import pytest

from repro.prediction.base import SlotPredictor, register_predictor
from repro.sim.events import (
    PRIORITY_HIGH,
    PRIORITY_NORMAL,
    make_event,
)


def test_duplicate_predictor_registration_rejected():
    with pytest.raises(ValueError, match="duplicate"):
        @register_predictor("time_of_day")
        class Clash(SlotPredictor):   # pragma: no cover - never registered
            def observe(self, epoch_index, actual):
                pass

            def predict(self, epoch_index):
                return 0.0


def test_event_ordering_fields():
    early = make_event(1.0, lambda: None)
    late = make_event(2.0, lambda: None)
    assert early < late
    urgent = make_event(1.0, lambda: None, priority=PRIORITY_HIGH)
    normal = make_event(1.0, lambda: None, priority=PRIORITY_NORMAL)
    assert urgent < normal
    # Equal time+priority: sequence numbers break the tie (FIFO).
    first = make_event(3.0, lambda: None)
    second = make_event(3.0, lambda: None)
    assert first < second


def test_cancelled_event_fire_is_noop():
    hits = []
    event = make_event(0.0, hits.append, (1,))
    event.cancel()
    event.fire()
    assert hits == []
    live = make_event(0.0, hits.append, (2,))
    live.fire()
    assert hits == [2]


def test_e1_render_lists_every_app():
    from repro.experiments.e1_app_energy import run_e1
    from repro.workloads.appstore import TOP15

    rendered = run_e1().render()
    for app in TOP15:
        assert app.app_id in rendered


def test_registered_predictor_names_round_trip():
    from repro.prediction.base import make_predictor, predictor_names

    for name in predictor_names():
        if name == "day_of_week":
            continue   # registered by an example module in some runs
        predictor = make_predictor(name, 3600.0)
        assert predictor.registry_name == name
        assert predictor.predict(0) >= 0.0
