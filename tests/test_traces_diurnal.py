"""Unit tests for diurnal activity profiles."""

import numpy as np
import pytest

from repro.traces.diurnal import (
    DAYPARTS,
    HOURS_PER_DAY,
    DiurnalProfile,
    autocorrelation_lag_one_day,
    population_hourly_profile,
    random_profile,
)


def _uniformish():
    return DiurnalProfile(weights=(0.0,) * len(DAYPARTS), floor=1.0)


def test_hourly_pmf_sums_to_one(rng):
    profile = random_profile(rng)
    pmf = profile.hourly_pmf()
    assert pmf.shape == (HOURS_PER_DAY,)
    assert pmf.sum() == pytest.approx(1.0)
    assert (pmf > 0).all()


def test_flat_profile_is_uniform():
    pmf = _uniformish().hourly_pmf()
    assert np.allclose(pmf, 1.0 / HOURS_PER_DAY)


def test_evening_weighted_profile_peaks_in_evening():
    profile = DiurnalProfile(weights=(0.0, 0.0, 0.0, 1.0), floor=0.01)
    pmf = profile.hourly_pmf()
    assert 19 <= int(np.argmax(pmf)) <= 23


def test_phase_shifts_peak():
    base = DiurnalProfile(weights=(0.0, 0.0, 0.0, 1.0), floor=0.01)
    shifted = DiurnalProfile(weights=(0.0, 0.0, 0.0, 1.0), floor=0.01,
                             phase=3.0)
    delta = (int(np.argmax(shifted.hourly_pmf()))
             - int(np.argmax(base.hourly_pmf()))) % HOURS_PER_DAY
    assert delta == 3


def test_intensity_positive_everywhere(rng):
    profile = random_profile(rng)
    hours = np.linspace(0, 24, 97)
    assert all(profile.intensity(float(h)) > 0 for h in hours)


def test_sample_hour_in_range(rng):
    profile = random_profile(rng)
    samples = [profile.sample_hour(rng) for _ in range(200)]
    assert all(0.0 <= h < 24.0 for h in samples)


def test_sample_hour_follows_pmf(rng):
    profile = DiurnalProfile(weights=(0.0, 0.0, 0.0, 1.0), floor=0.02)
    samples = np.array([profile.sample_hour(rng) for _ in range(3000)])
    evening = ((samples >= 18) & (samples < 24)).mean()
    night = ((samples >= 2) & (samples < 6)).mean()
    assert evening > 5 * night


def test_profile_validation():
    with pytest.raises(ValueError):
        DiurnalProfile(weights=(1.0,))                    # wrong arity
    with pytest.raises(ValueError):
        DiurnalProfile(weights=(-1.0, 0, 0, 0))
    with pytest.raises(ValueError):
        DiurnalProfile(weights=(0.0, 0, 0, 0), floor=0.0)  # zero intensity


def test_population_profile_averages(rng):
    profiles = [random_profile(rng) for _ in range(30)]
    pop = population_hourly_profile(profiles)
    assert pop.sum() == pytest.approx(1.0)
    with pytest.raises(ValueError):
        population_hourly_profile([])


def test_autocorrelation_of_perfectly_repeating_series():
    day = np.arange(HOURS_PER_DAY, dtype=float)
    series = np.tile(day, 4)
    assert autocorrelation_lag_one_day(series) == pytest.approx(1.0)


def test_autocorrelation_requires_two_days():
    with pytest.raises(ValueError):
        autocorrelation_lag_one_day(np.zeros(30))


def test_autocorrelation_constant_series_is_nan():
    assert np.isnan(autocorrelation_lag_one_day(np.ones(48)))
