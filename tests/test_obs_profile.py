"""repro.obs.profile: wall-clock phase stats and their merge contract."""

from __future__ import annotations

import pytest

from repro.obs.profile import PhaseProfiler, PhaseStats, RunProfile


class TestPhaseStats:
    def test_from_duration(self):
        s = PhaseStats.from_duration(2.5)
        assert s == PhaseStats(calls=1, total_s=2.5, min_s=2.5, max_s=2.5)

    def test_merge_accumulates(self):
        merged = (PhaseStats.from_duration(1.0)
                  .merge(PhaseStats.from_duration(3.0)))
        assert merged.calls == 2
        assert merged.total_s == 4.0
        assert merged.min_s == 1.0
        assert merged.max_s == 3.0
        assert merged.mean_s == 2.0

    def test_empty_is_identity(self):
        s = PhaseStats.from_duration(1.5)
        assert PhaseStats().merge(s) == s
        assert s.merge(PhaseStats()) == s

    def test_merge_is_associative(self):
        a, b, c = (PhaseStats.from_duration(d) for d in (1.0, 2.0, 4.0))
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    def test_mean_of_empty_is_zero(self):
        assert PhaseStats().mean_s == 0.0

    def test_jsonable_roundtrip(self):
        s = PhaseStats.from_duration(0.25).merge(PhaseStats.from_duration(1.0))
        assert PhaseStats.from_jsonable(s.to_jsonable()) == s


class TestRunProfile:
    def test_keywise_merge(self):
        a = RunProfile(phases={"merge": PhaseStats.from_duration(1.0)})
        b = RunProfile(phases={"merge": PhaseStats.from_duration(2.0),
                               "world.build": PhaseStats.from_duration(5.0)})
        merged = a.merge(b)
        assert merged.phases["merge"].calls == 2
        assert merged.phases["world.build"].calls == 1
        assert merged.total_s == 8.0

    def test_jsonable_roundtrip(self):
        profile = RunProfile(phases={"x": PhaseStats.from_duration(1.0)})
        assert RunProfile.from_jsonable(profile.to_jsonable()) == profile


class TestPhaseProfiler:
    def test_phase_context_measures_time(self):
        profiler = PhaseProfiler()
        with profiler.phase("work"):
            sum(range(1000))
        stats = profiler.snapshot().phases["work"]
        assert stats.calls == 1
        assert stats.total_s >= 0.0

    def test_add_folds_external_durations(self):
        profiler = PhaseProfiler()
        profiler.add("shard.0.execute", 1.5)
        profiler.add("shard.0.execute", 0.5)
        stats = profiler.snapshot().phases["shard.0.execute"]
        assert stats.calls == 2
        assert stats.total_s == pytest.approx(2.0)

    def test_phase_records_even_on_exception(self):
        profiler = PhaseProfiler()
        with pytest.raises(RuntimeError):
            with profiler.phase("boom"):
                raise RuntimeError("boom")
        assert profiler.snapshot().phases["boom"].calls == 1

    def test_snapshot_sorted_by_name(self):
        profiler = PhaseProfiler()
        profiler.add("b.phase", 1.0)
        profiler.add("a.phase", 1.0)
        assert list(profiler.snapshot().phases) == ["a.phase", "b.phase"]
