"""Unit tests for :mod:`repro.faults`: plans, injectors, determinism."""

import json

import pytest

from repro.faults.injector import FaultInjector, make_injector
from repro.faults.plan import FaultPlan

DAY = 86400.0


# ----------------------------------------------------------------------
# FaultPlan: validation, JSON round-trip, hashing
# ----------------------------------------------------------------------


def test_default_plan_is_empty_and_resilience_knobs_do_not_count():
    assert FaultPlan().is_empty
    assert FaultPlan(max_retries=9, backoff_base_s=1.0).is_empty
    assert not FaultPlan(loss_prob=0.1).is_empty
    assert not FaultPlan(server_outages=((0.0, 10.0),)).is_empty
    assert not FaultPlan(churn_prob=0.01).is_empty


@pytest.mark.parametrize("bad", [
    {"loss_prob": -0.1}, {"loss_prob": 1.0},
    {"outage_rate_per_day": -1.0}, {"outage_duration_s": 0.0},
    {"churn_prob": 1.5}, {"latency_mean_s": -1.0},
    {"max_retries": -1}, {"backoff_base_s": 0.0},
    {"backoff_jitter": -0.5}, {"failed_attempt_bytes": -1},
    {"server_outages": ((10.0, 10.0),)},
    {"server_outages": ((10.0, 5.0),)},
    {"server_outages": ((0.0, 20.0), (10.0, 30.0))},   # overlapping
    {"server_outages": ((50.0, 60.0), (0.0, 10.0))},   # unsorted
])
def test_plan_validation_rejects(bad):
    with pytest.raises(ValueError):
        FaultPlan(**bad)


def test_plan_json_round_trip_preserves_equality_and_digest():
    plan = FaultPlan(loss_prob=0.2, outage_rate_per_day=3.0,
                     server_outages=((100.0, 200.0), (300.0, 400.0)),
                     latency_mean_s=12.0, churn_prob=0.05, max_retries=2)
    payload = json.loads(json.dumps(plan.to_jsonable()))
    restored = FaultPlan.from_jsonable(payload)
    assert restored == plan
    assert restored.digest() == plan.digest()


def test_plan_from_jsonable_rejects_unknown_keys():
    with pytest.raises(ValueError, match="unknown FaultPlan field"):
        FaultPlan.from_jsonable({"loss_prob": 0.1, "typo_field": 1})


def test_plan_from_json_file(tmp_path):
    path = tmp_path / "plan.json"
    path.write_text(json.dumps({"loss_prob": 0.25,
                                "server_outages": [[10.0, 20.0]]}))
    plan = FaultPlan.from_json_file(path)
    assert plan.loss_prob == 0.25
    assert plan.server_outages == ((10.0, 20.0),)
    path.write_text("[1, 2]")
    with pytest.raises(ValueError, match="JSON object"):
        FaultPlan.from_json_file(path)


def test_digest_distinguishes_plans():
    assert FaultPlan().digest() != FaultPlan(loss_prob=0.1).digest()
    assert (FaultPlan(loss_prob=0.1).digest()
            == FaultPlan(loss_prob=0.1).digest())


def test_variant_replaces_fields():
    plan = FaultPlan(loss_prob=0.1)
    assert plan.variant(loss_prob=0.2).loss_prob == 0.2
    assert plan.loss_prob == 0.1


# ----------------------------------------------------------------------
# Injector construction
# ----------------------------------------------------------------------


def test_make_injector_returns_none_for_empty_plans():
    assert make_injector(None, seed=1, horizon=DAY) is None
    assert make_injector(FaultPlan(), seed=1, horizon=DAY) is None
    assert make_injector(FaultPlan(loss_prob=0.5), 1, DAY) is not None


def test_injector_rejects_empty_plan_directly():
    with pytest.raises(ValueError, match="non-empty plan"):
        FaultInjector(FaultPlan(), seed=1, horizon=DAY)


# ----------------------------------------------------------------------
# Determinism: the tentpole property
# ----------------------------------------------------------------------

FULL_PLAN = FaultPlan(loss_prob=0.3, outage_rate_per_day=4.0,
                      outage_duration_s=600.0,
                      server_outages=((3 * 3600.0, 4 * 3600.0),),
                      latency_mean_s=10.0, churn_prob=0.3)


def _user_history(injector, uid, times):
    faults = injector.for_user(uid)
    return ([faults.attempt(t) for t in times],
            faults.dark_from,
            [faults.sync_delay() for _ in range(3)],
            [faults.backoff_wait(k) for k in (1, 2, 3)])


def test_user_faults_depend_only_on_plan_seed_and_uid():
    """A user's fault history must not depend on which other users exist
    or in what order they were built — the property that makes fault
    runs invariant to shard layout."""
    times = [100.0 * k for k in range(200)]
    a = FaultInjector(FULL_PLAN, seed=7, horizon=2 * DAY)
    b = FaultInjector(FULL_PLAN, seed=7, horizon=2 * DAY)
    # Different construction order, different co-resident users.
    for uid in ("u001", "u002", "u003"):
        a.for_user(uid)
    b.for_user("u999")
    assert (_user_history(a, "u042", times)
            == _user_history(b, "u042", times))


def test_different_seeds_give_different_histories():
    times = [100.0 * k for k in range(200)]
    a = FaultInjector(FULL_PLAN, seed=7, horizon=2 * DAY)
    b = FaultInjector(FULL_PLAN, seed=8, horizon=2 * DAY)
    assert (_user_history(a, "u042", times)
            != _user_history(b, "u042", times))


def test_loss_draws_fire_at_roughly_the_configured_rate():
    plan = FaultPlan(loss_prob=0.25)
    injector = FaultInjector(plan, seed=3, horizon=DAY)
    faults = injector.for_user("u1")
    n = 4000
    failures = sum(not faults.attempt(float(k)) for k in range(n))
    assert failures / n == pytest.approx(0.25, abs=0.03)
    assert faults.plan is plan


def test_outage_windows_block_attempts_deterministically():
    plan = FaultPlan(outage_rate_per_day=6.0, outage_duration_s=1800.0)
    injector = FaultInjector(plan, seed=11, horizon=2 * DAY)
    faults = injector.for_user("u1")
    starts, ends = faults._outage_starts, faults._outage_ends
    assert starts, "6/day over 2 days must produce windows"
    assert all(s < e for s, e in zip(starts, ends))
    assert starts == sorted(starts)
    mid = (starts[0] + ends[0]) / 2.0
    assert faults.in_outage(mid) and not faults.attempt(mid)
    assert not faults.in_outage(starts[0] - 1.0)
    assert not faults.in_outage(ends[0] + 1e-9) or faults.in_outage(mid)


def test_churn_darkens_some_users_permanently():
    plan = FaultPlan(churn_prob=0.5)
    injector = FaultInjector(plan, seed=5, horizon=DAY)
    dark_from = [injector.for_user(f"u{i:03d}").dark_from
                 for i in range(60)]
    churned = [d for d in dark_from if d != float("inf")]
    assert 10 < len(churned) < 50          # ~50% at this seed scale
    assert all(0.0 <= d <= DAY for d in churned)
    faults = injector.for_user("u000")
    if faults.dark_from != float("inf"):
        assert not faults.dark(faults.dark_from - 1.0)
        assert faults.dark(faults.dark_from)
        assert not faults.attempt(faults.dark_from + 1.0)


def test_server_down_follows_scheduled_windows_exactly():
    plan = FaultPlan(server_outages=((100.0, 200.0), (500.0, 600.0)))
    injector = FaultInjector(plan, seed=1, horizon=DAY)
    assert not injector.server_down(99.9)
    assert injector.server_down(100.0)
    assert injector.server_down(199.9)
    assert not injector.server_down(200.0)
    assert injector.server_down(550.0)
    assert not injector.server_down(700.0)
    faults = injector.for_user("u1")
    assert not faults.attempt(150.0)       # blocked by the blackout
    assert faults.attempt(250.0)


def test_backoff_grows_exponentially_and_caps():
    plan = FaultPlan(loss_prob=0.5, backoff_base_s=2.0,
                     backoff_cap_s=30.0, backoff_jitter=0.5)
    injector = FaultInjector(plan, seed=9, horizon=DAY)
    faults = injector.for_user("u1")
    w1 = faults.backoff_wait(1)
    w2 = faults.backoff_wait(2)
    assert 2.0 <= w1 <= 3.0                # base * [1, 1.5)
    assert 4.0 <= w2 <= 6.0
    assert faults.backoff_wait(10) == 30.0  # capped


def test_zero_jitter_backoff_is_exact():
    plan = FaultPlan(loss_prob=0.5, backoff_base_s=4.0,
                     backoff_cap_s=1e9, backoff_jitter=0.0)
    faults = FaultInjector(plan, seed=2, horizon=DAY).for_user("u1")
    assert faults.backoff_wait(1) == 4.0
    assert faults.backoff_wait(3) == 16.0
