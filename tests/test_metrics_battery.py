"""Unit tests for the battery-impact translation."""

import pytest

from repro.metrics.battery import (
    DEFAULT_BATTERY_WH,
    battery_impact,
    savings_in_battery_terms,
)
from repro.metrics.energy import EnergyReport


def _report(ad_joules: float, users: int = 10, days: float = 2.0):
    return EnergyReport(ad_joules=ad_joules, app_joules=0.0, wakeups=0,
                        ad_bytes=0, app_bytes=0, n_users=users, days=days)


def test_percent_of_battery_by_hand():
    # 1998 J/user/day on a 5.55 Wh (19980 J) battery = 10%.
    report = _report(ad_joules=1998.0 * 20, users=10, days=2.0)
    impact = battery_impact(report)
    assert impact.joules_per_user_day == pytest.approx(1998.0)
    assert impact.battery_joules == pytest.approx(
        DEFAULT_BATTERY_WH * 3600.0)
    assert impact.percent_of_battery_per_day == pytest.approx(0.1, rel=1e-3)


def test_standby_hours_lost():
    impact = battery_impact(_report(ad_joules=900.0 * 20))
    # 900 J at 25 mW = 36000 s = 10 h of standby.
    assert impact.standby_hours_lost(0.025) == pytest.approx(10.0)
    with pytest.raises(ValueError):
        impact.standby_hours_lost(0.0)


def test_validation():
    with pytest.raises(ValueError):
        battery_impact(_report(1.0), battery_wh=0.0)


def test_savings_in_battery_terms():
    prefetch = _report(ad_joules=500.0 * 20)
    realtime = _report(ad_joules=1000.0 * 20)
    after, before, saved = savings_in_battery_terms(prefetch, realtime)
    assert saved == pytest.approx(
        before.percent_of_battery_per_day - after.percent_of_battery_per_day)
    assert saved > 0
