"""Property-based tests of the overbooking planner and settlement.

Hypothesis generates arbitrary forecasts, curves, and sale batches; the
planner's structural invariants must hold for all of them.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.overbooking import (
    ClientForecast,
    GreedyBackfillPolicy,
    NoReplicationPolicy,
    RandomKPolicy,
    StaggeredPolicy,
)
from repro.core.sla import DisplayLog, settle_sla
from repro.exchange.marketplace import Sale
from repro.sim.rng import RngRegistry


class ParamCurve:
    """Geometric show curve: p(j) = base * decay^(j-1)."""

    def __init__(self, base: float, decay: float) -> None:
        self.base = base
        self.decay = decay

    def sla(self, predicted: float, j: int) -> float:
        if j <= 0:
            return 1.0
        scale = min(1.0, 0.1 + predicted / 10.0)
        return max(0.0, min(1.0, self.base * scale * self.decay ** (j - 1)))

    def epoch(self, predicted: float, j: int) -> float:
        return 0.5 * self.sla(predicted, j)

    def at_least(self, predicted: float, j: int) -> float:
        return self.sla(predicted, j)


forecast_lists = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=40.0),   # predicted
        st.integers(min_value=0, max_value=12),     # capacity
        st.integers(min_value=0, max_value=5),      # backlog
    ),
    min_size=1, max_size=12,
).map(lambda spec: [
    ClientForecast(f"u{i}", predicted, backlog=backlog, capacity=capacity)
    for i, (predicted, capacity, backlog) in enumerate(spec)
])

sale_batches = st.lists(
    st.floats(min_value=0.1, max_value=50.0),
    min_size=0, max_size=25,
).map(lambda prices: [
    Sale(sale_id=i, campaign_id="c", price=p, creative_bytes=4000,
         sold_at=0.0, deadline=3600.0)
    for i, p in enumerate(prices)
])

curves = st.builds(ParamCurve,
                   base=st.floats(min_value=0.05, max_value=0.99),
                   decay=st.floats(min_value=0.5, max_value=1.0))

policies = st.sampled_from([
    StaggeredPolicy(epsilon=0.05, max_replicas=4),
    GreedyBackfillPolicy(epsilon=0.05, max_replicas=4),
    NoReplicationPolicy(),
    RandomKPolicy(k=2, epsilon=0.05, max_replicas=4),
])


def _plan(policy, sales, forecasts, curve):
    rng = RngRegistry(11).fresh("prop")
    return policy.plan(sales, forecasts, curve, rng=rng,
                       standby_until=1800.0)


@given(policy=policies, sales=sale_batches, forecasts=forecast_lists,
       curve=curves)
@settings(max_examples=200, deadline=None)
def test_plan_structural_invariants(policy, sales, forecasts, curve):
    plan = _plan(policy, sales, forecasts, curve)
    capacity = {f.client_id: f.capacity for f in forecasts}
    # 1. Capacity respected per client.
    for client_id, queue in plan.queues.items():
        assert len(queue) <= capacity[client_id]
    # 2. Every sale either placed or reported unplaced, never both.
    placed_ids = set(plan.replicas)
    unplaced_ids = {s.sale_id for s in plan.unplaced}
    assert placed_ids.isdisjoint(unplaced_ids)
    assert placed_ids | unplaced_ids == {s.sale_id for s in sales}
    # 3. No client hosts the same sale twice.
    for sale_id, owners in plan.replicas.items():
        assert len(owners) == len(set(owners))
        assert 1 <= len(owners) <= policy.max_replicas
    # 4. Queues contain exactly the replica assignments.
    queued = sorted(a.sale_id for q in plan.queues.values() for a in q)
    replicated = sorted(sid for sid, owners in plan.replicas.items()
                        for _ in owners)
    assert queued == replicated
    # 5. Expected violations are probabilities.
    for value in plan.expected_violation.values():
        assert 0.0 <= value <= 1.0 + 1e-9


@given(sales=sale_batches, forecasts=forecast_lists, curve=curves)
@settings(max_examples=100, deadline=None)
def test_more_replicas_never_raise_expected_violation(sales, forecasts,
                                                      curve):
    lone = _plan(NoReplicationPolicy(), sales, forecasts, curve)
    many = _plan(StaggeredPolicy(epsilon=1e-6, max_replicas=4), sales,
                 forecasts, curve)
    for sale_id, violation in many.expected_violation.items():
        if sale_id in lone.expected_violation:
            assert violation <= lone.expected_violation[sale_id] + 1e-9


display_plans = st.lists(
    st.tuples(st.integers(min_value=0, max_value=10),     # sale_id
              st.floats(min_value=0.0, max_value=200.0)),  # time
    max_size=40,
)


@given(displays=display_plans,
       deadlines=st.lists(st.floats(min_value=1.0, max_value=150.0),
                          min_size=11, max_size=11))
@settings(max_examples=200, deadline=None)
def test_settlement_partition_property(displays, deadlines):
    """settle_sla partitions sales exactly into on-time and violated,
    and duplicates equal displays minus first-displays."""
    sales = [Sale(sale_id=i, campaign_id="c", price=1.0, creative_bytes=1,
                  sold_at=0.0, deadline=deadlines[i]) for i in range(11)]
    log = DisplayLog()
    for sale_id, time in displays:
        log.record(sale_id, "u", time)
    outcomes, report = settle_sla(sales, log)
    assert report.n_on_time + report.n_violated == 11
    total_displays = len(displays)
    firsts = len({sid for sid, _ in displays})
    assert report.n_duplicates == total_displays - firsts
    for outcome in outcomes:
        if outcome.first_shown_at is not None:
            assert outcome.on_time == (
                outcome.first_shown_at <= outcome.sale.deadline)
