"""Unit tests for energy aggregation, outcomes, and table formatting."""

import pytest

from repro.client.device import Device
from repro.metrics.energy import EnergyReport, aggregate_devices, energy_savings
from repro.metrics.summary import fmt_pct, fmt_si, format_series, format_table
from repro.radio.profiles import THREE_G


def test_aggregate_devices_sums_tags():
    d1 = Device("u1", THREE_G)
    d1.ad_fetch(0.0, 4000)
    d1.finish()
    d2 = Device("u2", THREE_G)
    d2.app_request(0.0, 9000)
    d2.finish()
    report = aggregate_devices([d1, d2], days=2.0)
    assert report.n_users == 2
    assert report.ad_joules == pytest.approx(
        THREE_G.isolated_transfer_energy(4000))
    assert report.app_joules == pytest.approx(
        THREE_G.isolated_transfer_energy(9000))
    assert report.wakeups == 2
    assert report.ad_bytes == 4000 and report.app_bytes == 9000
    assert report.communication_joules == pytest.approx(
        report.ad_joules + report.app_joules)
    assert 0.0 < report.ad_share_of_communication < 1.0
    assert report.ad_joules_per_user_day() == pytest.approx(
        report.ad_joules / 4.0)
    assert report.wakeups_per_user_day() == pytest.approx(0.5)


def test_energy_report_degenerate_cases():
    empty = EnergyReport(0.0, 0.0, 0, 0, 0, 0, 0.0)
    assert empty.ad_share_of_communication == 0.0
    assert empty.ad_joules_per_user_day() == 0.0


def test_energy_savings():
    assert energy_savings(50.0, 100.0) == pytest.approx(0.5)
    assert energy_savings(100.0, 0.0) == 0.0
    assert energy_savings(120.0, 100.0) == pytest.approx(-0.2)


def test_fmt_pct():
    assert fmt_pct(0.1234) == "12.34%"
    assert fmt_pct(0.5, 0) == "50%"


def test_fmt_si():
    assert fmt_si(12_345) == "12.35k"
    assert fmt_si(3_400_000) == "3.40M"
    assert fmt_si(2.5) == "2.50"
    assert fmt_si(7_200_000_000) == "7.20G"


def test_format_table_alignment_and_validation():
    table = format_table(["a", "long header"], [["x", "1"], ["yy", "22"]],
                         title="T")
    lines = table.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "long header" in lines[1]
    assert len({len(line) for line in lines[1:]}) <= 2   # aligned widths
    with pytest.raises(ValueError):
        format_table(["a"], [["x", "y"]])


def test_format_series():
    out = format_series("S", [(1, 2.0), (2, 3.0)], x_label="k", y_label="v")
    assert "S" in out and "k" in out and "v" in out
