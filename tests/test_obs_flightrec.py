"""Tests for the crash flight recorder (repro.obs.flightrec).

Covers the bounded ring recorder, the postmortem file round-trip and
renderer, the worker-side crash capture in ``run_shard_task``, the
parent-side lost/stall capture in ``LivePlane``, a deliberately killed
worker process in a pooled fault run, and the
``adprefetch obs postmortem`` CLI.
"""

from __future__ import annotations

import json
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.cli import main
from repro.faults.plan import FaultPlan
from repro.obs.flightrec import (
    Postmortem,
    RingRecorder,
    list_postmortems,
    postmortem_filename,
)
from repro.obs.live import (
    CallbackTransport,
    LiveOptions,
    LivePlane,
    ShardBeat,
    WorkerLiveSetup,
)
from repro.obs.trace import NULL_RECORDER, MemoryRecorder
from repro.runner import Runner, run_shard_task


# ---------------------------------------------------------------------
# RingRecorder
# ---------------------------------------------------------------------


def test_ring_keeps_last_n_events_and_counts_drops():
    ring = RingRecorder(NULL_RECORDER, shard=1, capacity=3)
    assert ring.enabled
    for i in range(5):
        ring.instant(float(i), "server", "epoch", args={"i": i})
    tail = ring.ring()
    assert [e.ts for e in tail] == [2.0, 3.0, 4.0]
    assert all(e.shard == 1 for e in tail)
    assert ring.dropped == 2
    # Full-trace semantics: events() is the inner (null) recorder's view.
    assert ring.events() == []


def test_ring_forwards_to_enabled_inner_recorder():
    inner = MemoryRecorder(shard=0)
    ring = RingRecorder(inner, capacity=2)
    ring.instant(1.0, "faults", "loss", args={"uid": "u1"})
    ring.complete(2.0, 0.5, "server", "plan")
    assert [e.name for e in inner.events()] == ["loss", "plan"]
    assert [e.name for e in ring.events()] == ["loss", "plan"]
    assert [e.phase for e in ring.ring()] == ["I", "X"]


# ---------------------------------------------------------------------
# Postmortem files
# ---------------------------------------------------------------------


def _postmortem(**overrides):
    fields = dict(
        kind="crash", shard_index=3, n_shards=8, system="headline",
        backend="event", reason="shard raised ValueError: boom",
        traceback="Traceback ...\nValueError: boom",
        last_beat=ShardBeat(shard_index=3, n_shards=8, seq=7,
                            watermark_s=86400.0, done=4,
                            total=10).to_jsonable(),
        ring_events=({"ts": 1.0, "ph": "I", "comp": "faults",
                      "name": "loss", "dur": 0.0, "shard": 3,
                      "args": {"uid": "u7"}},),
        ring_dropped=12,
        counters={"radio.wakeups": 42.0},
    )
    fields.update(overrides)
    return Postmortem(**fields)


def test_postmortem_round_trip(tmp_path):
    postmortem = _postmortem()
    path = postmortem.write_to(tmp_path)
    assert path.name == postmortem_filename(3, "crash")
    assert Postmortem.load(path) == postmortem


def test_postmortem_load_errors_are_one_line(tmp_path):
    bad = tmp_path / "shard-000-crash.json"
    bad.write_text("{not json")
    with pytest.raises(ValueError, match="not valid JSON"):
        Postmortem.load(bad)
    bad.write_text(json.dumps({"schema": "something-else"}))
    with pytest.raises(ValueError, match="not a postmortem"):
        Postmortem.load(bad)
    bad.write_text(json.dumps({"schema": "repro.obs.postmortem",
                               "version": 99}))
    with pytest.raises(ValueError, match="version"):
        Postmortem.load(bad)
    bad.write_text(json.dumps({"schema": "repro.obs.postmortem",
                               "version": 1, "kind": "mystery"}))
    with pytest.raises(ValueError, match="kind"):
        Postmortem.load(bad)


def test_postmortem_render_is_readable():
    text = _postmortem().render()
    assert "shard 3/8 [crash]" in text
    assert "ValueError: boom" in text
    assert "seq=7" in text
    assert "faults/loss" in text and '"uid": "u7"' in text
    assert "12 older dropped" in text
    assert "radio.wakeups = 42" in text


def test_list_postmortems_sorted(tmp_path):
    _postmortem(shard_index=2, kind="lost", traceback="").write_to(tmp_path)
    _postmortem(shard_index=0).write_to(tmp_path)
    names = [p.name for p in list_postmortems(tmp_path)]
    assert names == ["shard-000-crash.json", "shard-002-lost.json"]
    assert list_postmortems(tmp_path / "nowhere") == []


# ---------------------------------------------------------------------
# Worker-side crash capture
# ---------------------------------------------------------------------


def _shard_tasks(tiny_config, tiny_world, system="realtime", shards=2):
    runner = Runner(tiny_config, shards=shards, world=tiny_world)
    world = runner.source.world_for(tiny_config)
    return runner._tasks(system, world)


def _setup(tmp_path, sink=None):
    return WorkerLiveSetup(
        transport=CallbackTransport(sink if sink is not None
                                    else lambda beat: None),
        beat_interval_s=0.0, ring_size=32,
        postmortem_dir=tmp_path / "postmortems",
        system="realtime", backend="event")


def test_crashed_shard_writes_flight_recorder_postmortem(
        tiny_config, tiny_world, tmp_path):
    tasks = _shard_tasks(tiny_config, tiny_world)
    bad = tasks[1]
    bad.system = "bogus"                  # detonates inside execute_shard
    beats: list[ShardBeat] = []
    with pytest.raises(ValueError, match="bogus"):
        run_shard_task(bad, _setup(tmp_path, beats.append))
    [path] = list_postmortems(tmp_path / "postmortems")
    postmortem = Postmortem.load(path)
    assert postmortem.kind == "crash"
    assert postmortem.shard_index == 1
    assert "ValueError" in postmortem.reason
    assert "bogus" in postmortem.traceback
    assert any(beat.failed for beat in beats)


def test_crash_postmortem_captures_flight_recorder_ring(
        tiny_config, tiny_world, tmp_path, monkeypatch):
    """E13-style black box: the ring holds the pre-crash trace trail.

    Detonate *after* the epoch loop (in device aggregation) so the
    flight recorder has buffered the per-epoch heartbeat instants by
    the time the shard raises — without ``--trace`` being on.
    """
    import repro.experiments.harness as harness

    def _boom(*args, **kwargs):
        raise RuntimeError("device aggregation exploded")

    monkeypatch.setattr(harness, "aggregate_devices", _boom)
    tasks = _shard_tasks(tiny_config, tiny_world, system="prefetch",
                         shards=1)
    with pytest.raises(RuntimeError, match="exploded"):
        run_shard_task(tasks[0], _setup(tmp_path))
    [path] = list_postmortems(tmp_path / "postmortems")
    postmortem = Postmortem.load(path)
    assert postmortem.kind == "crash"
    assert "RuntimeError" in postmortem.reason
    heartbeats = [row for row in postmortem.ring_events
                  if row.get("name") == "heartbeat"]
    assert heartbeats, "ring should hold the pre-crash heartbeat trail"
    assert postmortem.counters.get("throughput.users_total", 0) > 0
    assert "aggregation exploded" in postmortem.render()


# ---------------------------------------------------------------------
# Parent-side loss/stall capture
# ---------------------------------------------------------------------


def test_plane_writes_lost_postmortem_for_silent_shard(tmp_path):
    plane = LivePlane(LiveOptions(postmortem_dir=tmp_path), n_shards=2,
                      system="headline", backend="event", parallel=False)
    plane.start()
    plane.aggregator.ingest(ShardBeat(shard_index=0, n_shards=2, seq=0,
                                      watermark_s=10.0, final=True))
    plane.finish(failed=True)             # shard 1 never reported
    [path] = plane.postmortems
    postmortem = Postmortem.load(path)
    assert postmortem.kind == "lost"
    assert postmortem.shard_index == 1
    assert "never reported a final beat" in postmortem.reason


def test_plane_surfaces_worker_written_crash_file(tmp_path):
    plane = LivePlane(LiveOptions(postmortem_dir=tmp_path), n_shards=1,
                      parallel=False)
    # Simulate the worker's own crash handler having written the box.
    crash = _postmortem(shard_index=0).write_to(tmp_path)
    plane.start()
    plane.aggregator.ingest(ShardBeat(shard_index=0, n_shards=1, seq=0,
                                      watermark_s=0.0, failed=True))
    plane.finish(failed=True)
    assert plane.postmortems == [crash]   # surfaced, not duplicated
    assert len(list_postmortems(tmp_path)) == 1


def test_stall_flag_leaves_inspectable_postmortem(tmp_path):
    clock_now = [0.0]
    plane = LivePlane(LiveOptions(stall_after_s=5.0,
                                  postmortem_dir=tmp_path),
                      n_shards=1, parallel=False,
                      clock=lambda: clock_now[0])
    plane.aggregator.ingest(ShardBeat(shard_index=0, n_shards=1, seq=0,
                                      watermark_s=100.0))
    clock_now[0] = 6.0
    for event in plane.aggregator.check():
        plane._write_stall_postmortem(event)
    [path] = plane.postmortems
    postmortem = Postmortem.load(path)
    assert postmortem.kind == "stall"
    assert postmortem.last_beat is not None
    assert postmortem.last_beat["watermark_s"] == 100.0


# ---------------------------------------------------------------------
# A deliberately killed worker in a pooled fault run
# ---------------------------------------------------------------------


class _WorkerKiller:
    """Pickles fine in the parent; kills the worker on unpickle."""

    def __reduce__(self):
        return (os._exit, (13,))


def test_killed_worker_leaves_readable_postmortem(tiny_config, tiny_world,
                                                  tmp_path, capsys):
    import dataclasses

    config = dataclasses.replace(
        tiny_config, faults=FaultPlan(loss_prob=0.1))
    tasks = _shard_tasks(config, tiny_world)
    tasks[1].timelines["__killer__"] = _WorkerKiller()
    plane = LivePlane(LiveOptions(beat_interval_s=0.0,
                                  postmortem_dir=tmp_path / "postmortems"),
                      n_shards=2, system="realtime", backend="event",
                      parallel=True)
    plane.start()
    setup = plane.worker_setup()
    with pytest.raises(BrokenProcessPool):
        with ProcessPoolExecutor(max_workers=2) as pool:
            list(pool.map(run_shard_task, tasks, [setup, setup]))
    plane.finish(failed=True)
    lost = [p for p in plane.postmortems if p.name.endswith("-lost.json")]
    assert lost, f"no lost postmortem in {plane.postmortems}"
    # Readable through the CLI the way an operator would reach it.
    assert main(["obs", "postmortem", "show", str(lost[0])]) == 0
    out = capsys.readouterr().out
    assert "[lost]" in out and "never reported a final beat" in out


# ---------------------------------------------------------------------
# CLI: obs postmortem show | list
# ---------------------------------------------------------------------


def test_cli_postmortem_show_renders(tmp_path, capsys):
    path = _postmortem().write_to(tmp_path)
    assert main(["obs", "postmortem", "show", str(path)]) == 0
    out = capsys.readouterr().out
    assert "shard 3/8 [crash]" in out and "ValueError: boom" in out


def test_cli_postmortem_show_missing_is_one_line_error(tmp_path, capsys):
    code = main(["obs", "postmortem", "show",
                 str(tmp_path / "shard-000-crash.json")])
    assert code == 1
    err = capsys.readouterr().err
    assert err.startswith("error:") and len(err.splitlines()) == 1


def test_cli_postmortem_list(tmp_path, capsys):
    _postmortem(shard_index=0).write_to(tmp_path)
    _postmortem(shard_index=1, kind="stall", traceback="").write_to(tmp_path)
    assert main(["obs", "postmortem", "list", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    lines = out.splitlines()
    assert len(lines) == 2
    assert "[crash] shard 0/8" in lines[0]
    assert "[stall] shard 1/8" in lines[1]


def test_cli_postmortem_list_empty_dir(tmp_path, capsys):
    assert main(["obs", "postmortem", "list", str(tmp_path)]) == 0
    assert "no postmortems" in capsys.readouterr().out
